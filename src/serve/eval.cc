#include "serve/eval.hh"

#include <utility>

#include "core/cooling_study.hh"
#include "core/outage_study.hh"
#include "core/resilience_study.hh"
#include "core/run_config.hh"
#include "fault/fault_schedule.hh"
#include "fleet/sweep.hh"
#include "opt/engine.hh"
#include "opt/space.hh"
#include "plant/study.hh"
#include "server/server_spec.hh"
#include "util/error.hh"
#include "util/units.hh"
#include "workload/google_trace.hh"
#include "workload/placement.hh"

namespace tts {
namespace serve {

namespace {

server::ServerSpec
specOf(const Request &req)
{
    switch (req.platform) {
      case 1: return server::x4470Spec();
      case 2: return server::openComputeSpec();
      default: return server::rd330Spec();
    }
}

core::RunConfig
runConfigOf(const Request &req)
{
    core::RunConfig run;
    run.serverCount = req.servers;
    run.utilization = req.utilization;
    run.meltTempC = req.meltC;
    run.waxLiters = req.waxLiters;
    return run;
}

Result
evalCooling(const Request &req)
{
    workload::GoogleTraceParams tp;
    tp.durationS = units::days(req.days);
    auto trace = workload::makeGoogleTrace(tp);

    core::CoolingConfig cfg;
    cfg.run = runConfigOf(req);
    auto r = core::runCoolingStudy(specOf(req), trace, cfg);

    Result out;
    out["cooling.peak_w"] = r.peakBaselineW;
    out["cooling.peak_pcm_w"] = r.peakWithWaxW;
    out["cooling.reduction"] = r.peakReduction();
    out["cooling.resolidify_h"] = r.resolidifyHours();
    out["cooling.resolidifies_daily"] =
        r.resolidifiesDaily() ? 1.0 : 0.0;
    out["cooling.melt_c"] = r.meltTempC;
    return out;
}

Result
evalOutage(const Request &req)
{
    core::OutageConfig cfg;
    cfg.run = runConfigOf(req);
    if (req.horizonS > 0.0)
        cfg.maxDurationS = req.horizonS;
    auto r = core::runOutageStudy(specOf(req), cfg);

    Result out;
    out["outage.ride_no_wax_s"] = r.noWax.rideThroughS;
    out["outage.ride_with_wax_s"] = r.withWax.rideThroughS;
    out["outage.extra_ride_s"] = r.extraRideThroughS();
    out["outage.hit_limit_no_wax"] = r.noWax.hitLimit ? 1.0 : 0.0;
    out["outage.hit_limit_with_wax"] =
        r.withWax.hitLimit ? 1.0 : 0.0;
    return out;
}

Result
evalResilience(const Request &req)
{
    core::ResilienceConfig cfg;
    cfg.run = runConfigOf(req);
    // The thermal loop models a room-scale sample, not the full
    // population knob meant for the cooling study.
    cfg.run.serverCount = core::ResilienceConfig{}.run.serverCount;

    core::ResilienceScenario scenario;
    if (!req.faults.empty()) {
        scenario.name = "inline";
        scenario.faults = fault::FaultSchedule::parse(req.faults);
        scenario.utilization = req.utilization;
        if (req.horizonS > 0.0)
            scenario.horizonS = req.horizonS;
        else if (scenario.faults.horizonS() > 0.0)
            scenario.horizonS = scenario.faults.horizonS() + 1800.0;
    } else {
        bool found = false;
        for (auto &s : core::canonicalScenarios(
                 cfg.cluster.serverCount)) {
            if (s.name == req.scenario) {
                scenario = std::move(s);
                found = true;
                break;
            }
        }
        require(found, "request: unknown scenario \"" +
                           req.scenario +
                           "\" (try plant_trip_total, "
                           "partial_trip_sensor_drift, "
                           "crash_fan_storm)");
        scenario.utilization = req.utilization;
        if (req.horizonS > 0.0)
            scenario.horizonS = req.horizonS;
    }

    auto r = core::runResilienceStudy(specOf(req), scenario, cfg);

    Result out;
    out["resilience.ride_no_wax_s"] = r.noWax.rideThroughS;
    out["resilience.ride_with_wax_s"] = r.withWax.rideThroughS;
    out["resilience.extra_ride_s"] = r.extraRideThroughS();
    out["resilience.retention_no_wax"] =
        r.noWax.throughputRetention;
    out["resilience.retention_with_wax"] =
        r.withWax.throughputRetention;
    out["resilience.retention_gain"] = r.retentionGain();
    out["resilience.throttled_no_wax_s"] = r.noWax.throttledS;
    out["resilience.throttled_with_wax_s"] = r.withWax.throttledS;
    out["resilience.jobs_completed"] =
        static_cast<double>(r.cluster.completedJobs);
    out["resilience.jobs_dropped"] =
        static_cast<double>(r.cluster.droppedJobs);
    return out;
}

Result
evalPlant(const Request &req)
{
    workload::GoogleTraceParams tp;
    tp.durationS = units::days(req.days);
    auto trace = workload::makeGoogleTrace(tp);

    core::RunConfig run = runConfigOf(req);
    plant::PlantScenario scenario;
    scenario.loadW = plant::clusterCoolingLoad(
        specOf(req), run.waxConfig(), req.servers, trace);
    scenario.serverCount = req.servers;
    if (!req.faults.empty())
        scenario.faults = fault::FaultSchedule::parse(req.faults);

    plant::PlantConfig cfg;
    cfg.options.kind =
        plant::backendKindFromString(req.plantBackend);
    cfg.weatherText = req.weather;
    cfg.recordSeries = false;
    plant::PlantResult r = plant::runPlant(scenario, cfg);

    Result out;
    out["plant.electric_energy_kwh"] = r.electricEnergyJ / 3.6e6;
    out["plant.peak_electric_w"] = r.peakElectricW;
    out["plant.energy_cost_usd"] = r.energyCostUsd;
    out["plant.reuse_credit_usd"] = r.reuseCreditUsd;
    out["plant.dvfs_penalty_usd"] = r.dvfsPenaltyUsd;
    out["plant.net_cost_usd"] = r.netCostUsd;
    out["plant.yearly_net_cost_usd"] = r.yearlyNetCostUsd;
    out["plant.throughput_retention"] = r.throughputRetention;
    out["plant.fault_events"] =
        static_cast<double>(r.faultEventsApplied);
    return out;
}

/**
 * The fleet study's sweep job.  Coarse steps (300 s control, 60 s
 * thermal) keep a served run orders of magnitude cheaper than the
 * offline 2-day transient while exercising the same dedupe and
 * placement machinery; obs/checkpoint sinks are cleared because a
 * daemon answer must never write files.
 */
fleet::SweepJob
fleetJobOf(const Request &req)
{
    fleet::SweepJob job;
    job.spec = specOf(req);
    workload::GoogleTraceParams tp;
    tp.durationS = units::days(req.days);
    job.trace = workload::makeGoogleTrace(tp);
    job.cfg.run = runConfigOf(req);
    job.cfg.run.obs = core::ObsSinks{};
    job.cfg.run.checkpoint = core::CheckpointPolicy{};
    job.cfg.durationS = units::days(req.days);
    job.cfg.controlIntervalS = 300.0;
    job.cfg.thermalStepS = 60.0;
    job.cfg.placement =
        workload::placementPolicyFromName(req.placement);
    job.cfg.recordSeries = false;
    return job;
}

Result
fleetResultOf(const fleet::FleetResult &r)
{
    Result out;
    out["fleet.peak_cooling_w"] = r.peakCoolingW;
    out["fleet.peak_it_w"] = r.peakItPowerW;
    out["fleet.cooling_energy_j"] = r.coolingEnergyJ;
    out["fleet.servers"] = static_cast<double>(r.serverCount);
    out["fleet.materialized_rows"] =
        static_cast<double>(r.materializedRows);
    out["fleet.events_applied"] =
        static_cast<double>(r.eventsApplied);
    out["fleet.dedupe_factor"] = r.dedupeFactor();
    // The full digest is 64 bits and doubles carry 53; the low half
    // is still a sharp bit-identity witness in a flat result map.
    out["fleet.digest32"] =
        static_cast<double>(r.stateDigest & 0xffffffffull);
    return out;
}

Result
evalFleet(const Request &req)
{
    return fleetResultOf(
        fleet::runFleetSweep({fleetJobOf(req)})[0]);
}

Result
evalOptimize(const Request &req)
{
    // A served search runs on the trimmed single-archetype space and
    // the coarse oracle (the tts::opt fast-battery shape): small
    // enough to answer interactively, deterministic by the engine's
    // own contract, so the unified cache can memoize it like any
    // other study.
    opt::SpaceOptions so;
    so.meltMinC = 48.0;
    so.meltMaxC = 58.0;
    so.meltStepC = 1.0;
    so.boxRadius = 2;
    so.lockPolicy = true; // Single archetype: placement is moot.
    opt::SearchSpace space = opt::makeSearchSpace({specOf(req)}, so);

    workload::GoogleTraceParams tp;
    tp.durationS = units::days(req.days);
    tp.sampleIntervalS = 900.0;
    workload::WorkloadTrace trace = workload::makeGoogleTrace(tp);

    opt::OptOptions oo;
    oo.seed = req.optSeed;
    oo.budget = req.budget;
    oo.restarts = req.restarts;
    oo.objective = opt::objectiveFromName(req.objective);
    oo.fleet.run.serverCount = req.servers;
    oo.fleet.run.utilization = req.utilization;
    oo.fleet.durationS = units::days(req.days);
    oo.fleet.controlIntervalS = 300.0;
    oo.fleet.thermalStepS = 60.0;
    opt::OptResult r = opt::optimizeWaxPlacement(space, trace, oo);

    Result out;
    out["opt.best_cost"] = r.bestCost;
    out["opt.baseline_cost"] = r.baselineCost;
    out["opt.beats_baseline"] = r.beatsBaseline() ? 1.0 : 0.0;
    out["opt.peak_cooling_w"] = r.bestOutcome.peakCoolingW;
    out["opt.tco_usd_per_year"] = r.bestOutcome.tcoUsdPerYear;
    out["opt.mass_kg"] = r.choice[0].massKg;
    out["opt.liters"] = r.choice[0].liters;
    out["opt.boxes"] = static_cast<double>(r.choice[0].boxes);
    out["opt.melt_c"] = r.choice[0].meltTempC;
    out["opt.evaluations"] = static_cast<double>(r.evaluations);
    out["opt.oracle_calls"] = static_cast<double>(r.oracleCalls);
    out["opt.memo_hits"] = static_cast<double>(r.memoHits);
    out["opt.polish_rounds"] =
        static_cast<double>(r.polishRounds);
    return out;
}

} // namespace

Result
evaluate(const Request &req)
{
    if (req.study == "cooling")
        return evalCooling(req);
    if (req.study == "outage")
        return evalOutage(req);
    if (req.study == "resilience")
        return evalResilience(req);
    if (req.study == "plant")
        return evalPlant(req);
    if (req.study == "fleet")
        return evalFleet(req);
    if (req.study == "optimize")
        return evalOptimize(req);
    // parseRequest validates the study name; reaching here means a
    // caller built a Request by hand and got it wrong.
    fatal("evaluate: unknown study \"" + req.study + "\"");
}

bool
batchable(const Request &req)
{
    return req.study == "fleet";
}

std::vector<Result>
evaluateFleetBatch(const std::vector<Request> &reqs)
{
    std::vector<fleet::SweepJob> jobs;
    jobs.reserve(reqs.size());
    for (const Request &req : reqs) {
        require(batchable(req),
                "evaluateFleetBatch: study \"" + req.study +
                    "\" is not batchable");
        jobs.push_back(fleetJobOf(req));
    }
    std::vector<fleet::FleetResult> swept =
        fleet::runFleetSweep(jobs);
    std::vector<Result> out;
    out.reserve(swept.size());
    for (const fleet::FleetResult &r : swept)
        out.push_back(fleetResultOf(r));
    return out;
}

} // namespace serve
} // namespace tts
