/**
 * @file
 * Poll-based multi-session front end for the scenario daemon.
 *
 * serveStream() handles exactly one framed byte stream and parks a
 * thread per outstanding request.  The SessionMux scales that to
 * many concurrent clients on one thread: a poll() loop accepts
 * connections on a Unix socket (or adopts already-connected fds -
 * the test hook), feeds each session's bytes through an incremental
 * FrameDecoder, and dispatches decoded requests to the shared
 * Daemon with submitAsync().  Worker callbacks post completed
 * replies to the loop through a self-pipe, so the loop never blocks
 * on evaluation and a slow evaluation never blocks the loop.
 *
 * Ordering and isolation invariants:
 *
 *  - Replies within one session go out in request order, always -
 *    each accepted frame reserves an ordered reply slot at decode
 *    time and the writer only drains ready slots from the front.
 *  - A slow *client* cannot head-of-line-block other sessions:
 *    writes are nonblocking and buffer per session; the loop moves
 *    on the instant a socket stops accepting bytes.
 *  - A slow or disconnected client cannot poison the daemon: its
 *    in-flight evaluations complete normally (warming the shared
 *    cache) and their replies are counted as discarded, never
 *    delivered to a dead fd.
 *  - Per-session backpressure: once pipelineWindow replies are
 *    outstanding the loop stops reading that session's fd until a
 *    slot drains, so one firehose client cannot monopolise the
 *    admission queue.
 *
 * Thread model: run() owns every Session; daemon workers only touch
 * the completion queue (mutex + self-pipe).  stop() and adopt() are
 * safe to call from any thread.
 */

#ifndef TTS_SERVE_MUX_HH
#define TTS_SERVE_MUX_HH

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "serve/daemon.hh"
#include "serve/protocol.hh"

namespace tts {
namespace serve {

/** Session-mux sizing knobs. */
struct MuxOptions
{
    /** Frame limits applied to every session's requests. */
    FrameLimits limits;
    /** Concurrent sessions served; the accept loop simply stops
     *  accepting at capacity (the listen backlog queues), and
     *  adopt() past it refuses the fd. */
    std::size_t maxSessions = 64;
    /** Outstanding replies per session before its fd stops being
     *  read; 0 = the daemon's queue capacity. */
    std::size_t pipelineWindow = 0;
    /** run() returns once this many sessions have fully closed;
     *  0 = run until stop(). */
    std::size_t exitAfterSessions = 0;
};

/** Monotonic counters describing one mux's lifetime. */
struct MuxStats
{
    std::uint64_t sessionsAccepted = 0;
    std::uint64_t sessionsClosed = 0;
    std::uint64_t sessionsRefused = 0;
    std::uint64_t framesOk = 0;
    std::uint64_t framesMalformed = 0;
    std::uint64_t repliesWritten = 0;
    /** Replies that completed after their client vanished. */
    std::uint64_t repliesDiscarded = 0;
    std::uint64_t peakSessions = 0;

    /** @return Every counter as a flat kv map (for kv_json). */
    std::map<std::string, double> toMap() const;
};

class SessionMux
{
  public:
    /**
     * @param daemon  The shared evaluation daemon (not owned; must
     *        outlive the mux).
     * @param options Sizing knobs.
     */
    SessionMux(Daemon &daemon, MuxOptions options);

    /** Closes the listen socket and every live session fd. */
    ~SessionMux();

    SessionMux(const SessionMux &) = delete;
    SessionMux &operator=(const SessionMux &) = delete;

    /**
     * Bind and listen on a Unix-domain socket.  An existing file at
     * `path` is unlinked first (a stale socket from a previous run),
     * and the path is unlinked again on destruction.
     *
     * @throws FatalError on socket/bind/listen failure.
     */
    void listenUnix(const std::string &path);

    /**
     * Adopt an already-connected stream fd as a session (the test
     * hook: socketpair() one end in, drive the other).  Safe from
     * any thread; the fd is owned by the mux from here on.  Refused
     * (fd closed, counted) past maxSessions.
     */
    void adopt(int fd);

    /**
     * Serve until stop() or until exitAfterSessions sessions have
     * closed.  Runs the poll loop on the calling thread.
     */
    void run();

    /** Make run() return promptly.  Safe from any thread. */
    void stop();

    /** @return A snapshot of the lifetime counters. */
    MuxStats stats() const;

    const MuxOptions &options() const { return options_; }

  private:
    struct Session;
    struct Shared;

    void acceptReady();
    void drainWake();
    std::shared_ptr<Session> addSession(int fd);
    void readSession(const std::shared_ptr<Session> &s);
    void flushSession(const std::shared_ptr<Session> &s);
    void dispatchFrame(const std::shared_ptr<Session> &s,
                       FrameResult frame);
    void reserveErrorSlot(const std::shared_ptr<Session> &s,
                          const FrameResult &frame);
    void closeSession(const std::shared_ptr<Session> &s);

    Daemon &daemon_;
    MuxOptions options_;
    std::size_t window_ = 1;
    std::shared_ptr<Shared> shared_;
    int listenFd_ = -1;
    std::string listenPath_;
    std::vector<std::shared_ptr<Session>> sessions_;
    MuxStats stats_;
};

} // namespace serve
} // namespace tts

#endif // TTS_SERVE_MUX_HH
