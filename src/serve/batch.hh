/**
 * @file
 * Cross-request miss batching for the scenario daemon.
 *
 * When many clients miss the cache on fleet-backed requests at the
 * same moment, running each miss as its own FleetSim dispatch wastes
 * the sweep entry point built for exactly this shape
 * (fleet::runFleetSweep).  The MissBatcher collects concurrent
 * batchable misses for a short window and executes them as *one*
 * sweep, splitting the per-request results back out bit-identical
 * to individual fresh evaluations.
 *
 * Shape: the first miss to arrive becomes the batch *leader* and
 * waits out the window (or until the batch fills to maxBatch);
 * later misses join as members.  Duplicate canonical texts inside
 * one window collapse onto a single sweep job - the in-window
 * analogue of the daemon's single-flight coalescing.  When the
 * window closes the leader runs the sweep while members wait; every
 * member then copies its own slot.  A sweep failure propagates to
 * every member (each caller's own retry ladder decides what to do
 * next).
 *
 * Determinism: each sweep job is an independent fleet run, so a
 * request's result does not depend on who else shared its batch -
 * the batched-vs-individual bit-identity tests pin that.
 * Degenerate configurations fall out naturally: windowMs = 0 or
 * maxBatch = 1 makes every miss its own batch (individual
 * evaluation, same bits).
 */

#ifndef TTS_SERVE_BATCH_HH
#define TTS_SERVE_BATCH_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/protocol.hh"

namespace tts {
namespace serve {

/** Batching knobs. */
struct BatchOptions
{
    /** Collection window after the first miss (wall ms); 0 executes
     *  every miss individually. */
    double windowMs = 2.0;
    /** Close the window early once this many unique jobs joined. */
    std::size_t maxBatch = 16;
};

/** Monotonic counters describing one batcher's lifetime. */
struct BatchStats
{
    /** Sweeps dispatched (each covers >= 1 unique job). */
    std::uint64_t sweeps = 0;
    /** Member requests answered through a batch. */
    std::uint64_t requests = 0;
    /** Unique sweep jobs executed (requests - coalesced). */
    std::uint64_t jobs = 0;
    /** In-window duplicate canonicals collapsed onto one job. */
    std::uint64_t coalesced = 0;
    /** Largest unique-job batch dispatched so far. */
    std::uint64_t largestBatch = 0;
};

class MissBatcher
{
  public:
    /** The sweep executor: unique requests in, one Result per
     *  request in order.  Defaults to serve::evaluateFleetBatch. */
    using Sweep = std::function<std::vector<Result>(
        const std::vector<Request> &)>;

    explicit MissBatcher(BatchOptions options, Sweep sweep = {});

    /**
     * Evaluate one batchable cache miss through the current window.
     * Blocks until the batch executes (bounded by windowMs plus the
     * sweep itself).  Safe to call from many workers concurrently.
     *
     * @param req       The parsed request (must be batchable).
     * @param canonical canonicalText(req) - the dedupe key.
     * @return This request's result, bit-identical to evaluating it
     *         alone.
     * @throws Whatever the sweep threw, rethrown to every member.
     */
    Result evaluate(const Request &req, const std::string &canonical);

    /** @return A snapshot of the lifetime counters. */
    BatchStats stats() const;

    const BatchOptions &options() const { return options_; }

  private:
    struct Batch;

    BatchOptions options_;
    Sweep sweep_;
    mutable std::mutex mu_;
    std::shared_ptr<Batch> open_;
    BatchStats stats_;
};

} // namespace serve
} // namespace tts

#endif // TTS_SERVE_BATCH_HH
