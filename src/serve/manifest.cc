#include "serve/manifest.hh"

#include <condition_variable>
#include <fstream>
#include <istream>
#include <memory>
#include <mutex>
#include <sstream>
#include <utility>

#include "obs/obs.hh"
#include "util/error.hh"

namespace tts {
namespace serve {

namespace {

constexpr const char *kHeader = "tts-serve-manifest v1";

/** Trim ASCII whitespace from both ends. */
std::string
trimmed(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r'))
        ++b;
    while (e > b &&
           (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r'))
        --e;
    return s.substr(b, e - b);
}

/** Rendezvous for the submit-all-then-wait warming pass. */
struct Gather
{
    std::mutex mu;
    std::condition_variable cv;
    std::size_t pending = 0;
    WarmStats stats;
};

} // namespace

WarmStats
warmFromManifest(std::istream &in, Daemon &daemon,
                 const std::string &name)
{
    std::string line;
    std::size_t lineNo = 0;
    bool sawHeader = false;
    // Entries are collected first so the header check happens
    // before any evaluation is paid for.
    std::vector<std::pair<std::size_t, std::string>> entries;
    while (std::getline(in, line)) {
        ++lineNo;
        const std::string body = trimmed(line);
        if (!sawHeader) {
            require(body == kHeader,
                    name + ":" + std::to_string(lineNo) +
                        ": expected manifest header \"" +
                        std::string(kHeader) + "\", got \"" + body +
                        "\"");
            sawHeader = true;
            continue;
        }
        if (body.empty() || body[0] == '#')
            continue;
        entries.emplace_back(lineNo, body);
    }
    require(sawHeader,
            name + ": empty manifest (missing the \"" +
                std::string(kHeader) + "\" header)");

    auto gather = std::make_shared<Gather>();
    gather->stats.entries = entries.size();
    gather->pending = entries.size();

    // Submit everything before waiting on anything: concurrent
    // fleet-backed misses land in the MissBatcher's window and warm
    // the cache as shared sweeps.
    for (auto &entry : entries) {
        const std::size_t entryLine = entry.first;
        daemon.submitAsync(
            std::move(entry.second),
            [gather, entryLine](Reply reply) {
                std::lock_guard<std::mutex> lock(gather->mu);
                WarmStats &ws = gather->stats;
                if (reply.ok && reply.cacheHit) {
                    ++ws.alreadyCached;
                } else if (reply.ok) {
                    ++ws.warmed;
                } else {
                    ++ws.failed;
                    ws.failures.push_back(
                        "line " + std::to_string(entryLine) + ": " +
                        toString(reply.error) + ": " +
                        reply.detail);
                }
                if (--gather->pending == 0)
                    gather->cv.notify_all();
            });
    }
    std::unique_lock<std::mutex> lock(gather->mu);
    gather->cv.wait(lock, [&] { return gather->pending == 0; });

    TTS_OBS_COUNT(obs::registry().counter("serve.warm.entries"),
                  static_cast<std::int64_t>(gather->stats.entries));
    TTS_OBS_COUNT(obs::registry().counter("serve.warm.failed"),
                  static_cast<std::int64_t>(gather->stats.failed));
    return gather->stats;
}

WarmStats
warmManifestFile(const std::string &path, Daemon &daemon)
{
    std::ifstream in(path);
    require(in.good(),
            "manifest: cannot open \"" + path + "\" for reading");
    return warmFromManifest(in, daemon, path);
}

} // namespace serve
} // namespace tts
