/**
 * @file
 * Wire protocol for the tts_serve scenario daemon (tts::serve).
 *
 * A scenario request is a flat JSON object (util/kv_json's KvAnyMap
 * dialect: string keys, number-or-string values, no nesting, no
 * escapes) naming a study and its RunConfig deltas, with an optional
 * inline fault schedule.  Requests travel over a byte stream in
 * length-prefixed frames:
 *
 *     tts-frame <decimal payload length>\n
 *     <payload bytes>
 *
 * The framing layer is the daemon's first line of defense: a frame
 * header that is not exactly the form above, a length over the
 * configured limit, or a payload the stream cannot deliver in full
 * is reported as a typed malformed-frame condition - never an
 * exception out of the read loop, and never a partial payload
 * handed to the parser.  An oversized frame whose header parsed
 * cleanly is drained from the stream so the connection stays in
 * sync and later frames still get answers.
 *
 * Replies reuse the same JSON dialect and framing.  A success reply
 * carries the envelope keys `status` ("ok"), `cache_hit`,
 * `fingerprint`, and `eval_ms`, plus the study's flat result keys
 * (`outage.ride_with_wax_s`, ...).  A rejection carries `status`
 * ("error"), a machine-readable `error` kind from the degradation
 * ladder (malformed / unsupported_version / overloaded /
 * deadline_exceeded / worker_failed / shutdown), and a
 * human-readable `detail`.  Result
 * keys are disjoint from envelope keys by construction (every study
 * key is dotted, envelope keys are not), so cache-hit bit-identity
 * can be asserted over exactly the result keys.
 */

#ifndef TTS_SERVE_PROTOCOL_HH
#define TTS_SERVE_PROTOCOL_HH

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

#include "util/error.hh"

namespace tts {
namespace serve {

/** Typed rejection categories, most to least recoverable. */
enum class ErrorKind
{
    Malformed,        //!< Request unparseable or invalid; never retry.
    UnsupportedVersion, //!< `proto` names a version this daemon
                        //!< does not speak; never retry here.
    Overloaded,       //!< Admission queue full; retry with backoff.
    DeadlineExceeded, //!< Deadline passed before evaluation started.
    WorkerFailed,     //!< Evaluation kept failing past the retry budget.
    Shutdown,         //!< Daemon is draining; retry against a new one.
};

/** @return Stable wire name ("malformed", ...). */
const char *toString(ErrorKind kind);

/** @return Kind parsed from its toString() name. @throws FatalError */
ErrorKind errorKindFromString(const std::string &name);

/**
 * Raised by parseRequest for a syntactically clean request whose
 * `proto` field names a version this build does not speak.  Checked
 * before any other field, so a future-version request with
 * future-version keys is rejected as unsupported_version, not
 * malformed - the client learns the actionable thing.
 */
class UnsupportedVersionError : public FatalError
{
  public:
    explicit UnsupportedVersionError(const std::string &what)
        : FatalError(what)
    {
    }
};

/**
 * One scenario request: a study selector plus RunConfig deltas.
 * Field defaults are the canonical values - a request that omits a
 * key and one that spells the default out fingerprint identically.
 */
struct Request
{
    /**
     * Protocol version; 1 is the only version this build speaks.
     * Absent means 1 and the field is *excluded* from the canonical
     * fingerprint text (like deadlineMs): it gates whether the
     * daemon answers, never what the answer is, so every pre-proto
     * fingerprint and pinned reference vector stays byte-stable.
     * Other values parse cleanly and are rejected by the daemon
     * with a typed `unsupported_version` reply.
     */
    int proto = 1;
    /** Study: "cooling", "outage", "resilience", "plant", "fleet",
     *  or "optimize". */
    std::string study = "cooling";
    /** Platform index (0 = 1U RD330, 1 = 2U X4470, 2 = OpenCompute). */
    int platform = 0;
    /** Cluster population for the cooling study. */
    std::size_t servers = 48;
    /** Trace length for the cooling study (days). */
    double days = 1.0;
    /** Melting temperature (C); 0 = platform default. */
    double meltC = 0.0;
    /** Wax charge per server (liters); 0 = platform default. */
    double waxLiters = 0.0;
    /** Held utilization (outage / resilience). */
    double utilization = 0.75;
    /** Horizon override (s); 0 = the study's default horizon. */
    double horizonS = 0.0;
    /** Canonical fault scenario name (resilience only). */
    std::string scenario = "plant_trip_total";
    /** Inline `tts-fault-schedule v1` text; overrides `scenario`. */
    std::string faults;
    /** Cooling-plant backend (plant study): "crac", "hot_water",
     *  "economizer", or "mpc". */
    std::string plantBackend = "crac";
    /** Inline t_hours,ambient_c weather CSV (plant study); empty
     *  uses the sinusoidal ambient.  Travels with ';' line breaks
     *  like `faults`. */
    std::string weather;
    /** Job-placement policy for the fleet study ("uniform",
     *  "thermal_aware", or "consolidate"). */
    std::string placement = "uniform";
    /** Search objective for the optimize study ("peak" or "tco"). */
    std::string objective = "peak";
    /** Logical evaluation budget for the optimize study.  Counts
     *  memo hits (the opt engine contract), so it is part of the
     *  canonical fingerprint - a bigger budget is a different
     *  search. */
    std::size_t budget = 16;
    /** Annealing restarts for the optimize study. */
    std::size_t restarts = 1;
    /** Search seed for the optimize study (the opt default). */
    std::uint64_t optSeed = 0x0417c001ULL;
    /**
     * Per-request deadline (ms of wall time from admission to the
     * start of evaluation); 0 = none.  Excluded from the canonical
     * fingerprint: it changes whether the answer arrives, never
     * what the answer is.
     */
    double deadlineMs = 0.0;

    bool operator==(const Request &o) const
    {
        return proto == o.proto && study == o.study &&
               platform == o.platform && servers == o.servers &&
               days == o.days && meltC == o.meltC &&
               waxLiters == o.waxLiters &&
               utilization == o.utilization &&
               horizonS == o.horizonS && scenario == o.scenario &&
               faults == o.faults &&
               plantBackend == o.plantBackend &&
               weather == o.weather && placement == o.placement &&
               objective == o.objective && budget == o.budget &&
               restarts == o.restarts && optSeed == o.optSeed &&
               deadlineMs == o.deadlineMs;
    }
};

/**
 * Parse and validate a request document.
 *
 * Strict on both syntax and vocabulary: unknown keys, wrong value
 * types, out-of-range values, and oversized documents are all
 * FatalErrors whose message carries a byte offset where one exists.
 *
 * @throws FatalError - callers map it to an ErrorKind::Malformed
 *         reply, so a hostile request can never take the daemon
 *         down.
 */
Request parseRequest(const std::string &json,
                     std::size_t max_bytes = 64 * 1024);

/** Serialize a request (canonical key order, defaults included). */
std::string writeRequest(const Request &req);

/**
 * Canonical fingerprint text: every result-affecting field in fixed
 * order with %.17g doubles.  Two requests evaluate bit-identically
 * iff their canonical texts match, so this string is both the cache
 * key preimage and the collision tiebreaker stored beside it.
 */
std::string canonicalText(const Request &req);

/** @return FNV-1a (64-bit) over canonicalText(req). */
std::uint64_t fingerprint(const Request &req);

/** FNV-1a 64-bit over raw bytes (exposed for the cache tests). */
std::uint64_t fnv1a(const std::string &bytes);

/** Flat result payload (golden-key style dotted metric names). */
using Result = std::map<std::string, double>;

/** One reply: a result or a typed rejection. */
struct Reply
{
    /** True when `result` is valid; false when `error` is. */
    bool ok = false;
    /** Rejection category (valid when !ok). */
    ErrorKind error = ErrorKind::Malformed;
    /** Human-readable rejection detail (valid when !ok). */
    std::string detail;
    /** True when the result came from the cache or was coalesced
     *  onto another request's in-flight evaluation. */
    bool cacheHit = false;
    /** Canonical fingerprint of the request (0 when unparseable). */
    std::uint64_t fingerprintValue = 0;
    /** Wall time spent evaluating (0 on a cache hit). */
    double evalMs = 0.0;
    /** The study's flat result keys (valid when ok). */
    Result result;

    static Reply okReply(std::uint64_t fp, bool cache_hit,
                         double eval_ms, Result result);
    static Reply errorReply(ErrorKind kind, const std::string &detail,
                            std::uint64_t fp = 0);

    /** Serialize to the flat reply JSON described above. */
    std::string toJson() const;

    /** Parse toJson() output. @throws FatalError. */
    static Reply fromJson(const std::string &json);
};

/** Framing limits shared by readers and writers. */
struct FrameLimits
{
    /** Largest payload accepted or emitted (bytes). */
    std::size_t maxPayloadBytes = 64 * 1024;
};

/** Outcome of one readFrame() call. */
enum class FrameStatus
{
    Ok,        //!< `payload` holds a complete frame payload.
    Eof,       //!< Clean end of stream before any header byte.
    Malformed, //!< Bad header, oversized length, or short payload.
};

/** One parsed frame (or the diagnostic for a rejected one). */
struct FrameResult
{
    FrameStatus status = FrameStatus::Eof;
    /** Payload bytes (Ok only). */
    std::string payload;
    /** What was wrong (Malformed only). */
    std::string diagnostic;
    /**
     * Malformed only: true when the stream was resynchronized (an
     * oversized frame was drained) and later frames can still be
     * served; false when the stream position is unrecoverable and
     * the connection should be dropped after the error reply.
     */
    bool recoverable = false;
};

/** Write one frame (header + payload). @throws FatalError if the
 *  payload exceeds limits.maxPayloadBytes. */
void writeFrame(std::ostream &out, const std::string &payload,
                const FrameLimits &limits = FrameLimits{});

/** Read one frame; never throws on hostile input (see FrameResult). */
FrameResult readFrame(std::istream &in,
                      const FrameLimits &limits = FrameLimits{});

/**
 * Incremental frame decoder for non-blocking byte sources (the
 * session mux feeds it whatever read() returned).  Mirrors
 * readFrame() exactly - same header grammar, same limits, same
 * diagnostics, same oversized-drain resynchronization - but never
 * blocks: next() yields a frame only once its bytes have all been
 * fed.
 *
 * Additional hardening over the stream reader: a header line is
 * capped at 64 bytes (the longest legal header is far shorter), so
 * a client dribbling an endless newline-free preamble is cut off
 * with a typed malformed frame instead of growing a buffer forever.
 */
class FrameDecoder
{
  public:
    explicit FrameDecoder(FrameLimits limits = FrameLimits{})
        : limits_(limits)
    {
    }

    /** Append raw bytes from the transport. */
    void feed(const char *data, std::size_t n);

    /**
     * Pull the next complete frame or framing error.
     *
     * @return True with out->status Ok or Malformed; false when more
     *         bytes are needed first.  After an unrecoverable
     *         Malformed result the decoder is poisoned and next()
     *         keeps returning that result.
     */
    bool next(FrameResult *out);

    /**
     * Note end-of-stream.  @return Eof when the decoder sits on a
     * frame boundary with nothing buffered; Malformed (truncated,
     * unrecoverable) when the peer hung up mid-frame.
     */
    FrameResult finish() const;

    /** @return Bytes buffered but not yet consumed by next(). */
    std::size_t buffered() const { return buf_.size() - pos_; }

  private:
    enum class State
    {
        Header,  //!< Accumulating a header line.
        Payload, //!< Waiting for a declared payload.
        Drain,   //!< Discarding an oversized payload.
        Poisoned,//!< Unrecoverable; next() replays `poison_`.
    };

    void compact();

    FrameLimits limits_;
    State state_ = State::Header;
    std::string buf_;
    std::size_t pos_ = 0;      //!< Consumed prefix of buf_.
    std::size_t want_ = 0;     //!< Payload/drain bytes outstanding.
    FrameResult poison_;
};

} // namespace serve
} // namespace tts

#endif // TTS_SERVE_PROTOCOL_HH
