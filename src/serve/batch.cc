#include "serve/batch.hh"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/obs.hh"
#include "serve/eval.hh"
#include "util/error.hh"

namespace tts {
namespace serve {

namespace {

/** Cached `serve.batch.*` instrument references. */
struct Metrics
{
    obs::Counter &sweeps =
        obs::registry().counter("serve.batch.sweeps");
    obs::Counter &jobs =
        obs::registry().counter("serve.batch.jobs");
    obs::Counter &coalesced =
        obs::registry().counter("serve.batch.coalesced");
};

Metrics &
metrics()
{
    static Metrics m;
    return m;
}

} // namespace

/** One collection window: unique jobs, membership, and the
 *  published outcome.  All fields are guarded by the batcher's
 *  mutex; cv waits use that same mutex. */
struct MissBatcher::Batch
{
    /** Unique canonical texts, arrival order (the dedupe index). */
    std::vector<std::string> canon;
    /** Parallel to canon: the requests the sweep will run. */
    std::vector<Request> reqs;
    /** No new joiners (window elapsed or batch full). */
    bool closed = false;
    /** results/error published; members may copy and leave. */
    bool done = false;
    std::vector<Result> results;
    std::exception_ptr error;
    std::condition_variable cv;
};

MissBatcher::MissBatcher(BatchOptions options, Sweep sweep)
    : options_(options), sweep_(std::move(sweep))
{
    require(options_.windowMs >= 0.0,
            "miss batcher: windowMs must be >= 0");
    require(options_.maxBatch >= 1,
            "miss batcher: maxBatch must be >= 1");
    if (!sweep_)
        sweep_ = [](const std::vector<Request> &reqs) {
            return evaluateFleetBatch(reqs);
        };
}

Result
MissBatcher::evaluate(const Request &req,
                      const std::string &canonical)
{
    std::shared_ptr<Batch> batch;
    std::unique_lock<std::mutex> lock(mu_);
    ++stats_.requests;
    if (open_) {
        // Join the open window as a member.
        batch = open_;
        std::size_t slot;
        auto it = std::find(batch->canon.begin(),
                            batch->canon.end(), canonical);
        if (it != batch->canon.end()) {
            // In-window duplicate: same canonical text, one job.
            slot = static_cast<std::size_t>(
                it - batch->canon.begin());
            ++stats_.coalesced;
            TTS_OBS_COUNT(metrics().coalesced, 1);
        } else {
            slot = batch->canon.size();
            batch->canon.push_back(canonical);
            batch->reqs.push_back(req);
            if (batch->canon.size() >= options_.maxBatch) {
                // Full: close early and wake the leader now.
                batch->closed = true;
                open_.reset();
                batch->cv.notify_all();
            }
        }
        batch->cv.wait(lock, [&] { return batch->done; });
        if (batch->error)
            std::rethrow_exception(batch->error);
        return batch->results[slot];
    }

    // First miss of a window: become the leader.
    batch = std::make_shared<Batch>();
    batch->canon.push_back(canonical);
    batch->reqs.push_back(req);
    if (options_.windowMs > 0.0 && options_.maxBatch > 1) {
        open_ = batch;
        batch->cv.wait_for(
            lock,
            std::chrono::duration<double, std::milli>(
                options_.windowMs),
            [&] { return batch->closed; });
        if (open_ == batch)
            open_.reset();
        batch->closed = true;
    }
    // Snapshot the jobs under the lock, sweep outside it so new
    // windows can open while the fleet runs.
    const std::vector<Request> jobs = batch->reqs;
    lock.unlock();

    std::vector<Result> results;
    std::exception_ptr error;
    try {
        results = sweep_(jobs);
        invariant(results.size() == jobs.size(),
                  "miss batcher: sweep returned " +
                      std::to_string(results.size()) +
                      " results for " + std::to_string(jobs.size()) +
                      " jobs");
    } catch (...) {
        error = std::current_exception();
    }

    Result mine;
    lock.lock();
    ++stats_.sweeps;
    stats_.jobs += jobs.size();
    stats_.largestBatch = std::max(
        stats_.largestBatch,
        static_cast<std::uint64_t>(jobs.size()));
    TTS_OBS_COUNT(metrics().sweeps, 1);
    TTS_OBS_COUNT(metrics().jobs,
                  static_cast<std::int64_t>(jobs.size()));
    batch->results = std::move(results);
    batch->error = error;
    batch->done = true;
    if (!error)
        mine = batch->results[0]; // The leader is always job 0.
    lock.unlock();
    batch->cv.notify_all();
    if (error)
        std::rethrow_exception(error);
    return mine;
}

BatchStats
MissBatcher::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

} // namespace serve
} // namespace tts
