/**
 * @file
 * The long-lived scenario-serving daemon (tts::serve).
 *
 * A Daemon owns a bounded admission queue, a fixed pool of worker
 * threads (width defaults to exec::defaultThreadCount(), the same
 * resolution the tts::exec engine uses), and a shared ResultCache.
 * Every submitted request gets exactly one Reply - a result or a
 * typed rejection - no matter how hostile the input or how unlucky
 * the workers.  The degradation ladder, from least to most loaded:
 *
 *  1. cache hit - answered from the content-addressed cache,
 *     bit-identical to a fresh evaluation;
 *  2. coalesced - an identical request is already evaluating, so
 *     this one waits for that result instead of re-running it
 *     (single-flight);
 *  3. fresh evaluation - run on a worker, with transient failures
 *     retried under an exponential-backoff budget;
 *  4. deadline_exceeded - admitted, but its deadline passed before
 *     a worker could start it;
 *  5. overloaded - the admission queue is full; shed immediately
 *     (an instant typed reply, never an unbounded wait);
 *  6. worker_failed - evaluation kept dying past the retry budget;
 *  7. shutdown - the daemon is draining; the client should retry
 *     against a fresh instance.
 *
 * Malformed and unsupported-version requests are answered on rung
 * 0, before any of this: parsing happens on the worker inside the
 * same try/catch that guards evaluation, so a garbage payload costs
 * one queue slot and produces one typed reply.
 *
 * Fleet-backed cache misses additionally ride the MissBatcher
 * (serve/batch.hh): concurrent misses inside a short window execute
 * as one sharded fleet sweep, each reply still bit-identical to an
 * individual fresh evaluation.
 *
 * Crash-safety: the cache persists through guard's CRC'd tmp+rename
 * checkpoint path on shutdown() (and optionally every N inserts),
 * and a corrupt snapshot quarantines instead of aborting startup.
 * Observability: `serve.*` metrics (queue depth, hit/shed/retry
 * counters, latency histograms) when tts::obs collection is on.
 */

#ifndef TTS_SERVE_DAEMON_HH
#define TTS_SERVE_DAEMON_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/batch.hh"
#include "serve/cache.hh"
#include "serve/fault.hh"
#include "serve/protocol.hh"

namespace tts {
namespace serve {

/** Daemon sizing and robustness knobs. */
struct DaemonConfig
{
    /** Worker threads; 0 = exec::defaultThreadCount(). */
    std::size_t workers = 0;
    /** Admission queue capacity; submits past it are shed. */
    std::size_t queueCapacity = 64;
    /** Deadline applied when a request carries none (ms); 0 = no
     *  default deadline. */
    double defaultDeadlineMs = 0.0;
    /** Evaluation attempts per request (>= 1); transient failures
     *  are retried up to this many times in total. */
    std::size_t retryBudget = 3;
    /** Backoff before retry attempt k is 2^(k-1) times this (ms). */
    double retryBackoffBaseMs = 0.5;
    /** Largest request document accepted (bytes). */
    std::size_t maxRequestBytes = 64 * 1024;
    /** Result cache sizing/persistence. */
    CacheConfig cache;
    /** Miss batching for fleet-backed studies (serve/batch.hh);
     *  windowMs = 0 evaluates every miss individually. */
    BatchOptions batch;
};

/** Monotonic counters describing one daemon's lifetime. */
struct DaemonStats
{
    std::uint64_t submitted = 0;
    std::uint64_t accepted = 0;
    std::uint64_t shed = 0;
    std::uint64_t repliesOk = 0;
    std::uint64_t repliesError = 0;
    std::uint64_t malformed = 0;
    std::uint64_t unsupportedVersion = 0;
    std::uint64_t deadlineExceeded = 0;
    std::uint64_t workerFailed = 0;
    std::uint64_t retries = 0;
    std::uint64_t coalesced = 0;
    std::uint64_t evaluations = 0;
    std::uint64_t queuePeak = 0;

    /** @return Every counter as a flat kv map (for kv_json). */
    std::map<std::string, double> toMap() const;
};

class Daemon
{
  public:
    /**
     * Start the workers.  Loads the cache snapshot if configured
     * (a corrupt snapshot is quarantined, never fatal).
     *
     * @param config Sizing/robustness knobs.
     * @param faults Injected fault plan (tests/soak); the default
     *        plan injects nothing.
     */
    explicit Daemon(DaemonConfig config,
                    ServeFaultPlan faults = ServeFaultPlan{});

    /** shutdown(), then joins the workers. */
    ~Daemon();

    Daemon(const Daemon &) = delete;
    Daemon &operator=(const Daemon &) = delete;

    /**
     * Submit one request document.  Never throws and never blocks
     * on evaluation: over-capacity and post-shutdown submits are
     * answered immediately with typed rejections through the same
     * future.
     */
    std::future<Reply> submit(std::string request_json);

    /**
     * Submit with a completion callback instead of a future.  The
     * callback runs exactly once - on a worker thread after
     * evaluation, or on the submitting thread for an immediate
     * typed rejection (shed/shutdown).  It must be cheap and must
     * not call back into the daemon; the session mux uses this to
     * avoid parking a thread per outstanding request.
     */
    void submitAsync(std::string request_json,
                     std::function<void(Reply)> done);

    /** submit() and wait. */
    Reply call(const std::string &request_json);

    /** Block until every accepted request has been answered. */
    void drain();

    /**
     * Stop accepting, answer everything still queued, join the
     * workers, persist the cache.  Idempotent.
     */
    void shutdown();

    /** @return What the cache-snapshot load found (for logging). */
    CacheLoadOutcome cacheLoadOutcome() const
    {
        return loadOutcome_;
    }

    /** @return A snapshot of the lifetime counters. */
    DaemonStats stats() const;

    /** @return Cache counters (hits/misses/evictions/...). */
    ResultCache::Counters cacheCounters() const
    {
        return cache_.counters();
    }

    /** @return Miss-batcher counters (sweeps/jobs/coalesced/...). */
    BatchStats batchStats() const { return batcher_.stats(); }

    /** @return Resident cache entries. */
    std::size_t cacheSize() const { return cache_.size(); }

    /** @return Requests queued right now (snapshot; for tests and
     *  the bench harness). */
    std::size_t queueDepth() const;

    /** @return The configuration the daemon runs with. */
    const DaemonConfig &config() const { return config_; }

  private:
    struct Job;
    struct Flight;

    void workerLoop();
    Reply process(Job &job);
    Reply evaluateWithRetries(const Request &req,
                              const std::string &canonical,
                              std::uint64_t seq, std::uint64_t fp);
    void noteReply(const Reply &reply, double latency_ms);

    DaemonConfig config_;
    ServeFaultPlan faults_;
    ResultCache cache_;
    MissBatcher batcher_;
    CacheLoadOutcome loadOutcome_ = CacheLoadOutcome::Fresh;

    mutable std::mutex mu_;
    std::condition_variable workReady_;
    std::condition_variable queueIdle_;
    std::deque<std::unique_ptr<Job>> queue_;
    std::map<std::uint64_t, std::shared_ptr<Flight>> flights_;
    std::size_t inFlight_ = 0;
    std::uint64_t nextSeq_ = 0;
    bool stopping_ = false;
    DaemonStats stats_;

    std::vector<std::thread> workers_;
};

/** Options for serving one framed byte stream. */
struct StreamOptions
{
    /** Frame size limits (the request byte budget). */
    FrameLimits limits;
    /**
     * Replies outstanding before the loop blocks on the oldest
     * (replies are written in request order); 0 = the daemon's
     * queue capacity.  Raising it past the queue capacity lets a
     * fast client overrun admission and see `overloaded` replies.
     */
    std::size_t pipelineWindow = 0;
};

/** What one serveStream() session did. */
struct StreamStats
{
    std::size_t framesOk = 0;
    std::size_t framesMalformed = 0;
    std::size_t repliesWritten = 0;
    /** True when a unrecoverable frame ended the session early. */
    bool aborted = false;
};

/**
 * Serve length-prefixed request frames from `in`, writing one reply
 * frame per request to `out` in request order.  Returns at EOF or
 * after an unrecoverable framing error (every accepted request is
 * still answered first).  Never throws on hostile input.
 */
StreamStats serveStream(std::istream &in, std::ostream &out,
                        Daemon &daemon,
                        const StreamOptions &options =
                            StreamOptions{});

} // namespace serve
} // namespace tts

#endif // TTS_SERVE_DAEMON_HH
