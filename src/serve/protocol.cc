#include "serve/protocol.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <set>
#include <sstream>

#include "cache/fingerprint.hh"
#include "plant/options.hh"
#include "util/error.hh"
#include "util/kv_json.hh"
#include "workload/placement.hh"

namespace tts {
namespace serve {

namespace {

std::string
formatDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/** Typed field extraction over the parsed KvAnyMap. */
class Fields
{
  public:
    explicit Fields(KvAnyMap kv) : kv_(std::move(kv)) {}

    double number(const std::string &key, double fallback)
    {
        auto it = kv_.find(key);
        if (it == kv_.end())
            return fallback;
        require(it->second.isNumber(),
                "request: key \"" + key + "\" must be a number");
        taken_.insert(key);
        return it->second.num;
    }

    std::string text(const std::string &key,
                     const std::string &fallback)
    {
        auto it = kv_.find(key);
        if (it == kv_.end())
            return fallback;
        require(it->second.isString(),
                "request: key \"" + key + "\" must be a string");
        taken_.insert(key);
        return it->second.str;
    }

    /** Reject any key no extractor consumed (typo defense). */
    void expectAllTaken() const
    {
        for (const auto &[key, value] : kv_) {
            (void)value;
            require(taken_.count(key) != 0,
                    "request: unknown key \"" + key + "\"");
        }
    }

  private:
    KvAnyMap kv_;
    std::set<std::string> taken_;
};

void
validate(const Request &r)
{
    require(r.study == "cooling" || r.study == "outage" ||
                r.study == "resilience" || r.study == "plant" ||
                r.study == "fleet" || r.study == "optimize",
            "request: unknown study \"" + r.study +
                "\" (try cooling, outage, resilience, plant, "
                "fleet, optimize)");
    // Throws its own FatalError on an unknown backend name.
    plant::backendKindFromString(r.plantBackend);
    require(r.platform >= 0 && r.platform <= 2,
            "request: platform must be 0, 1, or 2");
    require(r.servers >= 1 && r.servers <= 1000000,
            "request: servers must be in [1, 1000000]");
    require(std::isfinite(r.days) && r.days > 0.0 && r.days <= 32.0,
            "request: days must be in (0, 32]");
    require(std::isfinite(r.meltC) && r.meltC >= 0.0 &&
                r.meltC <= 120.0,
            "request: melt_c must be in [0, 120]");
    require(std::isfinite(r.waxLiters) && r.waxLiters >= 0.0 &&
                r.waxLiters <= 64.0,
            "request: wax_l must be in [0, 64]");
    require(std::isfinite(r.utilization) && r.utilization >= 0.0 &&
                r.utilization <= 1.0,
            "request: util must be in [0, 1]");
    require(std::isfinite(r.horizonS) && r.horizonS >= 0.0 &&
                r.horizonS <= 32.0 * 86400.0,
            "request: horizon_s must be in [0, 32 days]");
    // Throws its own FatalError on an unknown policy name.
    workload::placementPolicyFromName(r.placement);
    require(r.objective == "peak" || r.objective == "tco",
            "request: objective must be peak or tco");
    require(r.budget >= 1 && r.budget <= 4096,
            "request: budget must be in [1, 4096]");
    require(r.restarts >= 1 && r.restarts <= 64,
            "request: restarts must be in [1, 64]");
    require(std::isfinite(r.deadlineMs) && r.deadlineMs >= 0.0,
            "request: deadline_ms must be >= 0");
}

} // namespace

const char *
toString(ErrorKind kind)
{
    switch (kind) {
      case ErrorKind::Malformed: return "malformed";
      case ErrorKind::UnsupportedVersion:
        return "unsupported_version";
      case ErrorKind::Overloaded: return "overloaded";
      case ErrorKind::DeadlineExceeded: return "deadline_exceeded";
      case ErrorKind::WorkerFailed: return "worker_failed";
      case ErrorKind::Shutdown: return "shutdown";
    }
    panic("unreachable ErrorKind");
}

ErrorKind
errorKindFromString(const std::string &name)
{
    for (ErrorKind k :
         {ErrorKind::Malformed, ErrorKind::UnsupportedVersion,
          ErrorKind::Overloaded, ErrorKind::DeadlineExceeded,
          ErrorKind::WorkerFailed, ErrorKind::Shutdown}) {
        if (name == toString(k))
            return k;
    }
    fatal("unknown serve error kind '" + name + "'");
}

Request
parseRequest(const std::string &json, std::size_t max_bytes)
{
    Fields f(parseKvAnyJson(json, max_bytes));
    Request r;
    // Version gate first, before any other key is touched: a
    // future-version request may carry keys this build has never
    // heard of, and the client should learn "speak proto 1", not
    // "unknown key".
    double proto = f.number("proto", 1.0);
    require(std::isfinite(proto) && proto >= 1.0 &&
                proto == std::floor(proto) && proto <= 1e9,
            "request: proto must be a positive integer");
    r.proto = static_cast<int>(proto);
    if (r.proto != 1)
        throw UnsupportedVersionError(
            "request: proto " + std::to_string(r.proto) +
            " is not supported (this daemon speaks proto 1)");
    r.study = f.text("study", r.study);
    r.platform = static_cast<int>(
        f.number("platform", static_cast<double>(r.platform)));
    double servers =
        f.number("servers", static_cast<double>(r.servers));
    require(std::isfinite(servers) && servers >= 0.0 &&
                servers == std::floor(servers),
            "request: servers must be a non-negative integer");
    r.servers = static_cast<std::size_t>(servers);
    r.days = f.number("days", r.days);
    r.meltC = f.number("melt_c", r.meltC);
    r.waxLiters = f.number("wax_l", r.waxLiters);
    r.utilization = f.number("util", r.utilization);
    r.horizonS = f.number("horizon_s", r.horizonS);
    r.scenario = f.text("scenario", r.scenario);
    // The escape-free string dialect cannot carry newlines, so a
    // multi-line fault schedule travels with ';' line breaks (the
    // schedule grammar never uses ';'); restore them here so the
    // Request always holds the real `tts-fault-schedule v1` text.
    r.faults = f.text("faults", r.faults);
    for (char &c : r.faults)
        if (c == ';')
            c = '\n';
    r.plantBackend = f.text("plant_backend", r.plantBackend);
    r.weather = f.text("weather", r.weather);
    for (char &c : r.weather)
        if (c == ';')
            c = '\n';
    r.placement = f.text("placement", r.placement);
    r.objective = f.text("objective", r.objective);
    double budget =
        f.number("budget", static_cast<double>(r.budget));
    require(std::isfinite(budget) && budget >= 0.0 &&
                budget == std::floor(budget),
            "request: budget must be a non-negative integer");
    r.budget = static_cast<std::size_t>(budget);
    double restarts =
        f.number("restarts", static_cast<double>(r.restarts));
    require(std::isfinite(restarts) && restarts >= 0.0 &&
                restarts == std::floor(restarts),
            "request: restarts must be a non-negative integer");
    r.restarts = static_cast<std::size_t>(restarts);
    double opt_seed =
        f.number("opt_seed", static_cast<double>(r.optSeed));
    require(std::isfinite(opt_seed) && opt_seed >= 0.0 &&
                opt_seed == std::floor(opt_seed) &&
                opt_seed <= 9007199254740992.0,
            "request: opt_seed must be an integer in [0, 2^53]");
    r.optSeed = static_cast<std::uint64_t>(opt_seed);
    r.deadlineMs = f.number("deadline_ms", r.deadlineMs);
    f.expectAllTaken();
    validate(r);
    return r;
}

std::string
writeRequest(const Request &req)
{
    KvAnyMap kv;
    kv["study"] = KvValue::string(req.study);
    kv["platform"] =
        KvValue::number(static_cast<double>(req.platform));
    kv["servers"] = KvValue::number(static_cast<double>(req.servers));
    kv["days"] = KvValue::number(req.days);
    kv["melt_c"] = KvValue::number(req.meltC);
    kv["wax_l"] = KvValue::number(req.waxLiters);
    kv["util"] = KvValue::number(req.utilization);
    kv["horizon_s"] = KvValue::number(req.horizonS);
    kv["scenario"] = KvValue::string(req.scenario);
    kv["deadline_ms"] = KvValue::number(req.deadlineMs);
    if (!req.faults.empty()) {
        // Multi-line schedule text travels with ';' line breaks
        // (see parseRequest); everything else must already be
        // representable in the escape-free dialect.
        for (char c : req.faults)
            require(c != '"' && c != '\\' && c != ';',
                    "request: fault schedule text contains an "
                    "unencodable character");
        std::string flat = req.faults;
        for (char &c : flat)
            if (c == '\n')
                c = ';';
        kv["faults"] = KvValue::string(flat);
    }
    // Post-v1 fields are omitted at their defaults so older request
    // documents round-trip byte-identically.
    if (req.proto != 1)
        kv["proto"] =
            KvValue::number(static_cast<double>(req.proto));
    if (req.placement != "uniform")
        kv["placement"] = KvValue::string(req.placement);
    if (req.objective != "peak")
        kv["objective"] = KvValue::string(req.objective);
    if (req.budget != 16)
        kv["budget"] =
            KvValue::number(static_cast<double>(req.budget));
    if (req.restarts != 1)
        kv["restarts"] =
            KvValue::number(static_cast<double>(req.restarts));
    if (req.optSeed != 0x0417c001ULL)
        kv["opt_seed"] =
            KvValue::number(static_cast<double>(req.optSeed));
    if (req.plantBackend != "crac")
        kv["plant_backend"] = KvValue::string(req.plantBackend);
    if (!req.weather.empty()) {
        for (char c : req.weather)
            require(c != '"' && c != '\\' && c != ';',
                    "request: weather trace text contains an "
                    "unencodable character");
        std::string flat = req.weather;
        for (char &c : flat)
            if (c == '\n')
                c = ';';
        kv["weather"] = KvValue::string(flat);
    }
    return writeKvAnyJson(kv);
}

std::string
canonicalText(const Request &req)
{
    // Fixed field order, every field spelled out, deadline excluded:
    // the deadline shapes scheduling, never the result bits.
    std::ostringstream out;
    out << "tts-serve-request v1\n"
        << "study " << req.study << "\n"
        << "platform " << req.platform << "\n"
        << "servers " << req.servers << "\n"
        << "days " << formatDouble(req.days) << "\n"
        << "melt_c " << formatDouble(req.meltC) << "\n"
        << "wax_l " << formatDouble(req.waxLiters) << "\n"
        << "util " << formatDouble(req.utilization) << "\n"
        << "horizon_s " << formatDouble(req.horizonS) << "\n"
        << "scenario " << req.scenario << "\n"
        << "faults " << req.faults.size() << ":" << req.faults
        << "\n";
    // Later fields append only when non-default: a pre-plant or
    // pre-fleet request keeps its pinned fingerprint, and "omitted"
    // and "spelled-out default" still hash identically.  `proto`
    // never appears at all - like the deadline, it shapes whether
    // the answer arrives, never the answer's bits.
    if (req.plantBackend != "crac")
        out << "plant_backend " << req.plantBackend << "\n";
    if (!req.weather.empty())
        out << "weather " << req.weather.size() << ":"
            << req.weather << "\n";
    if (req.placement != "uniform")
        out << "placement " << req.placement << "\n";
    if (req.objective != "peak")
        out << "objective " << req.objective << "\n";
    if (req.budget != 16)
        out << "budget " << req.budget << "\n";
    if (req.restarts != 1)
        out << "restarts " << req.restarts << "\n";
    if (req.optSeed != 0x0417c001ULL)
        out << "opt_seed " << req.optSeed << "\n";
    return out.str();
}

std::uint64_t
fnv1a(const std::string &bytes)
{
    // Delegates to the unified fingerprint module so the serve cache
    // and the opt memo can never hash differently.
    return cache::fnv1a(bytes);
}

std::uint64_t
fingerprint(const Request &req)
{
    return fnv1a(canonicalText(req));
}

Reply
Reply::okReply(std::uint64_t fp, bool cache_hit, double eval_ms,
               Result result)
{
    Reply r;
    r.ok = true;
    r.cacheHit = cache_hit;
    r.fingerprintValue = fp;
    r.evalMs = eval_ms;
    r.result = std::move(result);
    return r;
}

Reply
Reply::errorReply(ErrorKind kind, const std::string &detail,
                  std::uint64_t fp)
{
    Reply r;
    r.ok = false;
    r.error = kind;
    r.detail = detail;
    r.fingerprintValue = fp;
    return r;
}

std::string
Reply::toJson() const
{
    KvAnyMap kv;
    char fp_hex[24];
    std::snprintf(fp_hex, sizeof(fp_hex), "%016llx",
                  static_cast<unsigned long long>(fingerprintValue));
    kv["fingerprint"] = KvValue::string(fp_hex);
    if (ok) {
        kv["status"] = KvValue::string("ok");
        kv["cache_hit"] = KvValue::number(cacheHit ? 1.0 : 0.0);
        kv["eval_ms"] = KvValue::number(evalMs);
        for (const auto &[key, value] : result) {
            invariant(key.find('.') != std::string::npos,
                      "serve result key '" + key +
                          "' is not dotted (would collide with the "
                          "reply envelope)");
            kv[key] = KvValue::number(value);
        }
    } else {
        kv["status"] = KvValue::string("error");
        kv["error"] = KvValue::string(toString(error));
        // The detail repeats hostile request bytes; strip anything
        // the escape-free writer would reject.
        std::string safe = detail;
        for (char &c : safe) {
            const auto u = static_cast<unsigned char>(c);
            if (c == '"' || c == '\\' || u < 0x20)
                c = '?';
        }
        kv["detail"] = KvValue::string(safe);
    }
    return writeKvAnyJson(kv);
}

Reply
Reply::fromJson(const std::string &json)
{
    KvAnyMap kv = parseKvAnyJson(json);
    Reply r;
    auto text = [&](const std::string &key) {
        auto it = kv.find(key);
        require(it != kv.end() && it->second.isString(),
                "reply: missing string key \"" + key + "\"");
        return it->second.str;
    };
    const std::string status = text("status");
    r.fingerprintValue = static_cast<std::uint64_t>(
        std::strtoull(text("fingerprint").c_str(), nullptr, 16));
    if (status == "ok") {
        r.ok = true;
        auto hit = kv.find("cache_hit");
        require(hit != kv.end() && hit->second.isNumber(),
                "reply: missing cache_hit");
        r.cacheHit = hit->second.num != 0.0;
        auto ms = kv.find("eval_ms");
        require(ms != kv.end() && ms->second.isNumber(),
                "reply: missing eval_ms");
        r.evalMs = ms->second.num;
        for (const auto &[key, value] : kv) {
            if (key.find('.') == std::string::npos)
                continue;
            require(value.isNumber(),
                    "reply: result key \"" + key +
                        "\" must be a number");
            r.result[key] = value.num;
        }
        return r;
    }
    require(status == "error",
            "reply: bad status \"" + status + "\"");
    r.ok = false;
    r.error = errorKindFromString(text("error"));
    r.detail = text("detail");
    return r;
}

void
writeFrame(std::ostream &out, const std::string &payload,
           const FrameLimits &limits)
{
    require(payload.size() <= limits.maxPayloadBytes,
            "frame: payload of " + std::to_string(payload.size()) +
                " bytes exceeds the " +
                std::to_string(limits.maxPayloadBytes) +
                "-byte frame limit");
    out << "tts-frame " << payload.size() << "\n" << payload;
    out.flush();
}

FrameResult
readFrame(std::istream &in, const FrameLimits &limits)
{
    FrameResult r;
    std::string header;
    if (!std::getline(in, header)) {
        r.status = FrameStatus::Eof;
        return r;
    }
    const std::string tag = "tts-frame ";
    if (header.rfind(tag, 0) != 0) {
        r.status = FrameStatus::Malformed;
        r.diagnostic = "frame: bad header (expected 'tts-frame "
                       "<length>')";
        r.recoverable = false;
        return r;
    }
    const std::string len_text = header.substr(tag.size());
    std::size_t used = 0;
    unsigned long long len = 0;
    bool len_ok = !len_text.empty();
    if (len_ok) {
        try {
            len = std::stoull(len_text, &used);
            len_ok = used == len_text.size();
        } catch (const std::exception &) {
            len_ok = false;
        }
    }
    if (!len_ok) {
        r.status = FrameStatus::Malformed;
        r.diagnostic =
            "frame: bad length '" + len_text + "' in header";
        r.recoverable = false;
        return r;
    }
    if (len > limits.maxPayloadBytes) {
        // Drain the declared payload so the next frame still lines
        // up; a stream too short to drain is unrecoverable anyway.
        char sink[4096];
        unsigned long long remaining = len;
        while (remaining > 0 && in.good()) {
            const auto chunk = static_cast<std::streamsize>(
                remaining < sizeof(sink)
                    ? remaining
                    : static_cast<unsigned long long>(sizeof(sink)));
            in.read(sink, chunk);
            remaining -=
                static_cast<unsigned long long>(in.gcount());
            if (in.gcount() == 0)
                break;
        }
        r.status = FrameStatus::Malformed;
        r.diagnostic = "frame: payload of " + std::to_string(len) +
            " bytes exceeds the " +
            std::to_string(limits.maxPayloadBytes) +
            "-byte frame limit";
        r.recoverable = remaining == 0;
        return r;
    }
    r.payload.resize(static_cast<std::size_t>(len));
    if (len > 0) {
        in.read(r.payload.data(),
                static_cast<std::streamsize>(len));
        const auto got = static_cast<std::size_t>(in.gcount());
        if (got != static_cast<std::size_t>(len)) {
            r.payload.clear();
            r.status = FrameStatus::Malformed;
            r.diagnostic = "frame: truncated payload (" +
                std::to_string(got) + " of " + std::to_string(len) +
                " declared bytes)";
            r.recoverable = false;
            return r;
        }
    }
    r.status = FrameStatus::Ok;
    return r;
}

void
FrameDecoder::feed(const char *data, std::size_t n)
{
    if (state_ == State::Poisoned)
        return; // Nothing past an unrecoverable error is read.
    buf_.append(data, n);
}

void
FrameDecoder::compact()
{
    // Drop the consumed prefix once it dominates the buffer, so a
    // long-lived session doesn't accumulate every frame it ever
    // received.
    if (pos_ > 4096 && pos_ * 2 >= buf_.size()) {
        buf_.erase(0, pos_);
        pos_ = 0;
    }
}

bool
FrameDecoder::next(FrameResult *out)
{
    static constexpr std::size_t kMaxHeaderBytes = 64;
    for (;;) {
        switch (state_) {
        case State::Poisoned:
            *out = poison_;
            return true;
        case State::Header: {
            const std::size_t nl = buf_.find('\n', pos_);
            if (nl == std::string::npos) {
                if (buf_.size() - pos_ > kMaxHeaderBytes) {
                    poison_.status = FrameStatus::Malformed;
                    poison_.diagnostic =
                        "frame: header line exceeds " +
                        std::to_string(kMaxHeaderBytes) + " bytes";
                    poison_.recoverable = false;
                    state_ = State::Poisoned;
                    continue;
                }
                return false;
            }
            const std::string header =
                buf_.substr(pos_, nl - pos_);
            pos_ = nl + 1;
            compact();
            const std::string tag = "tts-frame ";
            if (header.rfind(tag, 0) != 0) {
                poison_.status = FrameStatus::Malformed;
                poison_.diagnostic =
                    "frame: bad header (expected 'tts-frame "
                    "<length>')";
                poison_.recoverable = false;
                state_ = State::Poisoned;
                continue;
            }
            const std::string len_text = header.substr(tag.size());
            std::size_t used = 0;
            unsigned long long len = 0;
            bool len_ok = !len_text.empty();
            if (len_ok) {
                try {
                    len = std::stoull(len_text, &used);
                    len_ok = used == len_text.size();
                } catch (const std::exception &) {
                    len_ok = false;
                }
            }
            if (!len_ok) {
                poison_.status = FrameStatus::Malformed;
                poison_.diagnostic =
                    "frame: bad length '" + len_text +
                    "' in header";
                poison_.recoverable = false;
                state_ = State::Poisoned;
                continue;
            }
            want_ = static_cast<std::size_t>(len);
            if (len > limits_.maxPayloadBytes) {
                state_ = State::Drain;
                continue;
            }
            state_ = State::Payload;
            continue;
        }
        case State::Payload:
            if (buf_.size() - pos_ < want_)
                return false;
            out->status = FrameStatus::Ok;
            out->payload = buf_.substr(pos_, want_);
            out->diagnostic.clear();
            out->recoverable = false;
            pos_ += want_;
            want_ = 0;
            state_ = State::Header;
            compact();
            return true;
        case State::Drain: {
            const std::size_t have = buf_.size() - pos_;
            const std::size_t drop =
                have < want_ ? have : want_;
            pos_ += drop;
            want_ -= drop;
            compact();
            if (want_ > 0)
                return false;
            out->status = FrameStatus::Malformed;
            out->payload.clear();
            out->diagnostic = "frame: payload exceeds the " +
                std::to_string(limits_.maxPayloadBytes) +
                "-byte frame limit";
            out->recoverable = true;
            state_ = State::Header;
            return true;
        }
        }
    }
}

FrameResult
FrameDecoder::finish() const
{
    FrameResult r;
    if (state_ == State::Poisoned) {
        r = poison_;
        return r;
    }
    if (state_ == State::Header && buf_.size() == pos_) {
        r.status = FrameStatus::Eof;
        return r;
    }
    r.status = FrameStatus::Malformed;
    r.diagnostic = state_ == State::Header
        ? "frame: stream ended inside a header line"
        : "frame: stream ended inside a declared payload";
    r.recoverable = false;
    return r;
}

} // namespace serve
} // namespace tts
