#include "serve/fault.hh"

#include "util/random.hh"

namespace tts {
namespace serve {

ServeFaultPlan
ServeFaultPlan::generate(const ServeFaultProfile &profile,
                         std::size_t request_count,
                         std::size_t session_count)
{
    auto probability = [](double p, const char *name) {
        require(p >= 0.0 && p <= 1.0,
                std::string("serve fault profile: ") + name +
                    " must be in [0, 1]");
    };
    probability(profile.workerCrashPerRequest, "workerCrashPerRequest");
    probability(profile.malformedPerRequest, "malformedPerRequest");
    probability(profile.oversizedPerRequest, "oversizedPerRequest");
    probability(profile.truncatedPerRequest, "truncatedPerRequest");
    probability(profile.slowClientPerRequest, "slowClientPerRequest");
    probability(profile.disconnectPerRequest, "disconnectPerRequest");
    probability(profile.slowSessionPerSession,
                "slowSessionPerSession");
    const double client_total = profile.malformedPerRequest +
        profile.oversizedPerRequest + profile.truncatedPerRequest +
        profile.slowClientPerRequest + profile.disconnectPerRequest;
    require(client_total <= 1.0,
            "serve fault profile: client-side probabilities sum past "
            "1");
    require(profile.slowClientStallMs >= 0.0,
            "serve fault profile: slowClientStallMs must be >= 0");

    ServeFaultPlan plan;
    plan.stallMs_ = profile.slowClientStallMs;
    plan.requestFaults_.resize(request_count, RequestFault::None);
    plan.crashAttempts_.resize(request_count, 0);
    for (std::size_t i = 0; i < request_count; ++i) {
        // One sub-stream per axis per request: adding crash faults
        // never reshuffles which requests go malformed.
        Rng client = Rng::forStream(profile.seed, 2 * i);
        const double u = client.uniform();
        double edge = profile.malformedPerRequest;
        if (u < edge) {
            plan.requestFaults_[i] = RequestFault::Malformed;
        } else if (u < (edge += profile.oversizedPerRequest)) {
            plan.requestFaults_[i] = RequestFault::Oversized;
        } else if (u < (edge += profile.truncatedPerRequest)) {
            plan.requestFaults_[i] = RequestFault::Truncated;
        } else if (u < (edge += profile.slowClientPerRequest)) {
            plan.requestFaults_[i] = RequestFault::SlowClient;
        } else if (u < (edge += profile.disconnectPerRequest)) {
            // Appended to the cascade's tail so enabling it never
            // reshuffles which requests drew the older faults.
            plan.requestFaults_[i] = RequestFault::Disconnect;
        }
        Rng worker = Rng::forStream(profile.seed, 2 * i + 1);
        if (worker.uniform() < profile.workerCrashPerRequest)
            plan.crashAttempts_[i] = profile.workerCrashAttempts;
    }
    // Session-level draws live at a disjoint stream offset so
    // adding sessions never perturbs the per-request streams above.
    constexpr std::uint64_t kSessionStreamBase =
        std::uint64_t{1} << 32;
    plan.slowSessions_.resize(session_count, 0);
    for (std::size_t s = 0; s < session_count; ++s) {
        Rng session =
            Rng::forStream(profile.seed, kSessionStreamBase + s);
        if (session.uniform() < profile.slowSessionPerSession)
            plan.slowSessions_[s] = 1;
    }
    return plan;
}

std::size_t
ServeFaultPlan::crashAttempts(std::uint64_t seq) const
{
    return seq < crashAttempts_.size()
        ? crashAttempts_[static_cast<std::size_t>(seq)]
        : 0;
}

RequestFault
ServeFaultPlan::requestFault(std::size_t i) const
{
    return i < requestFaults_.size() ? requestFaults_[i]
                                     : RequestFault::None;
}

std::size_t
ServeFaultPlan::countOf(RequestFault kind) const
{
    std::size_t n = 0;
    for (RequestFault f : requestFaults_)
        if (f == kind)
            ++n;
    return n;
}

std::size_t
ServeFaultPlan::crashedRequests() const
{
    std::size_t n = 0;
    for (std::size_t c : crashAttempts_)
        if (c > 0)
            ++n;
    return n;
}

bool
ServeFaultPlan::slowSession(std::size_t s) const
{
    return s < slowSessions_.size() && slowSessions_[s] != 0;
}

std::size_t
ServeFaultPlan::slowSessions() const
{
    std::size_t n = 0;
    for (char c : slowSessions_)
        if (c != 0)
            ++n;
    return n;
}

} // namespace serve
} // namespace tts
