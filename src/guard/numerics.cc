#include "guard/numerics.hh"

#include "obs/obs.hh"

namespace tts {
namespace guard {

namespace {

GuardConfig &
mutableDefault()
{
    static GuardConfig config;
    return config;
}

} // namespace

const GuardConfig &
defaultGuardConfig()
{
    return mutableDefault();
}

void
setDefaultGuardConfig(const GuardConfig &cfg)
{
    mutableDefault() = cfg;
}

void
publishCounters(const GuardCounters &c)
{
    if (!obs::enabled())
        return;
    // Called once per finished run/arm with its aggregate, rather
    // than live from advance(), so the registry never double-counts
    // an interval that was also merged into a study total.
    obs::Registry &r = obs::registry();
    r.counter("guard.advance.count").add(c.advances);
    r.counter("guard.step.count").add(c.steps);
    r.counter("guard.audit.count").add(c.audits);
    r.counter("guard.retry.count").add(c.retries);
    r.counter("guard.fallback.count").add(c.fallbacks);
    r.counter("guard.trip.count")
        .add(c.sentinelTrips + c.auditTrips);
    r.gauge("guard.worst_residual_j").set(c.worstResidualJ);
}

} // namespace guard
} // namespace tts
