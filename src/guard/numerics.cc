#include "guard/numerics.hh"

namespace tts {
namespace guard {

namespace {

GuardConfig &
mutableDefault()
{
    static GuardConfig config;
    return config;
}

} // namespace

const GuardConfig &
defaultGuardConfig()
{
    return mutableDefault();
}

void
setDefaultGuardConfig(const GuardConfig &cfg)
{
    mutableDefault() = cfg;
}

} // namespace guard
} // namespace tts
