#include "guard/checkpoint.hh"

#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/obs.hh"
#include "util/error.hh"

namespace tts {
namespace guard {

namespace {

std::array<std::uint32_t, 256>
makeCrcTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t n = 0; n < 256; ++n) {
        std::uint32_t c = n;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        table[n] = c;
    }
    return table;
}

std::string
formatDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

std::uint32_t
crc32(const std::string &data)
{
    static const std::array<std::uint32_t, 256> table = makeCrcTable();
    std::uint32_t c = 0xffffffffu;
    for (unsigned char byte : data)
        c = table[(c ^ byte) & 0xffu] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

CheckpointWriter::CheckpointWriter()
{
    body_ = "tts-checkpoint v" + std::to_string(kCheckpointVersion) + "\n";
}

void
CheckpointWriter::section(const std::string &name)
{
    body_ += "section " + name + "\n";
}

void
CheckpointWriter::put(const std::string &key, double value)
{
    body_ += key + " = " + formatDouble(value) + "\n";
}

void
CheckpointWriter::putU64(const std::string &key, std::uint64_t value)
{
    body_ += key + " = " + std::to_string(value) + "\n";
}

void
CheckpointWriter::putI64(const std::string &key, std::int64_t value)
{
    body_ += key + " = " + std::to_string(value) + "\n";
}

void
CheckpointWriter::putBool(const std::string &key, bool value)
{
    body_ += key + " = " + (value ? "1" : "0") + "\n";
}

void
CheckpointWriter::putToken(const std::string &key, const std::string &value)
{
    require(value.find_first_of(" \t\n") == std::string::npos,
            "checkpoint token '" + key + "' contains whitespace");
    body_ += key + " = " + value + "\n";
}

void
CheckpointWriter::putVector(const std::string &key,
                            const std::vector<double> &values)
{
    body_ += key + " = " + std::to_string(values.size());
    for (double v : values)
        body_ += " " + formatDouble(v);
    body_ += "\n";
}

void
CheckpointWriter::putU64Vector(const std::string &key,
                               const std::vector<std::uint64_t> &values)
{
    body_ += key + " = " + std::to_string(values.size());
    for (std::uint64_t v : values)
        body_ += " " + std::to_string(v);
    body_ += "\n";
}

std::string
CheckpointWriter::finish() const
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%08x", crc32(body_));
    return body_ + "crc32 " + buf + "\n";
}

CheckpointReader::CheckpointReader(const std::string &document,
                                   const std::string &origin)
    : origin_(origin)
{
    // Split off the CRC trailer and check it before parsing anything.
    std::size_t trailer = document.rfind("crc32 ");
    require(trailer != std::string::npos,
            origin_ + ": missing crc32 trailer");
    std::string body = document.substr(0, trailer);
    std::string crc_line = document.substr(trailer);

    std::istringstream crc_stream(crc_line);
    std::string tag, hex;
    crc_stream >> tag >> hex;
    std::uint32_t stored = 0;
    try {
        stored = static_cast<std::uint32_t>(std::stoul(hex, nullptr, 16));
    } catch (const std::exception &) {
        fatal(origin_ + ": malformed crc32 trailer '" + hex + "'");
    }
    std::uint32_t actual = crc32(body);
    if (stored != actual) {
        char want[16], got[16];
        std::snprintf(want, sizeof(want), "%08x", stored);
        std::snprintf(got, sizeof(got), "%08x", actual);
        fatal(origin_ + ": crc32 mismatch: expected " + want +
              " (stored trailer), actual " + got + " (computed over " +
              std::to_string(body.size()) +
              " bytes) - checkpoint is corrupt or truncated");
    }

    std::istringstream in(body);
    std::string line;
    while (std::getline(in, line))
        lines_.push_back(line);

    require(!lines_.empty(), origin_ + ": empty checkpoint");
    const std::string header =
        "tts-checkpoint v" + std::to_string(kCheckpointVersion);
    if (lines_[0] != header)
        fatal(origin_ + ": unsupported checkpoint header '" + lines_[0] +
              "' (expected '" + header + "')");
    pos_ = 1;
}

std::string
CheckpointReader::takeValue(const std::string &key)
{
    require(pos_ < lines_.size(),
            origin_ + ": unexpected end of checkpoint wanting key '" +
                key + "'");
    const std::string &line = lines_[pos_];
    const std::string prefix = key + " = ";
    if (line.rfind(prefix, 0) != 0)
        fatal(origin_ + ": expected key '" + key + "', found '" + line +
              "'");
    ++pos_;
    return line.substr(prefix.size());
}

void
CheckpointReader::expectSection(const std::string &name)
{
    require(pos_ < lines_.size(),
            origin_ + ": unexpected end of checkpoint wanting section '" +
                name + "'");
    const std::string want = "section " + name;
    if (lines_[pos_] != want)
        fatal(origin_ + ": expected '" + want + "', found '" +
              lines_[pos_] + "'");
    ++pos_;
}

bool
CheckpointReader::peekSection(const std::string &name) const
{
    return pos_ < lines_.size() && lines_[pos_] == "section " + name;
}

double
CheckpointReader::expect(const std::string &key)
{
    std::string value = takeValue(key);
    try {
        std::size_t used = 0;
        double v = std::stod(value, &used);
        require(used == value.size(),
                origin_ + ": trailing junk in value for '" + key + "'");
        return v;
    } catch (const Error &) {
        throw;
    } catch (const std::exception &) {
        fatal(origin_ + ": bad double for key '" + key + "': '" + value +
              "'");
    }
}

std::uint64_t
CheckpointReader::expectU64(const std::string &key)
{
    std::string value = takeValue(key);
    try {
        std::size_t used = 0;
        std::uint64_t v = std::stoull(value, &used);
        require(used == value.size(),
                origin_ + ": trailing junk in value for '" + key + "'");
        return v;
    } catch (const Error &) {
        throw;
    } catch (const std::exception &) {
        fatal(origin_ + ": bad u64 for key '" + key + "': '" + value +
              "'");
    }
}

std::int64_t
CheckpointReader::expectI64(const std::string &key)
{
    std::string value = takeValue(key);
    try {
        std::size_t used = 0;
        std::int64_t v = std::stoll(value, &used);
        require(used == value.size(),
                origin_ + ": trailing junk in value for '" + key + "'");
        return v;
    } catch (const Error &) {
        throw;
    } catch (const std::exception &) {
        fatal(origin_ + ": bad i64 for key '" + key + "': '" + value +
              "'");
    }
}

bool
CheckpointReader::expectBool(const std::string &key)
{
    std::string value = takeValue(key);
    if (value == "1")
        return true;
    if (value == "0")
        return false;
    fatal(origin_ + ": bad bool for key '" + key + "': '" + value + "'");
}

std::string
CheckpointReader::expectToken(const std::string &key)
{
    return takeValue(key);
}

std::vector<double>
CheckpointReader::expectVector(const std::string &key)
{
    std::istringstream in(takeValue(key));
    std::size_t n = 0;
    if (!(in >> n))
        fatal(origin_ + ": bad vector length for key '" + key + "'");
    std::vector<double> out;
    out.reserve(n);
    std::string word;
    for (std::size_t i = 0; i < n; ++i) {
        if (!(in >> word))
            fatal(origin_ + ": vector '" + key + "' shorter than stated");
        try {
            out.push_back(std::stod(word));
        } catch (const std::exception &) {
            fatal(origin_ + ": bad double in vector '" + key + "': '" +
                  word + "'");
        }
    }
    if (in >> word)
        fatal(origin_ + ": vector '" + key + "' longer than stated");
    return out;
}

std::vector<std::uint64_t>
CheckpointReader::expectU64Vector(const std::string &key)
{
    std::istringstream in(takeValue(key));
    std::size_t n = 0;
    if (!(in >> n))
        fatal(origin_ + ": bad vector length for key '" + key + "'");
    std::vector<std::uint64_t> out;
    out.reserve(n);
    std::string word;
    for (std::size_t i = 0; i < n; ++i) {
        if (!(in >> word))
            fatal(origin_ + ": vector '" + key + "' shorter than stated");
        try {
            out.push_back(std::stoull(word));
        } catch (const std::exception &) {
            fatal(origin_ + ": bad u64 in vector '" + key + "': '" + word +
                  "'");
        }
    }
    if (in >> word)
        fatal(origin_ + ": vector '" + key + "' longer than stated");
    return out;
}

void
CheckpointReader::expectEnd() const
{
    if (pos_ != lines_.size())
        fatal(origin_ + ": trailing content in checkpoint starting at '" +
              lines_[pos_] + "'");
}

void
writeCheckpointFile(const std::string &path, const std::string &document)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        require(out.good(),
                "cannot open checkpoint temp file '" + tmp + "'");
        out << document;
        out.flush();
        require(out.good(), "failed writing checkpoint '" + tmp + "'");
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        fatal("cannot rename checkpoint '" + tmp + "' to '" + path + "'");
    if (obs::enabled()) {
        static obs::Counter &saves =
            obs::registry().counter("guard.checkpoint.saves");
        static obs::Counter &bytes =
            obs::registry().counter("guard.checkpoint.bytes_written");
        saves.add(1);
        bytes.add(document.size());
    }
}

std::string
readCheckpointFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    require(in.good(), "cannot open checkpoint file '" + path + "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    require(!in.bad(), "failed reading checkpoint file '" + path + "'");
    if (obs::enabled()) {
        static obs::Counter &restores =
            obs::registry().counter("guard.checkpoint.restores");
        restores.add(1);
    }
    return buf.str();
}

} // namespace guard
} // namespace tts
