/**
 * @file
 * Versioned, CRC-protected text checkpoints (tts::guard).
 *
 * A checkpoint is a line-oriented text document:
 *
 *     tts-checkpoint v1
 *     section <name>
 *     <key> = <value ...>
 *     ...
 *     crc32 <8-hex-digits>
 *
 * Doubles are printed with "%.17g" so they round-trip bit-for-bit;
 * integers in decimal; vectors as space-separated scalars on one
 * line.  The trailing crc32 line covers every preceding byte, so a
 * truncated or corrupted file is rejected up front (FatalError)
 * instead of resuming a run from garbage.  Files are written to a
 * temporary sibling and renamed into place, so a checkpoint path
 * never holds a half-written document even if the writer is killed.
 *
 * Readers are sequential and strict: each expect*() names the key it
 * wants, and a mismatch (missing key, wrong section order, trailing
 * junk) is a FatalError naming the offender.  Strictness is the
 * point — a resumed run must be bit-identical, so "close enough"
 * parsing is a bug factory.
 */

#ifndef TTS_GUARD_CHECKPOINT_HH
#define TTS_GUARD_CHECKPOINT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace tts {
namespace guard {

/** @return CRC-32 (IEEE 802.3, reflected) of @p data. */
std::uint32_t crc32(const std::string &data);

/** Current checkpoint format version (see DESIGN.md §11). */
inline constexpr int kCheckpointVersion = 1;

/** Accumulates a checkpoint document in memory. */
class CheckpointWriter
{
  public:
    CheckpointWriter();

    /** Start a named section. */
    void section(const std::string &name);

    /** Write a double with full round-trip precision. */
    void put(const std::string &key, double value);
    /** Write an unsigned integer. */
    void putU64(const std::string &key, std::uint64_t value);
    /** Write a signed integer. */
    void putI64(const std::string &key, std::int64_t value);
    /** Write a boolean (as 0/1). */
    void putBool(const std::string &key, bool value);
    /** Write a string token (must contain no whitespace/newline). */
    void putToken(const std::string &key, const std::string &value);
    /** Write a vector of doubles on one line. */
    void putVector(const std::string &key,
                   const std::vector<double> &values);
    /** Write a vector of unsigned integers on one line. */
    void putU64Vector(const std::string &key,
                      const std::vector<std::uint64_t> &values);

    /** @return The complete document, CRC trailer included. */
    std::string finish() const;

  private:
    std::string body_;
};

/** Sequential strict reader for a checkpoint document. */
class CheckpointReader
{
  public:
    /**
     * Parse and CRC-check @p document.
     *
     * @param document Full checkpoint text.
     * @param origin   Name used in error messages (e.g. file path).
     * @throws FatalError on bad header, version, or CRC mismatch.
     */
    explicit CheckpointReader(const std::string &document,
                              const std::string &origin = "checkpoint");

    /** Consume a "section <name>" line; FatalError on mismatch. */
    void expectSection(const std::string &name);

    /** Consume "<key> = <double>". */
    double expect(const std::string &key);
    /** Consume "<key> = <u64>". */
    std::uint64_t expectU64(const std::string &key);
    /** Consume "<key> = <i64>". */
    std::int64_t expectI64(const std::string &key);
    /** Consume "<key> = <0|1>". */
    bool expectBool(const std::string &key);
    /** Consume "<key> = <token>". */
    std::string expectToken(const std::string &key);
    /** Consume "<key> = <n> v0 v1 ...". */
    std::vector<double> expectVector(const std::string &key);
    /** Consume "<key> = <n> v0 v1 ..." of unsigned integers. */
    std::vector<std::uint64_t> expectU64Vector(const std::string &key);

    /** @return True if the next line is "section <name>". */
    bool peekSection(const std::string &name) const;

    /** FatalError unless every line has been consumed. */
    void expectEnd() const;

  private:
    std::string takeValue(const std::string &key);

    std::vector<std::string> lines_;
    std::size_t pos_ = 0;
    std::string origin_;
};

/**
 * Atomically write @p document to @p path (tmp file + rename).
 * @throws FatalError on IO failure.
 */
void writeCheckpointFile(const std::string &path,
                         const std::string &document);

/**
 * Read a whole checkpoint file.
 * @throws FatalError if the file cannot be read.
 */
std::string readCheckpointFile(const std::string &path);

} // namespace guard
} // namespace tts

#endif // TTS_GUARD_CHECKPOINT_HH
