/**
 * @file
 * Numerical-integrity primitives for the guard layer (tts::guard).
 *
 * The thermal solver conserves energy by construction, but an
 * explicit stepper can still integrate through a NaN, diverge on a
 * too-coarse step, or leak energy slowly enough that nothing crashes
 * and a garbage number reaches the study reports.  This header holds
 * the vocabulary the guarded solve is built from:
 *
 *  - NumericsError: an Error subclass carrying *where* the numerics
 *    went bad (node, zone, simulation time, residual magnitude), so
 *    a four-hour run that trips names the offending node instead of
 *    printing "nan".
 *  - GuardConfig: audit tolerances and the step-retry policy.
 *  - GuardCounters: retry/degradation counters the studies surface.
 *
 * Everything here is header-only so the low-level integrator (which
 * sits below the guard library in the link order) can throw
 * NumericsError without a dependency cycle.
 */

#ifndef TTS_GUARD_NUMERICS_HH
#define TTS_GUARD_NUMERICS_HH

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/error.hh"

namespace tts {
namespace guard {

/**
 * Raised when the numerical integrity of a solve is violated: a
 * NaN/Inf sentinel fired inside a stepper or an air walk, or the
 * energy audit found a residual beyond tolerance.
 *
 * The guarded advance catches it, rolls the interval back and
 * retries; only when retries are exhausted does it propagate to the
 * caller, enriched with the offending node's name.
 */
class NumericsError : public Error
{
  public:
    /**
     * @param what       Human-readable description.
     * @param node       Offending node name ("" if unknown).
     * @param zone       Offending zone index (-1 if unknown).
     * @param time_s     Simulation time within the interval (s);
     *                   negative if unknown.
     * @param residual_j Energy-audit residual magnitude (J); 0 for
     *                   sentinel trips.
     * @param index      Offending state-vector index (-1 if unknown).
     */
    explicit NumericsError(const std::string &what,
                           std::string node = std::string(),
                           std::ptrdiff_t zone = -1,
                           double time_s = -1.0,
                           double residual_j = 0.0,
                           std::ptrdiff_t index = -1)
        : Error(what), node_(std::move(node)), zone_(zone),
          time_s_(time_s), residual_j_(residual_j), index_(index)
    {
    }

    /** @return Offending node name ("" if unknown). */
    const std::string &node() const { return node_; }
    /** @return Offending zone index (-1 if unknown). */
    std::ptrdiff_t zone() const { return zone_; }
    /** @return Simulation time of the trip (s; negative unknown). */
    double timeS() const { return time_s_; }
    /** @return Audit residual magnitude (J); 0 for sentinels. */
    double residualJ() const { return residual_j_; }
    /** @return Offending state index (-1 if unknown). */
    std::ptrdiff_t stateIndex() const { return index_; }

  private:
    std::string node_;
    std::ptrdiff_t zone_;
    double time_s_;
    double residual_j_;
    std::ptrdiff_t index_;
};

/** Energy-audit tolerances and step-retry policy. */
struct GuardConfig
{
    /** Master switch; disabled reproduces the unguarded solve. */
    bool enabled = true;
    /** Absolute audit tolerance (J). */
    double auditAtolJ = 50.0;
    /**
     * Relative audit tolerance, scaled by the interval's energy
     * turnover E_in = |∫P_in dt| + |∫airHeat dt| + |Δ(ΣH)|.
     */
    double auditRtol = 1e-2;
    /** Step halvings attempted before degrading further. */
    int maxRetries = 3;
    /** Geometric backoff applied to dt_step per retry. */
    double backoffFactor = 0.5;
    /** After retries, fall back to an adaptive RK23 solve. */
    bool fallbackAdaptive = true;
    /** Fallback solve relative tolerance. */
    double fallbackRtol = 1e-8;
    /** Fallback solve absolute tolerance. */
    double fallbackAtol = 1e-6;
};

/** Retry/degradation counters surfaced by the studies. */
struct GuardCounters
{
    /** Guarded advance() intervals executed. */
    std::uint64_t advances = 0;
    /** Internal integrator steps taken (accepted). */
    std::uint64_t steps = 0;
    /** Energy audits performed. */
    std::uint64_t audits = 0;
    /** NaN/Inf sentinel trips. */
    std::uint64_t sentinelTrips = 0;
    /** Energy-audit residual trips. */
    std::uint64_t auditTrips = 0;
    /** Interval retries at a halved step. */
    std::uint64_t retries = 0;
    /** Fallbacks to the adaptive stepper. */
    std::uint64_t fallbacks = 0;
    /** Worst audit residual magnitude seen (J). */
    double worstResidualJ = 0.0;
    /** Interval-local time of the worst residual (s); -1 if none. */
    double worstResidualTimeS = -1.0;

    /** Accumulate another counter set (study-level aggregation). */
    void merge(const GuardCounters &o)
    {
        advances += o.advances;
        steps += o.steps;
        audits += o.audits;
        sentinelTrips += o.sentinelTrips;
        auditTrips += o.auditTrips;
        retries += o.retries;
        fallbacks += o.fallbacks;
        if (o.worstResidualJ > worstResidualJ) {
            worstResidualJ = o.worstResidualJ;
            worstResidualTimeS = o.worstResidualTimeS;
        }
    }
};

/** @return Index of the first non-finite entry, or -1. */
inline std::ptrdiff_t
firstNonFinite(const std::vector<double> &v)
{
    for (std::size_t i = 0; i < v.size(); ++i) {
        if (!std::isfinite(v[i]))
            return static_cast<std::ptrdiff_t>(i);
    }
    return -1;
}

/**
 * @return The process-wide default guard configuration new
 * ServerThermalNetwork instances start from.  Benches and tests
 * flip it (setDefaultGuardConfig) to measure guarded vs. unguarded
 * runs; not safe to mutate while studies are running.
 */
const GuardConfig &defaultGuardConfig();

/** Replace the process-wide default guard configuration. */
void setDefaultGuardConfig(const GuardConfig &cfg);

/**
 * Mirror a finished run's counter aggregate into the obs metrics
 * registry (guard.advance.count, guard.step.count,
 * guard.audit.count, guard.retry.count, guard.fallback.count,
 * guard.trip.count, guard.worst_residual_j).  No-op when collection
 * is disabled.  Call once per completed run or study arm - not per
 * interval - so merged aggregates are not double-counted.
 */
void publishCounters(const GuardCounters &c);

} // namespace guard
} // namespace tts

#endif // TTS_GUARD_NUMERICS_HH
