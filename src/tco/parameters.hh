/**
 * @file
 * TCO parameter set (Table 2 of the paper).
 *
 * All cost rates are dollars per month, following Kontorinis et al.
 * with the interest treatment of Barroso & Hoelzle.  "Per kW" rates
 * are per kilowatt of datacenter critical power.  Ranges in Table 2
 * (e.g. ServerCapEx 42-146 $/server) span the three platforms; the
 * factory maps each platform to its point in the range.
 */

#ifndef TTS_TCO_PARAMETERS_HH
#define TTS_TCO_PARAMETERS_HH

#include "server/server_spec.hh"

namespace tts {
namespace tco {

/** Monthly cost rates (Table 2). */
struct TcoParameters
{
    /** @name Facility-level CapEx ($/month) */
    /// @{
    double facilitySpacePerSqFt = 1.29;
    /** Facility area per kW of critical power (sq ft/kW). */
    double sqFtPerKW = 6.0;
    double upsPerServer = 0.13;
    double powerInfraPerKW = 16.0;      // Table 2: 15.9-16.2.
    double coolingInfraPerKW = 7.0;
    double restCapExPerKW = 20.0;       // Table 2: 19.4-21.0.
    double dcInterestPerKW = 33.0;      // Table 2: 31.8-36.3.
    /// @}

    /** @name Server-level CapEx ($/server/month) */
    /// @{
    double serverCapExPerServer = 42.0;    // Table 2: 42-146.
    double waxCapExPerServer = 0.08;       // Table 2: 0.06-0.10.
    double serverInterestPerServer = 11.0; // Table 2: 11.00-38.50.
    /// @}

    /** @name OpEx ($/kW/month) */
    /// @{
    double datacenterOpExPerKW = 20.8;     // Table 2: 20.7-20.9.
    double serverEnergyOpExPerKW = 22.0;   // Table 2: 19.2-24.9.
    double serverPowerOpExPerKW = 12.0;
    double coolingEnergyOpExPerKW = 18.4;
    double restOpExPerKW = 6.0;            // Table 2: 5.7-6.6.
    /**
     * Credit for reused waste heat ($/month, whole facility).
     * Zero unless the facility runs a hot-water cooling plant that
     * sells its captured heat (see plant::makeHotWaterBackend).
     */
    double heatReuseCreditPerMonth = 0.0;
    /// @}

    /** @name Derived / auxiliary assumptions */
    /// @{
    /** Server amortization period (months; 4-year lifespan). */
    double serverLifeMonths = 48.0;
    /** Cooling plant amortization period (months; ~10 years). */
    double coolingLifeMonths = 120.0;
    /** Power infrastructure amortization period (months). */
    double powerInfraLifeMonths = 144.0;
    /**
     * Fraction of critical power drawn by the cooling plant (the
     * plant's electric demand that the power infrastructure must
     * also be sized for); 1/COP of a typical chilled-water plant.
     */
    double coolingElectricFraction = 0.28;
    /** Interest charged on capital, as a fraction of CapEx. */
    double interestFraction = 0.62;
    /**
     * Interest factor applied to the avoided plant capital in the
     * retrofit analysis: interest accrues pro-rata on the declining
     * balance over the remaining life, about 40 % of the full-term
     * charge.
     */
    double retrofitInterestFactor = 1.25;
    /// @}

    /**
     * Monthly cooling-attributed capital per kW: the cooling plant
     * itself plus the share of power infrastructure feeding it,
     * including interest.  This is the rate that shrinks when PCM
     * reduces the peak cooling load.
     */
    double coolingAttributedCapExPerKW() const;
};

/**
 * Table 2 instantiated for one platform: ServerCapEx from the server
 * cost over a 4-year life, interest per server, wax capital from the
 * platform's wax charge, and the platform's position in the per-kW
 * ranges.
 */
TcoParameters parametersFor(const server::ServerSpec &spec);

} // namespace tco
} // namespace tts

#endif // TTS_TCO_PARAMETERS_HH
