#include "tco/parameters.hh"

#include "pcm/cost.hh"
#include "pcm/material.hh"
#include "util/error.hh"

namespace tts {
namespace tco {

double
TcoParameters::coolingAttributedCapExPerKW() const
{
    double base = coolingInfraPerKW +
        powerInfraPerKW * coolingElectricFraction;
    return base * (1.0 + interestFraction);
}

TcoParameters
parametersFor(const server::ServerSpec &spec)
{
    TcoParameters p;

    // Server capital amortized over the 4-year lifespan.
    p.serverCapExPerServer = spec.serverCostUsd / p.serverLifeMonths;
    // Interest roughly tracks capital (Table 2: $11.00 for the
    // $2,000 1U server up to $38.50 for the $7,000 2U server).
    p.serverInterestPerServer = spec.serverCostUsd * 0.0055;

    // Wax capital: wax + containers amortized with the server.
    if (spec.waxLiters > 0.0) {
        auto cost = pcm::fleetWaxCost(pcm::commercialParaffin(),
                                      spec.waxLiters, 1,
                                      /*container_cost=*/2.5);
        p.waxCapExPerServer =
            (cost.waxCostPerServer + cost.containerCostPerServer) /
            p.serverLifeMonths;
    } else {
        p.waxCapExPerServer = 0.0;
    }

    // Per-kW range positions: denser platforms sit at the high end
    // of the power-infrastructure and energy ranges (Table 2 lists
    // 15.9-16.2, 19.4-21.0, 31.8-36.3, 19.2-24.9, 5.7-6.6).
    double density = spec.peakWallPowerW /
        (spec.rackUnits > 0.0 ? spec.rackUnits : 1.0);
    double hi = density > 250.0 ? 1.0 : density / 250.0;
    p.powerInfraPerKW = 15.9 + 0.3 * hi;
    p.restCapExPerKW = 19.4 + 1.6 * hi;
    p.dcInterestPerKW = 31.8 + 4.5 * hi;
    p.datacenterOpExPerKW = 20.7 + 0.2 * hi;
    p.serverEnergyOpExPerKW = 19.2 + 5.7 * hi;
    p.restOpExPerKW = 5.7 + 0.9 * hi;
    return p;
}

} // namespace tco
} // namespace tts
