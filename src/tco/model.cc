#include "tco/model.hh"

#include "util/error.hh"

namespace tts {
namespace tco {

double
TcoBreakdown::capitalPerMonth() const
{
    return facilitySpaceCapEx + upsCapEx + powerInfraCapEx +
        coolingInfraCapEx + restCapEx + dcInterest + serverCapEx +
        waxCapEx + serverInterest;
}

double
TcoBreakdown::operationalPerMonth() const
{
    return datacenterOpEx + serverEnergyOpEx + serverPowerOpEx +
        coolingEnergyOpEx + restOpEx - heatReuseCredit;
}

double
TcoBreakdown::totalPerMonth() const
{
    return capitalPerMonth() + operationalPerMonth();
}

TcoModel::TcoModel(const TcoParameters &params) : params_(params)
{
    require(params.serverLifeMonths > 0.0,
            "TcoModel: server life must be > 0");
}

TcoBreakdown
TcoModel::monthly(double critical_kw, std::size_t server_count,
                  bool with_wax, double cooling_scale) const
{
    require(critical_kw > 0.0, "TcoModel: critical power must be > 0");
    require(server_count > 0, "TcoModel: need at least one server");
    require(cooling_scale > 0.0,
            "TcoModel: cooling scale must be > 0");

    const TcoParameters &p = params_;
    double n = static_cast<double>(server_count);

    TcoBreakdown b;
    b.facilitySpaceCapEx =
        p.facilitySpacePerSqFt * p.sqFtPerKW * critical_kw;
    b.upsCapEx = p.upsPerServer * n;
    b.powerInfraCapEx = p.powerInfraPerKW * critical_kw;
    b.coolingInfraCapEx =
        p.coolingInfraPerKW * critical_kw * cooling_scale;
    b.restCapEx = p.restCapExPerKW * critical_kw;
    b.dcInterest = p.dcInterestPerKW * critical_kw;
    b.serverCapEx = p.serverCapExPerServer * n;
    b.waxCapEx = with_wax ? p.waxCapExPerServer * n : 0.0;
    b.serverInterest = p.serverInterestPerServer * n;
    b.datacenterOpEx = p.datacenterOpExPerKW * critical_kw;
    b.serverEnergyOpEx = p.serverEnergyOpExPerKW * critical_kw;
    b.serverPowerOpEx = p.serverPowerOpExPerKW * critical_kw;
    b.coolingEnergyOpEx = p.coolingEnergyOpExPerKW * critical_kw;
    b.restOpEx = p.restOpExPerKW * critical_kw;
    b.heatReuseCredit = p.heatReuseCreditPerMonth;
    return b;
}

double
TcoModel::annualCoolingInfraSavings(double critical_kw,
                                    double peak_reduction) const
{
    require(peak_reduction >= 0.0 && peak_reduction < 1.0,
            "TcoModel: reduction must be in [0, 1)");
    double monthly = params_.coolingAttributedCapExPerKW() *
        critical_kw * peak_reduction;
    return 12.0 * monthly;
}

double
TcoModel::annualRetrofitSavings(double critical_kw,
                                double remaining_years) const
{
    require(remaining_years > 0.0,
            "TcoModel: remaining years must be > 0");
    const TcoParameters &p = params_;
    // Avoided capital of the replacement plant: the plant itself
    // (its monthly rate times its amortization life) plus the power
    // infrastructure feeding it, plus interest on both.
    double plant_capital =
        p.coolingInfraPerKW * p.coolingLifeMonths * critical_kw;
    double power_capital = p.powerInfraPerKW *
        p.coolingElectricFraction * p.powerInfraLifeMonths *
        critical_kw;
    double avoided =
        (plant_capital + power_capital) * p.retrofitInterestFactor;
    return avoided / remaining_years;
}

double
TcoModel::tcoEfficiencyGain(double critical_kw,
                            std::size_t server_count,
                            double throughput_gain) const
{
    require(throughput_gain >= 0.0,
            "TcoModel: throughput gain must be >= 0");
    // Facility WITH wax, delivering peak throughput T * (1 + g).
    TcoBreakdown with_wax =
        monthly(critical_kw, server_count, true);
    // Facility WITHOUT wax sized to the same peak throughput: all
    // capital scales by (1 + g); energy/operating expense tracks the
    // delivered work, which is equal on both sides.
    double scale = 1.0 + throughput_gain;
    TcoBreakdown no_wax = monthly(
        critical_kw * scale,
        static_cast<std::size_t>(
            static_cast<double>(server_count) * scale),
        false);
    double with_total =
        with_wax.capitalPerMonth() + with_wax.operationalPerMonth();
    double without_total = no_wax.capitalPerMonth() +
        with_wax.operationalPerMonth();
    return (without_total - with_total) / without_total;
}

} // namespace tco
} // namespace tts
