/**
 * @file
 * Total cost of ownership model (Equation 1 of the paper).
 *
 * TCO = (FacilitySpaceCapEx + UPSCapEx + PowerInfraCapEx +
 *        CoolingInfraCapEx + RestCapEx) + DCInterest +
 *       (ServerCapEx + WaxCapEx) + ServerInterest +
 *       (DatacenterOpEx + ServerEnergyOpEx + ServerPowerOpEx +
 *        CoolingEnergyOpEx + RestOpEx)
 *
 * plus the savings analyses of Sections 5.1 and 5.2: a smaller
 * cooling plant, more servers under the same plant, the retrofit
 * scenario, and TCO efficiency under thermal constraints.
 */

#ifndef TTS_TCO_MODEL_HH
#define TTS_TCO_MODEL_HH

#include <cstddef>

#include "tco/parameters.hh"

namespace tts {
namespace tco {

/** Itemized monthly TCO (all USD/month). */
struct TcoBreakdown
{
    double facilitySpaceCapEx = 0.0;
    double upsCapEx = 0.0;
    double powerInfraCapEx = 0.0;
    double coolingInfraCapEx = 0.0;
    double restCapEx = 0.0;
    double dcInterest = 0.0;
    double serverCapEx = 0.0;
    double waxCapEx = 0.0;
    double serverInterest = 0.0;
    double datacenterOpEx = 0.0;
    double serverEnergyOpEx = 0.0;
    double serverPowerOpEx = 0.0;
    double coolingEnergyOpEx = 0.0;
    double restOpEx = 0.0;
    /** Reused-heat revenue (subtracted from OpEx; usually 0). */
    double heatReuseCredit = 0.0;

    /** @return Sum of all CapEx + interest terms. */
    double capitalPerMonth() const;
    /** @return Sum of all OpEx terms, net of the reuse credit. */
    double operationalPerMonth() const;
    /** @return Total monthly TCO. */
    double totalPerMonth() const;
    /** @return Total yearly TCO. */
    double totalPerYear() const { return 12.0 * totalPerMonth(); }
};

/** Equation-1 TCO evaluator for one facility. */
class TcoModel
{
  public:
    /**
     * @param params Monthly rates (Table 2 for a platform).
     */
    explicit TcoModel(const TcoParameters &params);

    /**
     * Itemized monthly TCO.
     *
     * @param critical_kw     Critical power (kW).
     * @param server_count    Number of servers.
     * @param with_wax        Include the WaxCapEx term.
     * @param cooling_scale   Cooling plant size relative to the
     *                        critical power (1.0 = fully
     *                        subscribed); scales the cooling CapEx.
     */
    TcoBreakdown monthly(double critical_kw,
                         std::size_t server_count,
                         bool with_wax = false,
                         double cooling_scale = 1.0) const;

    /**
     * Section 5.1 headline: yearly savings on the cooling system and
     * the cooling power infrastructure from a peak cooling-load
     * reduction (a smaller plant at build time).
     *
     * @param critical_kw    Critical power (kW).
     * @param peak_reduction PCM peak cooling reduction fraction.
     * @return Savings (USD/year).
     */
    double annualCoolingInfraSavings(double critical_kw,
                                     double peak_reduction) const;

    /**
     * Section 5.1 retrofit: old servers reached end of life, the
     * existing plant has years of life left but cannot cool the new,
     * denser deployment at peak.  PCM absorbs the overshoot, so the
     * replacement plant is avoided; the avoided capital (plant + its
     * power infrastructure + interest) is spread over the plant's
     * remaining life.
     *
     * @param critical_kw     Critical power of the new deployment
     *                        (kW).
     * @param remaining_years Remaining life of the old plant.
     * @return Savings (USD/year).
     */
    double annualRetrofitSavings(double critical_kw,
                                 double remaining_years = 6.0) const;

    /**
     * Section 5.2: TCO efficiency gain from a PCM throughput
     * increase in a thermally constrained facility.  Matching the
     * PCM peak throughput without wax requires (1 + gain) times the
     * servers and capital; energy OpEx scales with delivered work on
     * both sides.
     *
     * @param critical_kw      Critical power (kW).
     * @param server_count     Server count of the PCM facility.
     * @param throughput_gain  Fractional peak-throughput increase
     *                         from PCM (e.g. 0.69).
     * @return Fractional TCO-efficiency improvement.
     */
    double tcoEfficiencyGain(double critical_kw,
                             std::size_t server_count,
                             double throughput_gain) const;

    /** @return The parameter set. */
    const TcoParameters &params() const { return params_; }

  private:
    TcoParameters params_;
};

} // namespace tco
} // namespace tts

#endif // TTS_TCO_MODEL_HH
