/**
 * @file
 * Deterministic fault-injection schedule (tts::fault).
 *
 * The paper's value proposition is thermal headroom under stress:
 * PCM buys ride-through minutes when cooling trips and sustains
 * clocks in thermally constrained clusters.  Studying that robustly
 * needs *composable* fault scenarios - partial cooling loss, server
 * and fan failures, drifting or dead inlet sensors, gaps in the
 * input trace - not just the one stylized total-plant-loss case.
 *
 * A FaultSchedule is a time-ordered list of typed FaultEvents.  It
 * can be built explicitly (event by event), generated from a
 * FaultProfile of Poisson rates with a fixed seed, or parsed from
 * the line-oriented text format serialize() emits.  Consumers
 * (workload::ClusterSim, core::runResilienceStudy) walk the sorted
 * event list; given the same schedule they produce bit-identical
 * results at any thread count, extending the tts::exec determinism
 * contract to fault scenarios.
 */

#ifndef TTS_FAULT_FAULT_SCHEDULE_HH
#define TTS_FAULT_FAULT_SCHEDULE_HH

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace tts {
namespace fault {

/**
 * Typed fault events.  Recovery kinds sort before failure kinds so
 * that a recovery and a failure landing on the same timestamp leave
 * the component failed (the pessimistic order).
 */
enum class FaultKind
{
    ServerRecover,  //!< Crashed server rejoins (empty).
    FanRepair,      //!< Server fan bank repaired.
    CoolingRestore, //!< Plant regains `magnitude` capacity fraction.
    SensorRestore,  //!< Inlet sensor reports again (drift intact).
    TraceGapEnd,    //!< Input load trace resumes.
    PumpRepair,     //!< Coolant loop pump back in service.
    HxDefoul,       //!< Heat exchanger cleaned; `magnitude`
                    //!< effectiveness fraction recovered.
    WeatherGapEnd,  //!< Weather trace reports again.
    ServerCrash,    //!< Server dies; its jobs are lost.
    FanFailure,     //!< Server fan bank fails (emergency throttle).
    CoolingTrip,    //!< Plant loses `magnitude` capacity fraction.
    SensorDrift,    //!< Inlet sensor bias shifts by `magnitude` C.
    SensorDropout,  //!< Inlet sensor stops reporting (hold-last).
    TraceGapStart,  //!< Input load trace goes dark (no arrivals).
    PumpFailure,    //!< Coolant loop pump fails (backup plant).
    HxFouling,      //!< Heat exchanger fouls; loses `magnitude`
                    //!< effectiveness fraction.
    WeatherGapStart, //!< Weather trace goes dark (hold-last ambient).
};

/** Number of distinct fault kinds. */
constexpr std::size_t faultKindCount = 17;

/** @return Stable text name of a kind ("server_crash", ...). */
const char *toString(FaultKind kind);

/** @return Kind parsed from its toString() name. @throws FatalError */
FaultKind faultKindFromString(const std::string &name);

/** @return True for kinds that address one server (crash/fan). */
bool kindTargetsServer(FaultKind kind);

/** One timed fault event. */
struct FaultEvent
{
    /** Target value for plant/sensor/trace-wide events. */
    static constexpr std::size_t noTarget =
        static_cast<std::size_t>(-1);

    /** Event time (s since scenario start, >= 0). */
    double timeS = 0.0;
    /** What happens. */
    FaultKind kind = FaultKind::ServerCrash;
    /** Server index for per-server kinds, else noTarget. */
    std::size_t target = noTarget;
    /**
     * Kind-specific size: capacity fraction lost/restored for
     * CoolingTrip/CoolingRestore (in (0, 1]), signed bias delta (C)
     * for SensorDrift; ignored otherwise.
     */
    double magnitude = 0.0;

    bool operator==(const FaultEvent &o) const
    {
        return timeS == o.timeS && kind == o.kind &&
               target == o.target && magnitude == o.magnitude;
    }
};

/**
 * Poisson fault-process rates for generated schedules.  Rates are
 * events per hour (per server for the per-server processes); zero
 * disables a process.  Repairs follow exponentially after each
 * failure with the given means.
 */
struct FaultProfile
{
    /** Server crash rate (per server per hour). */
    double serverCrashPerHour = 0.0;
    /** Mean crash-to-recovery time (s). */
    double serverRepairMeanS = 900.0;

    /** Fan-bank failure rate (per server per hour). */
    double fanFailurePerHour = 0.0;
    /** Mean fan repair time (s). */
    double fanRepairMeanS = 1800.0;

    /** Plant trip rate (per hour). */
    double coolingTripPerHour = 0.0;
    /** Capacity fraction lost per trip, in (0, 1]. */
    double coolingTripFraction = 1.0;
    /** Mean trip-to-restore time (s). */
    double coolingRepairMeanS = 1200.0;

    /** Sensor drift-step rate (per hour). */
    double sensorDriftPerHour = 0.0;
    /** Drift steps are uniform in [-max, +max] (C). */
    double sensorDriftMaxC = 3.0;

    /** Sensor dropout rate (per hour). */
    double sensorDropoutPerHour = 0.0;
    /** Mean dropout duration (s). */
    double sensorDropoutMeanS = 300.0;

    /** Trace-gap rate (per hour). */
    double traceGapPerHour = 0.0;
    /** Mean gap duration (s). */
    double traceGapMeanS = 120.0;

    /** Coolant-pump failure rate (per hour; tts::plant loops). */
    double pumpFailurePerHour = 0.0;
    /** Mean pump repair time (s). */
    double pumpRepairMeanS = 1800.0;

    /** Heat-exchanger fouling-step rate (per hour). */
    double hxFoulingPerHour = 0.0;
    /** Effectiveness fraction lost per fouling step, in (0, 1]. */
    double hxFoulingFraction = 0.2;
    /** Mean fouling-to-cleaning time (s). */
    double hxCleanMeanS = 3600.0;

    /** Weather-trace gap rate (per hour). */
    double weatherGapPerHour = 0.0;
    /** Mean weather-gap duration (s). */
    double weatherGapMeanS = 600.0;
};

/**
 * A deterministic, time-ordered fault schedule.
 *
 * Events are kept sorted by (time, kind, target) with insertion
 * order breaking residual ties, so iteration order never depends on
 * construction order beyond genuine ties and is identical on every
 * platform and at every thread count.
 */
class FaultSchedule
{
  public:
    FaultSchedule() = default;

    /**
     * Insert one event (kept sorted).
     *
     * @throws FatalError on negative/non-finite time, a per-server
     * kind without a target (or vice versa), or an out-of-range
     * magnitude for the kinds that use one.
     */
    void add(const FaultEvent &event);

    /** Convenience: add({time_s, kind, target, magnitude}). */
    void add(double time_s, FaultKind kind,
             std::size_t target = FaultEvent::noTarget,
             double magnitude = 0.0);

    /** @return Events sorted by (time, kind, target). */
    const std::vector<FaultEvent> &events() const { return events_; }

    /** @return Number of events. */
    std::size_t size() const { return events_.size(); }

    /** @return True if there are no events. */
    bool empty() const { return events_.empty(); }

    /** @return End time of the last event, or 0 if empty. */
    double horizonS() const;

    /**
     * Serialize to the line format
     *
     *     tts-fault-schedule v1
     *     <kind> <target|-> <time_s> <magnitude>
     *
     * with 17-significant-digit doubles, so parse(serialize())
     * reproduces the schedule bit-for-bit.
     */
    std::string serialize() const;

    /** Parse the serialize() format. @throws FatalError. */
    static FaultSchedule parse(const std::string &text);

    /** Parse from a stream (see parse()). @throws FatalError. */
    static FaultSchedule read(std::istream &in);

    bool operator==(const FaultSchedule &o) const
    {
        return events_ == o.events_;
    }

  private:
    std::vector<FaultEvent> events_;
};

/**
 * Generate a schedule by sampling the profile's Poisson processes
 * over [0, horizon_s).
 *
 * Every process draws from its own Rng::forStream sub-stream of the
 * seed (per-server processes get one stream per server), so the
 * result depends only on (profile, horizon, serverCount, seed) -
 * never on evaluation order - and adding one process never perturbs
 * another's events.
 *
 * @param profile      Rates and repair means.
 * @param horizon_s    Generation horizon (s), > 0.
 * @param server_count Servers addressable by per-server faults.
 * @param seed         Master seed.
 */
FaultSchedule generateSchedule(const FaultProfile &profile,
                               double horizon_s,
                               std::size_t server_count,
                               std::uint64_t seed);

} // namespace fault
} // namespace tts

#endif // TTS_FAULT_FAULT_SCHEDULE_HH
