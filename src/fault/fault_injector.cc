#include "fault/fault_injector.hh"

#include <algorithm>
#include <limits>

#include "obs/obs.hh"
#include "util/error.hh"

namespace tts {
namespace fault {

FaultInjector::FaultInjector(const FaultSchedule &schedule,
                             std::size_t server_count,
                             double initial_sensed_c)
    : schedule_(schedule),
      server_down_(server_count, false),
      fan_failed_(server_count, false),
      alive_count_(server_count),
      held_reading_c_(initial_sensed_c)
{
    require(server_count >= 1,
            "FaultInjector: need at least one server");
    for (const auto &e : schedule.events()) {
        if (kindTargetsServer(e.kind))
            require(e.target < server_count,
                    "FaultInjector: event targets server " +
                        std::to_string(e.target) +
                        " but the cluster has " +
                        std::to_string(server_count));
    }
}

void
FaultInjector::advanceTo(double t)
{
    require(t >= now_,
            "FaultInjector::advanceTo: time must not move "
            "backwards");
    now_ = t;
    const auto &events = schedule_.events();
    while (next_ < events.size() && events[next_].timeS <= t) {
        apply(events[next_]);
        ++next_;
    }
}

double
FaultInjector::nextEventTime() const
{
    const auto &events = schedule_.events();
    return next_ < events.size()
               ? events[next_].timeS
               : std::numeric_limits<double>::infinity();
}

void
FaultInjector::apply(const FaultEvent &e)
{
    if (obs::enabled()) {
        static obs::Counter &injected =
            obs::registry().counter("fault.injected.total");
        injected.add(1);
        obs::emitEvent(obs::EventKind::FaultInjected, e.timeS,
                       toString(e.kind), e.magnitude,
                       e.target == FaultEvent::noTarget
                           ? -1
                           : static_cast<std::int64_t>(e.target));
    }
    switch (e.kind) {
      case FaultKind::ServerCrash:
        if (!server_down_[e.target]) {
            server_down_[e.target] = true;
            --alive_count_;
        }
        break;
      case FaultKind::ServerRecover:
        if (server_down_[e.target]) {
            server_down_[e.target] = false;
            ++alive_count_;
        }
        break;
      case FaultKind::FanFailure:
        fan_failed_[e.target] = true;
        break;
      case FaultKind::FanRepair:
        fan_failed_[e.target] = false;
        break;
      case FaultKind::CoolingTrip:
        cooling_lost_fraction_ += e.magnitude;
        break;
      case FaultKind::CoolingRestore:
        cooling_lost_fraction_ =
            std::max(0.0, cooling_lost_fraction_ - e.magnitude);
        break;
      case FaultKind::SensorDrift:
        sensor_bias_c_ += e.magnitude;
        break;
      case FaultKind::SensorDropout:
        sensor_valid_ = false;
        break;
      case FaultKind::SensorRestore:
        sensor_valid_ = true;
        break;
      case FaultKind::TraceGapStart:
        ++trace_gap_depth_;
        break;
      case FaultKind::TraceGapEnd:
        trace_gap_depth_ = std::max(0, trace_gap_depth_ - 1);
        break;
      case FaultKind::PumpFailure:
        pump_failed_ = true;
        break;
      case FaultKind::PumpRepair:
        pump_failed_ = false;
        break;
      case FaultKind::HxFouling:
        hx_fouling_fraction_ =
            std::min(1.0, hx_fouling_fraction_ + e.magnitude);
        break;
      case FaultKind::HxDefoul:
        hx_fouling_fraction_ =
            std::max(0.0, hx_fouling_fraction_ - e.magnitude);
        break;
      case FaultKind::WeatherGapStart:
        ++weather_gap_depth_;
        break;
      case FaultKind::WeatherGapEnd:
        weather_gap_depth_ = std::max(0, weather_gap_depth_ - 1);
        break;
    }
}

bool
FaultInjector::serverAlive(std::size_t i) const
{
    invariant(i < server_down_.size(),
              "FaultInjector::serverAlive: bad index");
    return !server_down_[i];
}

bool
FaultInjector::fanFailed(std::size_t i) const
{
    invariant(i < fan_failed_.size(),
              "FaultInjector::fanFailed: bad index");
    return fan_failed_[i];
}

std::size_t
FaultInjector::aliveFanFailed() const
{
    std::size_t n = 0;
    for (std::size_t i = 0; i < fan_failed_.size(); ++i) {
        if (fan_failed_[i] && !server_down_[i])
            ++n;
    }
    return n;
}

double
FaultInjector::coolingCapacityFraction() const
{
    return std::clamp(1.0 - cooling_lost_fraction_, 0.0, 1.0);
}

double
FaultInjector::senseInlet(double true_inlet_c)
{
    if (sensor_valid_)
        held_reading_c_ = true_inlet_c + sensor_bias_c_;
    return held_reading_c_;
}

} // namespace fault
} // namespace tts
