/**
 * @file
 * Runtime fault state machine.
 *
 * A FaultInjector replays a FaultSchedule against wall-clock
 * simulation time and exposes the *current* degraded state:
 * which servers are down, which fan banks have failed, how much
 * plant capacity survives, what the (possibly drifting or dead)
 * inlet sensor reads, and whether the input trace has gone dark.
 *
 * Consumers drive it with advanceTo(t) from their own event or
 * integration loop; the injector applies every scheduled event with
 * time <= t, in schedule order.  It never draws random numbers, so
 * a given schedule replays bit-identically anywhere.
 */

#ifndef TTS_FAULT_FAULT_INJECTOR_HH
#define TTS_FAULT_FAULT_INJECTOR_HH

#include <cstddef>
#include <vector>

#include "fault/fault_schedule.hh"

namespace tts {
namespace fault {

/** Replays a schedule; tracks the degraded component state. */
class FaultInjector
{
  public:
    /**
     * @param schedule        Schedule to replay (referenced, must
     *                        outlive the injector).
     * @param server_count    Cluster size; per-server events must
     *                        target an index below it.
     * @param initial_sensed_c Reading the sensor holds if it drops
     *                        out before ever reporting (typically
     *                        the room setpoint).
     */
    FaultInjector(const FaultSchedule &schedule,
                  std::size_t server_count,
                  double initial_sensed_c = 0.0);

    /**
     * Apply every event with time <= t (monotone: t must not move
     * backwards).
     */
    void advanceTo(double t);

    /** @return Time of the next unapplied event, or +inf. */
    double nextEventTime() const;

    /** @return True if server i is up. */
    bool serverAlive(std::size_t i) const;
    /** @return True if server i's fan bank has failed. */
    bool fanFailed(std::size_t i) const;

    /** @return Number of servers currently up. */
    std::size_t aliveServers() const { return alive_count_; }
    /** @return Number of *alive* servers with a failed fan bank. */
    std::size_t aliveFanFailed() const;

    /** @return Surviving plant capacity fraction in [0, 1]. */
    double coolingCapacityFraction() const;

    /** @return Accumulated inlet-sensor bias (C). */
    double sensorBiasC() const { return sensor_bias_c_; }
    /** @return True if the sensor is currently reporting. */
    bool sensorValid() const { return sensor_valid_; }

    /**
     * Read the inlet sensor: the true value plus the accumulated
     * drift while the sensor reports, or the last reported value
     * (hold-last) during a dropout.
     *
     * @param true_inlet_c Physical inlet temperature (C).
     */
    double senseInlet(double true_inlet_c);

    /** @return True while the input trace is dark. */
    bool traceGapActive() const { return trace_gap_depth_ > 0; }

    /** @return True while the coolant-loop pump is failed. */
    bool pumpFailed() const { return pump_failed_; }

    /**
     * @return Accumulated heat-exchanger effectiveness fraction
     * lost to fouling, in [0, 1] (0 = clean).
     */
    double hxFoulingFraction() const
    {
        return hx_fouling_fraction_;
    }

    /** @return True while the weather trace is dark (hold-last). */
    bool weatherGapActive() const
    {
        return weather_gap_depth_ > 0;
    }

    /** @return Events applied so far. */
    std::size_t eventsApplied() const { return next_; }

    /**
     * Complete mutable replay state for checkpointing: the schedule
     * cursor plus every piece of degraded-component state, so a
     * restored injector resumes the replay bit-identically.  The
     * schedule itself is configuration and is not captured.
     */
    struct State
    {
        std::size_t next;               //!< Schedule cursor.
        double now;                     //!< Last advanceTo() time.
        std::vector<bool> serverDown;
        std::vector<bool> fanFailed;
        std::size_t aliveCount;
        double coolingLostFraction;
        double sensorBiasC;
        bool sensorValid;
        double heldReadingC;
        int traceGapDepth;
        bool pumpFailed;
        double hxFoulingFraction;
        int weatherGapDepth;
    };

    /** @return A snapshot of the replay state. */
    State state() const
    {
        return State{next_,          now_,
                     server_down_,   fan_failed_,
                     alive_count_,   cooling_lost_fraction_,
                     sensor_bias_c_, sensor_valid_,
                     held_reading_c_, trace_gap_depth_,
                     pump_failed_,   hx_fouling_fraction_,
                     weather_gap_depth_};
    }

    /**
     * Restore a snapshot taken with state(); the injector must have
     * been built against the same schedule and server count.
     */
    void restoreState(const State &st)
    {
        next_ = st.next;
        now_ = st.now;
        server_down_ = st.serverDown;
        fan_failed_ = st.fanFailed;
        alive_count_ = st.aliveCount;
        cooling_lost_fraction_ = st.coolingLostFraction;
        sensor_bias_c_ = st.sensorBiasC;
        sensor_valid_ = st.sensorValid;
        held_reading_c_ = st.heldReadingC;
        trace_gap_depth_ = st.traceGapDepth;
        pump_failed_ = st.pumpFailed;
        hx_fouling_fraction_ = st.hxFoulingFraction;
        weather_gap_depth_ = st.weatherGapDepth;
    }

  private:
    void apply(const FaultEvent &event);

    const FaultSchedule &schedule_;
    std::size_t next_ = 0;
    double now_ = 0.0;

    std::vector<bool> server_down_;
    std::vector<bool> fan_failed_;
    std::size_t alive_count_;
    double cooling_lost_fraction_ = 0.0;
    double sensor_bias_c_ = 0.0;
    bool sensor_valid_ = true;
    double held_reading_c_;
    int trace_gap_depth_ = 0;
    bool pump_failed_ = false;
    double hx_fouling_fraction_ = 0.0;
    int weather_gap_depth_ = 0;
};

} // namespace fault
} // namespace tts

#endif // TTS_FAULT_FAULT_INJECTOR_HH
