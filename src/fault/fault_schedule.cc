#include "fault/fault_schedule.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <istream>
#include <sstream>
#include <tuple>

#include "util/error.hh"
#include "util/random.hh"

namespace tts {
namespace fault {

namespace {

const char *const kindNames[faultKindCount] = {
    "server_recover", "fan_repair",        "cooling_restore",
    "sensor_restore", "trace_gap_end",     "pump_repair",
    "hx_defoul",      "weather_gap_end",   "server_crash",
    "fan_failure",    "cooling_trip",      "sensor_drift",
    "sensor_dropout", "trace_gap_start",   "pump_failure",
    "hx_fouling",     "weather_gap_start",
};

/** Sort key: recoveries before failures at equal times. */
std::tuple<double, int, std::size_t>
orderKey(const FaultEvent &e)
{
    return {e.timeS, static_cast<int>(e.kind), e.target};
}

std::string
formatDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

} // namespace

const char *
toString(FaultKind kind)
{
    auto i = static_cast<std::size_t>(kind);
    invariant(i < faultKindCount, "toString: bad FaultKind");
    return kindNames[i];
}

FaultKind
faultKindFromString(const std::string &name)
{
    for (std::size_t i = 0; i < faultKindCount; ++i) {
        if (name == kindNames[i])
            return static_cast<FaultKind>(i);
    }
    fatal("FaultSchedule: unknown fault kind '" + name + "'");
}

bool
kindTargetsServer(FaultKind kind)
{
    return kind == FaultKind::ServerCrash ||
           kind == FaultKind::ServerRecover ||
           kind == FaultKind::FanFailure ||
           kind == FaultKind::FanRepair;
}

void
FaultSchedule::add(const FaultEvent &event)
{
    require(std::isfinite(event.timeS) && event.timeS >= 0.0,
            "FaultSchedule::add: event time must be finite and "
            ">= 0");
    require(std::isfinite(event.magnitude),
            "FaultSchedule::add: magnitude must be finite");
    if (kindTargetsServer(event.kind))
        require(event.target != FaultEvent::noTarget,
                "FaultSchedule::add: per-server fault needs a "
                "target server");
    else
        require(event.target == FaultEvent::noTarget,
                "FaultSchedule::add: plant/sensor/trace fault "
                "takes no target");
    if (event.kind == FaultKind::CoolingTrip ||
        event.kind == FaultKind::CoolingRestore)
        require(event.magnitude > 0.0 && event.magnitude <= 1.0,
                "FaultSchedule::add: cooling capacity fraction "
                "must be in (0, 1]");
    if (event.kind == FaultKind::HxFouling ||
        event.kind == FaultKind::HxDefoul)
        require(event.magnitude > 0.0 && event.magnitude <= 1.0,
                "FaultSchedule::add: heat-exchanger effectiveness "
                "fraction must be in (0, 1]");

    // Stable insertion keeps equal-key events in insertion order.
    auto pos = std::upper_bound(
        events_.begin(), events_.end(), event,
        [](const FaultEvent &a, const FaultEvent &b) {
            return orderKey(a) < orderKey(b);
        });
    events_.insert(pos, event);
}

void
FaultSchedule::add(double time_s, FaultKind kind, std::size_t target,
                   double magnitude)
{
    add(FaultEvent{time_s, kind, target, magnitude});
}

double
FaultSchedule::horizonS() const
{
    return events_.empty() ? 0.0 : events_.back().timeS;
}

std::string
FaultSchedule::serialize() const
{
    std::ostringstream out;
    out << "tts-fault-schedule v1\n";
    for (const auto &e : events_) {
        out << toString(e.kind) << ' ';
        if (e.target == FaultEvent::noTarget)
            out << '-';
        else
            out << e.target;
        out << ' ' << formatDouble(e.timeS) << ' '
            << formatDouble(e.magnitude) << '\n';
    }
    return out.str();
}

FaultSchedule
FaultSchedule::read(std::istream &in)
{
    std::string header;
    require(static_cast<bool>(std::getline(in, header)),
            "FaultSchedule::parse: empty input");
    while (!header.empty() &&
           (header.back() == '\r' || header.back() == ' '))
        header.pop_back();
    require(header == "tts-fault-schedule v1",
            "FaultSchedule::parse: bad header '" + header + "'");

    FaultSchedule sched;
    std::string line;
    std::size_t line_no = 1;
    while (std::getline(in, line)) {
        ++line_no;
        while (!line.empty() &&
               (line.back() == '\r' || line.back() == ' '))
            line.pop_back();
        if (line.empty())
            continue;
        std::istringstream ss(line);
        std::string kind_name, target_str;
        double time_s = 0.0, magnitude = 0.0;
        require(static_cast<bool>(ss >> kind_name >> target_str >>
                                  time_s >> magnitude),
                "FaultSchedule::parse: malformed line " +
                    std::to_string(line_no));
        std::string rest;
        require(!(ss >> rest),
                "FaultSchedule::parse: trailing garbage at line " +
                    std::to_string(line_no));
        FaultEvent e;
        e.kind = faultKindFromString(kind_name);
        e.timeS = time_s;
        e.magnitude = magnitude;
        if (target_str == "-") {
            e.target = FaultEvent::noTarget;
        } else {
            try {
                e.target = std::stoull(target_str);
            } catch (const std::exception &) {
                fatal("FaultSchedule::parse: bad target '" +
                      target_str + "' at line " +
                      std::to_string(line_no));
            }
        }
        sched.add(e);
    }
    return sched;
}

FaultSchedule
FaultSchedule::parse(const std::string &text)
{
    std::istringstream in(text);
    return read(in);
}

namespace {

/** Rng sub-stream ids for the plant/sensor/trace processes. */
enum GeneratorStream : std::uint64_t
{
    StreamCooling = 0,
    StreamSensorDrift = 1,
    StreamSensorDropout = 2,
    StreamTraceGap = 3,
    StreamPerServerBase = 4, //!< + server for crashes, then fans.
};

/**
 * The plant-loop processes draw from streams numbered after both
 * per-server blocks so enabling them never perturbs the events any
 * pre-existing process generates.
 */
std::uint64_t
plantStreamBase(std::size_t server_count)
{
    return StreamPerServerBase + 2 * server_count;
}

/**
 * Sample one failure/repair alternating process: failures arrive
 * with exponential gaps at `rate_per_s` while up; each failure is
 * followed by an exponential repair after `repair_mean_s`.  The
 * repair event is emitted only when it lands inside the horizon, so
 * a schedule can end in the failed state.
 */
void
sampleFailRepair(FaultSchedule &out, Rng rng, double rate_per_s,
                 double repair_mean_s, double horizon_s,
                 FaultKind fail, FaultKind repair,
                 std::size_t target, double magnitude)
{
    double t = rng.exponential(rate_per_s);
    while (t < horizon_s) {
        out.add(t, fail, target, magnitude);
        double down = rng.exponential(1.0 / repair_mean_s);
        if (t + down >= horizon_s)
            return;
        t += down;
        out.add(t, repair, target, magnitude);
        t += rng.exponential(rate_per_s);
    }
}

} // namespace

FaultSchedule
generateSchedule(const FaultProfile &profile, double horizon_s,
                 std::size_t server_count, std::uint64_t seed)
{
    require(horizon_s > 0.0 && std::isfinite(horizon_s),
            "generateSchedule: horizon must be finite and > 0");
    require(server_count >= 1,
            "generateSchedule: need at least one server");
    require(profile.serverCrashPerHour >= 0.0 &&
            profile.fanFailurePerHour >= 0.0 &&
            profile.coolingTripPerHour >= 0.0 &&
            profile.sensorDriftPerHour >= 0.0 &&
            profile.sensorDropoutPerHour >= 0.0 &&
            profile.traceGapPerHour >= 0.0 &&
            profile.pumpFailurePerHour >= 0.0 &&
            profile.hxFoulingPerHour >= 0.0 &&
            profile.weatherGapPerHour >= 0.0,
            "generateSchedule: rates must be >= 0");
    require(profile.coolingTripFraction > 0.0 &&
            profile.coolingTripFraction <= 1.0,
            "generateSchedule: trip fraction must be in (0, 1]");
    require(profile.hxFoulingFraction > 0.0 &&
            profile.hxFoulingFraction <= 1.0,
            "generateSchedule: fouling fraction must be in (0, 1]");
    require(profile.serverRepairMeanS > 0.0 &&
            profile.fanRepairMeanS > 0.0 &&
            profile.coolingRepairMeanS > 0.0 &&
            profile.sensorDropoutMeanS > 0.0 &&
            profile.traceGapMeanS > 0.0 &&
            profile.pumpRepairMeanS > 0.0 &&
            profile.hxCleanMeanS > 0.0 &&
            profile.weatherGapMeanS > 0.0,
            "generateSchedule: repair means must be > 0");

    const double per_hour = 1.0 / 3600.0;
    FaultSchedule out;

    if (profile.coolingTripPerHour > 0.0)
        sampleFailRepair(out,
                         Rng::forStream(seed, StreamCooling),
                         profile.coolingTripPerHour * per_hour,
                         profile.coolingRepairMeanS, horizon_s,
                         FaultKind::CoolingTrip,
                         FaultKind::CoolingRestore,
                         FaultEvent::noTarget,
                         profile.coolingTripFraction);

    if (profile.sensorDriftPerHour > 0.0) {
        Rng rng = Rng::forStream(seed, StreamSensorDrift);
        double rate = profile.sensorDriftPerHour * per_hour;
        for (double t = rng.exponential(rate); t < horizon_s;
             t += rng.exponential(rate)) {
            double delta = rng.uniform(-profile.sensorDriftMaxC,
                                       profile.sensorDriftMaxC);
            out.add(t, FaultKind::SensorDrift,
                    FaultEvent::noTarget, delta);
        }
    }

    if (profile.sensorDropoutPerHour > 0.0)
        sampleFailRepair(out,
                         Rng::forStream(seed, StreamSensorDropout),
                         profile.sensorDropoutPerHour * per_hour,
                         profile.sensorDropoutMeanS, horizon_s,
                         FaultKind::SensorDropout,
                         FaultKind::SensorRestore,
                         FaultEvent::noTarget, 0.0);

    if (profile.traceGapPerHour > 0.0)
        sampleFailRepair(out,
                         Rng::forStream(seed, StreamTraceGap),
                         profile.traceGapPerHour * per_hour,
                         profile.traceGapMeanS, horizon_s,
                         FaultKind::TraceGapStart,
                         FaultKind::TraceGapEnd,
                         FaultEvent::noTarget, 0.0);

    for (std::size_t s = 0; s < server_count; ++s) {
        if (profile.serverCrashPerHour > 0.0)
            sampleFailRepair(
                out,
                Rng::forStream(seed, StreamPerServerBase + s),
                profile.serverCrashPerHour * per_hour,
                profile.serverRepairMeanS, horizon_s,
                FaultKind::ServerCrash, FaultKind::ServerRecover,
                s, 0.0);
        if (profile.fanFailurePerHour > 0.0)
            sampleFailRepair(
                out,
                Rng::forStream(seed, StreamPerServerBase +
                                         server_count + s),
                profile.fanFailurePerHour * per_hour,
                profile.fanRepairMeanS, horizon_s,
                FaultKind::FanFailure, FaultKind::FanRepair,
                s, 0.0);
    }

    const std::uint64_t plant_base = plantStreamBase(server_count);

    if (profile.pumpFailurePerHour > 0.0)
        sampleFailRepair(out,
                         Rng::forStream(seed, plant_base + 0),
                         profile.pumpFailurePerHour * per_hour,
                         profile.pumpRepairMeanS, horizon_s,
                         FaultKind::PumpFailure,
                         FaultKind::PumpRepair,
                         FaultEvent::noTarget, 0.0);

    if (profile.hxFoulingPerHour > 0.0)
        sampleFailRepair(out,
                         Rng::forStream(seed, plant_base + 1),
                         profile.hxFoulingPerHour * per_hour,
                         profile.hxCleanMeanS, horizon_s,
                         FaultKind::HxFouling,
                         FaultKind::HxDefoul,
                         FaultEvent::noTarget,
                         profile.hxFoulingFraction);

    if (profile.weatherGapPerHour > 0.0)
        sampleFailRepair(out,
                         Rng::forStream(seed, plant_base + 2),
                         profile.weatherGapPerHour * per_hour,
                         profile.weatherGapMeanS, horizon_s,
                         FaultKind::WeatherGapStart,
                         FaultKind::WeatherGapEnd,
                         FaultEvent::noTarget, 0.0);

    return out;
}

} // namespace fault
} // namespace tts
