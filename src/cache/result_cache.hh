/**
 * @file
 * tts::cache - content-addressed result cache.
 *
 * Keys are 64-bit FNV-1a fingerprints of a canonical text
 * (cache/fingerprint.hh); values are flat metric maps (dotted
 * golden-key names -> doubles).  The canonical text itself is stored
 * beside each entry and re-checked on lookup, so a fingerprint
 * collision degrades to a cache miss instead of serving a wrong
 * study's numbers.
 *
 * Persistence is crash-safe by construction: the cache serializes
 * to a guard::CheckpointWriter document (CRC-32 trailer) written
 * through the tmp+rename path of guard::writeCheckpointFile, so the
 * on-disk file is always either the previous complete snapshot or
 * the new complete snapshot.  Loading a corrupted or truncated file
 * is *not* fatal - the file is quarantined to `<path>.corrupt` for
 * post-mortem and serving continues with an empty cache (a warm-up
 * cost, not an outage).
 *
 * Eviction is LRU at a fixed capacity via cache::LruMap (the same
 * structure underneath the opt memo); persisted snapshots keep LRU
 * order so recency survives restarts.  The snapshot section name
 * stays "serve_cache" - the format predates the module split and
 * existing snapshot files must keep loading.  All public methods
 * are internally locked - workers share one instance.
 */

#ifndef TTS_CACHE_RESULT_CACHE_HH
#define TTS_CACHE_RESULT_CACHE_HH

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "cache/lru.hh"

namespace tts {
namespace cache {

/** Flat result payload (golden-key style dotted metric names). */
using Result = std::map<std::string, double>;

/** Cache sizing and persistence knobs. */
struct CacheConfig
{
    /** Maximum resident entries; inserting past it evicts LRU. */
    std::size_t capacity = 256;
    /** Snapshot path; empty disables persistence. */
    std::string path;
    /**
     * Persist automatically after this many inserts (crash window);
     * 0 persists only on explicit persist() / daemon shutdown.
     */
    std::size_t persistEveryInserts = 0;
};

/** What load() found on disk. */
enum class CacheLoadOutcome
{
    Fresh,       //!< No snapshot file (or persistence disabled).
    Loaded,      //!< Snapshot read and verified.
    Quarantined, //!< Snapshot corrupt; moved aside, cache empty.
};

class ResultCache
{
  public:
    explicit ResultCache(CacheConfig config);

    /**
     * Load the snapshot at config.path if one exists.  Corruption
     * (CRC mismatch, bad structure) quarantines the file to
     * `<path>.corrupt` and returns Quarantined; the caller keeps
     * serving either way.  Call once, before the first find().
     */
    CacheLoadOutcome load();

    /**
     * Look up a fingerprint; on hit, verifies the stored canonical
     * text (collision guard), bumps recency, and copies the result.
     *
     * @return True on a verified hit.
     */
    bool find(std::uint64_t fp, const std::string &canonical,
              Result *out);

    /** Insert or refresh an entry (bumps recency; may evict LRU and
     *  may auto-persist per config.persistEveryInserts). */
    void insert(std::uint64_t fp, const std::string &canonical,
                const Result &result);

    /**
     * Write the snapshot atomically (tmp+rename, CRC trailer).
     * No-op when persistence is disabled.  @throws FatalError on an
     * unwritable path.
     */
    void persist();

    /** @return Resident entry count. */
    std::size_t size() const;

    /** Lifetime counters (monotonic, for stats/bench). */
    struct Counters
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t inserts = 0;
        std::uint64_t evictions = 0;
        /** Fingerprint matched but canonical text did not. */
        std::uint64_t collisions = 0;
        std::uint64_t persists = 0;
    };

    /** @return A snapshot of the counters. */
    Counters counters() const;

  private:
    struct Entry
    {
        std::string canonical;
        Result result;
    };

    void persistLocked();

    CacheConfig config_;
    mutable std::mutex mu_;
    LruMap<Entry> lru_;
    Counters counters_;
    std::size_t insertsSincePersist_ = 0;
};

} // namespace cache
} // namespace tts

#endif // TTS_CACHE_RESULT_CACHE_HH
