#include "cache/result_cache.hh"

#include <cstdio>
#include <fstream>
#include <utility>

#include "guard/checkpoint.hh"
#include "obs/obs.hh"
#include "util/error.hh"

namespace tts {
namespace cache {

namespace {

/** Lowercase-hex codec for byte-exact canonical text in the
 *  whitespace-free token slots of the checkpoint format. */
std::string
toHex(const std::string &bytes)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(bytes.size() * 2);
    for (unsigned char c : bytes) {
        out += digits[c >> 4];
        out += digits[c & 0xf];
    }
    return out;
}

std::string
fromHex(const std::string &hex)
{
    require(hex.size() % 2 == 0,
            "result cache: odd-length hex field");
    auto nibble = [](char c) -> int {
        if (c >= '0' && c <= '9')
            return c - '0';
        if (c >= 'a' && c <= 'f')
            return c - 'a' + 10;
        fatal(std::string("result cache: bad hex digit '") + c +
              "'");
    };
    std::string out;
    out.reserve(hex.size() / 2);
    for (std::size_t i = 0; i < hex.size(); i += 2)
        out += static_cast<char>((nibble(hex[i]) << 4) |
                                 nibble(hex[i + 1]));
    return out;
}

bool
fileExists(const std::string &path)
{
    std::ifstream f(path);
    return f.good();
}

} // namespace

ResultCache::ResultCache(CacheConfig config)
    : config_(std::move(config)),
      lru_(config_.capacity)
{
    require(config_.capacity >= 1,
            "result cache: capacity must be >= 1");
}

CacheLoadOutcome
ResultCache::load()
{
    if (config_.path.empty() || !fileExists(config_.path))
        return CacheLoadOutcome::Fresh;
    std::lock_guard<std::mutex> lock(mu_);
    try {
        guard::CheckpointReader r(
            guard::readCheckpointFile(config_.path), config_.path);
        r.expectSection("serve_cache");
        const std::uint64_t format = r.expectU64("format");
        require(format == 1, config_.path +
                                 ": unsupported serve-cache format " +
                                 std::to_string(format));
        const std::uint64_t entries = r.expectU64("entries");
        for (std::uint64_t i = 0; i < entries; ++i) {
            r.expectSection("entry");
            const std::uint64_t fp = r.expectU64("fp");
            const std::string canonical =
                fromHex(r.expectToken("canonical_hex"));
            const std::uint64_t keys = r.expectU64("keys");
            Result result;
            for (std::uint64_t k = 0; k < keys; ++k) {
                const std::string key = r.expectToken("key");
                result[key] = r.expect("value");
            }
            // Snapshots store LRU order (oldest first); replaying
            // inserts reproduces it, truncated to capacity.  Replay
            // evictions are not counted - they are a capacity
            // downgrade, not cache pressure.
            lru_.insert(fp, Entry{canonical, std::move(result)});
        }
        r.expectEnd();
        return CacheLoadOutcome::Loaded;
    } catch (const Error &e) {
        // A damaged snapshot must cost a warm-up, not an outage:
        // move it aside for post-mortem and serve from empty.
        lru_.clear();
        const std::string quarantine = config_.path + ".corrupt";
        std::remove(quarantine.c_str());
        if (std::rename(config_.path.c_str(),
                        quarantine.c_str()) != 0)
            std::remove(config_.path.c_str());
        if (obs::enabled()) {
            static obs::Counter &quarantines =
                obs::registry().counter(
                    "serve.cache.quarantines");
            quarantines.add(1);
        }
        return CacheLoadOutcome::Quarantined;
    }
}

bool
ResultCache::find(std::uint64_t fp, const std::string &canonical,
                  Result *out)
{
    std::lock_guard<std::mutex> lock(mu_);
    Entry *e = lru_.touch(fp);
    if (e == nullptr) {
        ++counters_.misses;
        return false;
    }
    if (e->canonical != canonical) {
        // A 64-bit collision: answering would serve another
        // request's numbers.  Degrade to a miss; the insert after
        // evaluation will overwrite with the newer canonical text.
        ++counters_.collisions;
        ++counters_.misses;
        return false;
    }
    ++counters_.hits;
    *out = e->result;
    return true;
}

void
ResultCache::insert(std::uint64_t fp, const std::string &canonical,
                    const Result &result)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (lru_.insert(fp, Entry{canonical, result}))
        ++counters_.evictions;
    ++counters_.inserts;
    if (config_.persistEveryInserts > 0 &&
        ++insertsSincePersist_ >= config_.persistEveryInserts) {
        persistLocked();
        insertsSincePersist_ = 0;
    }
}

void
ResultCache::persist()
{
    std::lock_guard<std::mutex> lock(mu_);
    persistLocked();
}

void
ResultCache::persistLocked()
{
    if (config_.path.empty())
        return;
    guard::CheckpointWriter w;
    w.section("serve_cache");
    w.putU64("format", 1);
    w.putU64("entries", lru_.size());
    lru_.forEachLru([&](std::uint64_t fp, const Entry &e) {
        w.section("entry");
        w.putU64("fp", fp);
        w.putToken("canonical_hex", toHex(e.canonical));
        w.putU64("keys", e.result.size());
        for (const auto &[key, value] : e.result) {
            w.putToken("key", key);
            w.put("value", value);
        }
    });
    guard::writeCheckpointFile(config_.path, w.finish());
    ++counters_.persists;
}

std::size_t
ResultCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return lru_.size();
}

ResultCache::Counters
ResultCache::counters() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return counters_;
}

} // namespace cache
} // namespace tts
