/**
 * @file
 * tts::cache - canonical-text fingerprints.
 *
 * Every content-addressed cache in the tree keys on the same hash:
 * 64-bit FNV-1a over a canonical byte string (the serve protocol's
 * canonical request text, the opt engine's canonical candidate
 * coordinates).  This header is the single home of the constants
 * and the two mixing shapes - whole-buffer and incremental u64 -
 * so the serve cache, the opt memo, and their golden/pinned test
 * vectors all hash byte-identically forever.
 */

#ifndef TTS_CACHE_FINGERPRINT_HH
#define TTS_CACHE_FINGERPRINT_HH

#include <cstdint>
#include <string>

namespace tts {
namespace cache {

/** FNV-1a 64-bit offset basis (the empty-string hash). */
constexpr std::uint64_t kFnvOffsetBasis = 14695981039346656037ull;
/** FNV-1a 64-bit prime. */
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/** @return FNV-1a (64-bit) over raw bytes. */
std::uint64_t fnv1a(const std::string &bytes);

/** Mix one u64 into a running hash, little-endian byte order (the
 *  opt candidate-coordinate shape). */
std::uint64_t fnv1aMixU64(std::uint64_t h, std::uint64_t v);

} // namespace cache
} // namespace tts

#endif // TTS_CACHE_FINGERPRINT_HH
