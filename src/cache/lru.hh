/**
 * @file
 * tts::cache - the LRU map underneath every fingerprint cache.
 *
 * A fixed-capacity map from 64-bit fingerprints to values, with
 * recency maintained on find() and insert() and eviction from the
 * cold end.  This is the exact structure the opt memo and the serve
 * result cache each hand-rolled before PR 10; both now instantiate
 * this template, so LRU semantics (touch on hit, refresh on
 * re-insert, oldest-first iteration) can never drift between them.
 *
 * Not internally locked: single-threaded callers (the opt engine's
 * serial memo phase) use it bare, shared callers (ResultCache) wrap
 * it in their own mutex.
 */

#ifndef TTS_CACHE_LRU_HH
#define TTS_CACHE_LRU_HH

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>

namespace tts {
namespace cache {

template <class V>
class LruMap
{
  public:
    /** @param capacity Maximum resident entries (clamped to >= 1). */
    explicit LruMap(std::size_t capacity)
        : capacity_(capacity < 1 ? 1 : capacity)
    {
    }

    /** Copy the value on a hit and bump its recency. */
    bool find(std::uint64_t key, V *out)
    {
        V *v = touch(key);
        if (v == nullptr)
            return false;
        *out = *v;
        return true;
    }

    /** @return The entry's value (recency bumped), or nullptr on a
     *  miss.  The pointer is valid until the next insert(). */
    V *touch(std::uint64_t key)
    {
        auto it = map_.find(key);
        if (it == map_.end())
            return nullptr;
        order_.splice(order_.end(), order_, it->second.lru);
        return &it->second.value;
    }

    /** Insert or refresh (bumps recency either way).
     *  @return True when the insert evicted the LRU entry. */
    bool insert(std::uint64_t key, V value)
    {
        auto it = map_.find(key);
        if (it != map_.end()) {
            order_.splice(order_.end(), order_, it->second.lru);
            it->second.value = std::move(value);
            return false;
        }
        bool evicted = false;
        if (map_.size() >= capacity_) {
            map_.erase(order_.front());
            order_.pop_front();
            evicted = true;
        }
        order_.push_back(key);
        map_.emplace(key,
                     Entry{std::move(value), std::prev(order_.end())});
        return evicted;
    }

    std::size_t size() const { return map_.size(); }
    std::size_t capacity() const { return capacity_; }

    void clear()
    {
        map_.clear();
        order_.clear();
    }

    /** Visit entries oldest-first (persistence order: replaying
     *  inserts in visit order reproduces the recency list). */
    template <class F>
    void forEachLru(F &&f) const
    {
        for (std::uint64_t key : order_)
            f(key, map_.at(key).value);
    }

  private:
    struct Entry
    {
        V value;
        std::list<std::uint64_t>::iterator lru;
    };

    std::size_t capacity_;
    std::list<std::uint64_t> order_; //!< LRU front, recent back.
    std::unordered_map<std::uint64_t, Entry> map_;
};

} // namespace cache
} // namespace tts

#endif // TTS_CACHE_LRU_HH
