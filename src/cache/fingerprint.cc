#include "cache/fingerprint.hh"

namespace tts {
namespace cache {

std::uint64_t
fnv1a(const std::string &bytes)
{
    std::uint64_t h = kFnvOffsetBasis;
    for (unsigned char c : bytes) {
        h ^= c;
        h *= kFnvPrime;
    }
    return h;
}

std::uint64_t
fnv1aMixU64(std::uint64_t h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xffULL;
        h *= kFnvPrime;
    }
    return h;
}

} // namespace cache
} // namespace tts
