#include "opt/golden.hh"

#include "opt/engine.hh"
#include "opt/space.hh"
#include "server/server_spec.hh"
#include "workload/google_trace.hh"

namespace tts {
namespace opt {

std::map<std::string, double>
computeOptGoldenValues()
{
    std::map<std::string, double> g;

    // The pinned 2U search: real Google trace, reduced population
    // and step resolution so the map stays cheap to recompute, and
    // a fixed modest budget.  Everything below is part of the golden
    // contract - changing any knob re-pins the opt.* keys.
    server::ServerSpec spec = server::x4470Spec();
    workload::WorkloadTrace trace = workload::makeGoogleTrace();

    SpaceOptions sopts;
    sopts.lockPolicy = true; // Single archetype: placement is moot.
    SearchSpace space = makeSearchSpace({spec}, sopts);

    OptOptions opts;
    opts.budget = 48;
    opts.restarts = 2;
    opts.objective = Objective::PeakCooling;
    opts.fleet.run.serverCount = 48;
    opts.fleet.controlIntervalS = 300.0;
    opts.fleet.thermalStepS = 60.0;

    OptResult r = optimizeWaxPlacement(space, trace, opts);

    g["opt.2u.baseline_peak_kw"] =
        r.baselineOutcome.peakCoolingW / 1e3;
    g["opt.2u.best_peak_kw"] = r.bestOutcome.peakCoolingW / 1e3;
    g["opt.2u.peak_reduction_vs_uniform"] =
        (r.baselineCost - r.bestCost) / r.baselineCost;
    g["opt.2u.best_melt_c"] = r.choice[0].meltTempC;
    g["opt.2u.best_mass_kg"] = r.choice[0].massKg;
    g["opt.2u.best_boxes"] = static_cast<double>(r.choice[0].boxes);
    g["opt.2u.evaluations"] = static_cast<double>(r.evaluations);
    g["opt.2u.oracle_call_count"] =
        static_cast<double>(r.oracleCalls);
    g["opt.2u.memo_hit_count"] = static_cast<double>(r.memoHits);
    g["opt.2u.beats_uniform"] = r.beatsBaseline() ? 1.0 : 0.0;

    return g;
}

} // namespace opt
} // namespace tts
