#include "opt/engine.hh"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#include "cache/lru.hh"
#include "exec/parallel.hh"
#include "obs/obs.hh"
#include "plant/study.hh"
#include "tco/parameters.hh"
#include "util/error.hh"

namespace tts {
namespace opt {

namespace {

/** The memo is the shared LRU structure from tts::cache, keyed by
 *  canonical candidate fingerprints (opt/space.hh); it has never
 *  carried a collision guard - the coordinate space is tiny against
 *  64 bits - and rebasing onto LruMap keeps that contract. */
using Memo = cache::LruMap<EvalOutcome>;

/** FleetSim's slot split (base + remainder), for TCO weighting. */
std::vector<std::size_t>
slotCounts(std::size_t total, std::size_t slots)
{
    std::vector<std::size_t> counts(slots, 0);
    std::size_t base = total / slots;
    std::size_t rem = total % slots;
    for (std::size_t i = 0; i < slots; ++i)
        counts[i] = base + (i < rem ? 1 : 0);
    return counts;
}

/**
 * Annualized cooling-attributed capital + wax capital (USD/year):
 * the peak kW at the Table 2 cooling rate, plus each archetype's
 * wax CapEx scaled by its candidate mass relative to the paper
 * charge (Table 2 prices the paper charge).
 */
double
annualTcoUsd(const SearchSpace &space,
             const std::vector<double> &mass_kg, double peak_w,
             std::size_t server_count)
{
    double monthly = (peak_w / 1e3) *
        tco::parametersFor(space.archetypes[0].spec)
            .coolingAttributedCapExPerKW();
    std::vector<std::size_t> counts =
        slotCounts(server_count, space.archetypes.size());
    for (std::size_t a = 0; a < space.archetypes.size(); ++a) {
        const ArchetypeAxis &axis = space.archetypes[a];
        if (mass_kg[a] <= 0.0 || axis.paperMassKg <= 0.0)
            continue;
        monthly += static_cast<double>(counts[a]) *
            tco::parametersFor(axis.spec).waxCapExPerServer *
            (mass_kg[a] / axis.paperMassKg);
    }
    return 12.0 * monthly;
}

/**
 * Yearly OpEx of a non-default cooling backend serving the fleet's
 * mean cooling load (USD/year).  The oracle sees only the integrated
 * cooling energy (series recording is off), so the load is replayed
 * flat at hourly samples - enough for the time-of-use tariff and the
 * diurnal economizer COP to price it.  Zero for the default CRAC
 * adapter: the Table 2 coolingEnergyOpEx rate already covers it, and
 * the default search objective stays bit-identical.
 */
double
plantOpExUsdPerYear(const core::RunConfig &run, double duration_s,
                    double cooling_energy_j)
{
    if (run.plant.kind == plant::BackendKind::Crac ||
        duration_s <= 0.0)
        return 0.0;
    plant::PlantScenario scenario;
    double mean_w = std::max(cooling_energy_j, 0.0) / duration_s;
    for (double t = 0.0; t <= duration_s + 1e-9; t += 3600.0)
        scenario.loadW.append(t, mean_w);
    plant::PlantConfig config;
    config.options = run.plant;
    return plant::runPlant(scenario, config).yearlyNetCostUsd;
}

/** The oracle's fleet configuration shared by every evaluation. */
fleet::FleetConfig
oracleBase(const OptOptions &opts)
{
    fleet::FleetConfig f = opts.fleet;
    // Thousands of evaluations: no per-step series, no sink files,
    // no checkpoints - those belong to the search's caller.
    f.recordSeries = false;
    f.run.obs = core::ObsSinks{};
    f.run.checkpoint = core::CheckpointPolicy{};
    return f;
}

/** The search engine: memo + counters around the fleet oracle. */
class Engine
{
  public:
    Engine(const SearchSpace &space,
           const workload::WorkloadTrace &trace,
           const OptOptions &opts)
        : space_(space), trace_(trace), opts_(opts),
          memo_(std::max<std::size_t>(1, opts.memoCapacity))
    {
    }

    /** Exact paper deployment on the oracle (the bar to clear). */
    EvalOutcome evalBaseline()
    {
        fleet::FleetConfig f = oracleBase(opts_);
        f.archetypeWax.clear();
        f.placement = workload::PlacementPolicy::Uniform;
        f.withWax = true;
        std::vector<double> mass;
        for (const ArchetypeAxis &a : space_.archetypes)
            mass.push_back(a.paperMassKg);
        return runOracle(f, mass);
    }

    /**
     * Evaluate a batch of proposals: memo lookups and in-batch
     * dedupe first, then the misses fan out on the thread pool into
     * index-keyed slots, then memo insertion in draft order.  The
     * outcome vector matches the proposal order exactly.
     */
    std::vector<EvalOutcome>
    evalBatch(const std::vector<Candidate> &props)
    {
        std::vector<EvalOutcome> out(props.size());
        std::vector<std::ptrdiff_t> slot(props.size(), -1);
        std::vector<Candidate> miss;
        std::vector<std::uint64_t> miss_fp;
        for (std::size_t i = 0; i < props.size(); ++i) {
            ++evaluations_;
            std::uint64_t fp = fingerprint(space_, props[i]);
            if (opts_.useMemo && memo_.find(fp, &out[i])) {
                ++memo_hits_;
                continue;
            }
            bool dup = false;
            for (std::size_t j = 0; j < miss_fp.size(); ++j) {
                if (miss_fp[j] == fp) {
                    slot[i] = static_cast<std::ptrdiff_t>(j);
                    dup = true;
                    break;
                }
            }
            if (dup)
                continue;
            slot[i] = static_cast<std::ptrdiff_t>(miss.size());
            miss.push_back(props[i]);
            miss_fp.push_back(fp);
        }
        std::vector<EvalOutcome> fresh = exec::parallel_map(
            miss,
            [this](const Candidate &c) { return evalCandidate(c); });
        for (std::size_t j = 0; j < miss.size(); ++j)
            if (opts_.useMemo)
                memo_.insert(miss_fp[j], fresh[j]);
        for (std::size_t i = 0; i < props.size(); ++i)
            if (slot[i] >= 0)
                out[i] = fresh[static_cast<std::size_t>(slot[i])];
        return out;
    }

    std::uint64_t evaluations() const { return evaluations_; }
    std::uint64_t oracleCalls() const { return oracle_calls_; }
    std::uint64_t memoHits() const { return memo_hits_; }

  private:
    EvalOutcome evalCandidate(const Candidate &c)
    {
        fleet::FleetConfig f = oracleBase(opts_);
        for (std::size_t a = 0; a < space_.archetypes.size(); ++a)
            f.archetypeWax.push_back(waxConfigOf(
                space_, c, a, opts_.fleet.run.meltWindowC));
        f.placement =
            space_.policies[static_cast<std::size_t>(c.policy)];
        std::vector<double> mass;
        for (std::size_t a = 0; a < space_.archetypes.size(); ++a)
            mass.push_back(massKgOf(space_, c, a));
        return runOracle(f, mass);
    }

    EvalOutcome runOracle(const fleet::FleetConfig &f,
                          const std::vector<double> &mass_kg)
    {
        oracle_calls_.fetch_add(1, std::memory_order_relaxed);
        fleet::FleetSim sim(space_.archetypes[0].spec, trace_, f);
        sim.run();
        fleet::FleetResult r = sim.take();
        EvalOutcome outcome;
        outcome.peakCoolingW = r.peakCoolingW;
        outcome.coolingEnergyJ = r.coolingEnergyJ;
        outcome.tcoUsdPerYear = annualTcoUsd(
            space_, mass_kg, r.peakCoolingW, f.run.serverCount);
        outcome.tcoUsdPerYear += plantOpExUsdPerYear(
            f.run, f.durationS, r.coolingEnergyJ);
        return outcome;
    }

    const SearchSpace &space_;
    const workload::WorkloadTrace &trace_;
    const OptOptions &opts_;
    Memo memo_;
    std::uint64_t evaluations_ = 0;
    /** Bumped inside the parallel region; every other counter is
     *  serial-only. */
    std::atomic<std::uint64_t> oracle_calls_{0};
    std::uint64_t memo_hits_ = 0;
};

} // namespace

const char *
objectiveName(Objective o)
{
    switch (o) {
      case Objective::PeakCooling: return "peak";
      case Objective::Tco: return "tco";
    }
    return "unknown";
}

Objective
objectiveFromName(const std::string &name)
{
    if (name == "peak")
        return Objective::PeakCooling;
    if (name == "tco")
        return Objective::Tco;
    fatal("unknown objective '" + name + "' (want peak or tco)");
}

double
costOf(const EvalOutcome &outcome, Objective objective)
{
    return objective == Objective::PeakCooling
        ? outcome.peakCoolingW
        : outcome.tcoUsdPerYear;
}

EvalOutcome
evaluateCandidate(const SearchSpace &space, const Candidate &c,
                  const workload::WorkloadTrace &trace,
                  const OptOptions &opts)
{
    fleet::FleetConfig f = oracleBase(opts);
    for (std::size_t a = 0; a < space.archetypes.size(); ++a)
        f.archetypeWax.push_back(
            waxConfigOf(space, c, a, opts.fleet.run.meltWindowC));
    f.placement = space.policies[static_cast<std::size_t>(c.policy)];
    fleet::FleetSim sim(space.archetypes[0].spec, trace, f);
    sim.run();
    fleet::FleetResult r = sim.take();
    std::vector<double> mass;
    for (std::size_t a = 0; a < space.archetypes.size(); ++a)
        mass.push_back(massKgOf(space, c, a));
    EvalOutcome outcome;
    outcome.peakCoolingW = r.peakCoolingW;
    outcome.coolingEnergyJ = r.coolingEnergyJ;
    outcome.tcoUsdPerYear = annualTcoUsd(space, mass, r.peakCoolingW,
                                         f.run.serverCount);
    outcome.tcoUsdPerYear += plantOpExUsdPerYear(
        f.run, f.durationS, r.coolingEnergyJ);
    return outcome;
}

OptResult
optimizeWaxPlacement(const SearchSpace &space,
                     const workload::WorkloadTrace &trace,
                     const OptOptions &opts)
{
    std::size_t slots = opts.fleet.mixedPlatforms ? 3 : 1;
    require(space.archetypes.size() == slots,
            "optimizeWaxPlacement: space has " +
                std::to_string(space.archetypes.size()) +
                " archetypes but the fleet oracle expects " +
                std::to_string(slots));
    require(opts.restarts >= 1,
            "optimizeWaxPlacement: restarts must be >= 1");
    require(opts.batchSize >= 1,
            "optimizeWaxPlacement: batchSize must be >= 1");
    require(opts.coolingRate > 0.0 && opts.coolingRate <= 1.0,
            "optimizeWaxPlacement: coolingRate must be in (0, 1]");
    require(opts.initialTempFrac >= 0.0,
            "optimizeWaxPlacement: initialTempFrac must be >= 0");

    TTS_OBS_EVENT(obs::EventKind::PhaseBegin, 0.0, "opt.search",
                  static_cast<double>(opts.budget), -1);

    Engine engine(space, trace, opts);
    OptResult result;
    result.baselineOutcome = engine.evalBaseline();
    result.baselineCost =
        costOf(result.baselineOutcome, opts.objective);
    double t0 =
        std::abs(result.baselineCost) * opts.initialTempFrac;

    Candidate best;
    EvalOutcome best_outcome;
    double best_cost = std::numeric_limits<double>::infinity();
    auto consider = [&](const Candidate &c, const EvalOutcome &o,
                        double cost) {
        // Strict improvement only: the first achiever of a cost
        // keeps the spot, so ties break deterministically by
        // evaluation order.
        if (cost < best_cost) {
            best = c;
            best_outcome = o;
            best_cost = cost;
        }
    };

    for (std::size_t r = 0; r < opts.restarts; ++r) {
        TTS_OBS_EVENT(obs::EventKind::PhaseBegin, 0.0, "opt.restart",
                      0.0, static_cast<std::int64_t>(r));
        Rng rng = Rng::forStream(opts.seed, r);
        Candidate cur = r == 0 ? paperCandidate(space)
                               : randomCandidate(space, rng);
        EvalOutcome cur_out = engine.evalBatch({cur})[0];
        double cur_cost = costOf(cur_out, opts.objective);
        double restart_best = cur_cost;
        consider(cur, cur_out, cur_cost);
        result.trace.push_back({r, 0, engine.evaluations(),
                                cur_cost, restart_best, t0});
        TTS_OBS_EVENT(obs::EventKind::OptStep,
                      static_cast<double>(engine.evaluations()),
                      "opt.walk", cur_cost,
                      static_cast<std::int64_t>(r));

        std::size_t share = opts.budget / opts.restarts +
            (r < opts.budget % opts.restarts ? 1 : 0);
        std::size_t used = 0;
        std::size_t iter = 0;
        while (used < share) {
            std::size_t k = std::min(opts.batchSize, share - used);
            // Draft the whole batch - proposals and acceptance
            // uniforms - serially, before anything fans out.
            std::vector<Candidate> props;
            std::vector<double> accept_u;
            for (std::size_t i = 0; i < k; ++i) {
                props.push_back(randomNeighbor(space, cur, rng));
                accept_u.push_back(rng.uniform());
            }
            std::vector<EvalOutcome> outs = engine.evalBatch(props);
            used += k;
            double temp = t0 * std::pow(opts.coolingRate,
                                        static_cast<double>(iter));
            for (std::size_t i = 0; i < k; ++i) {
                double cost = costOf(outs[i], opts.objective);
                double delta = cost - cur_cost;
                bool accept = delta <= 0.0 ||
                    (temp > 0.0 &&
                     accept_u[i] < std::exp(-delta / temp));
                if (accept) {
                    cur = props[i];
                    cur_out = outs[i];
                    cur_cost = cost;
                }
                restart_best = std::min(restart_best, cost);
                consider(props[i], outs[i], cost);
            }
            ++iter;
            result.trace.push_back({r, iter, engine.evaluations(),
                                    cur_cost, restart_best, temp});
            TTS_OBS_EVENT(obs::EventKind::OptStep,
                          static_cast<double>(engine.evaluations()),
                          "opt.walk", cur_cost,
                          static_cast<std::int64_t>(r));
        }
        result.restartBest.push_back(restart_best);
        TTS_OBS_EVENT(obs::EventKind::PhaseEnd, 0.0, "opt.restart",
                      restart_best, static_cast<std::int64_t>(r));
    }

    if (opts.polish) {
        // Greedy descent over the full neighbor set (off-budget):
        // terminates because every round strictly lowers the cost in
        // a finite space; the cap is a pure invariant guard.
        while (result.polishRounds < 1000) {
            std::vector<Candidate> ns = neighbors(space, best);
            if (ns.empty())
                break;
            std::vector<EvalOutcome> outs = engine.evalBatch(ns);
            std::ptrdiff_t pick = -1;
            double pick_cost = best_cost;
            for (std::size_t i = 0; i < ns.size(); ++i) {
                double cost = costOf(outs[i], opts.objective);
                if (cost < pick_cost) {
                    pick = static_cast<std::ptrdiff_t>(i);
                    pick_cost = cost;
                }
            }
            if (pick < 0)
                break;
            best = ns[static_cast<std::size_t>(pick)];
            best_outcome = outs[static_cast<std::size_t>(pick)];
            best_cost = pick_cost;
            ++result.polishRounds;
        }
    }

    result.best = best;
    result.bestOutcome = best_outcome;
    result.bestCost = best_cost;
    result.policy = placementPolicyName(
        space.policies[static_cast<std::size_t>(best.policy)]);
    for (std::size_t a = 0; a < space.archetypes.size(); ++a) {
        ArchetypeChoice choice;
        choice.platform = space.archetypes[a].spec.name;
        choice.massKg = massKgOf(space, best, a);
        choice.liters = litersOf(space, best, a);
        choice.boxes = best.arch[a].massStep > 0
            ? static_cast<std::size_t>(best.arch[a].boxes)
            : 0;
        choice.meltTempC = meltTempCOf(space, best, a);
        result.choice.push_back(choice);
    }
    result.evaluations = engine.evaluations();
    result.oracleCalls = engine.oracleCalls();
    result.memoHits = engine.memoHits();

    if (obs::enabled()) {
        static obs::Counter &evals =
            obs::registry().counter("opt.evaluations");
        static obs::Counter &calls =
            obs::registry().counter("opt.oracle_calls");
        static obs::Counter &hits =
            obs::registry().counter("opt.memo_hits");
        evals.add(result.evaluations);
        calls.add(result.oracleCalls);
        hits.add(result.memoHits);
        static obs::Gauge &best_gauge =
            obs::registry().gauge("opt.best_cost");
        best_gauge.set(result.bestCost);
    }
    TTS_OBS_EVENT(obs::EventKind::PhaseEnd, 0.0, "opt.search",
                  result.bestCost, -1);
    return result;
}

} // namespace opt
} // namespace tts
