/**
 * @file
 * tts::opt - seeded wax-placement search over the fleet oracle.
 *
 * Multi-start simulated annealing over the SearchSpace, with
 * fleet::FleetSim as the cost oracle (peak cooling load or
 * annualized TCO) and an LRU memo keyed by the canonical candidate
 * fingerprint so revisited neighbors are free.
 *
 * Determinism contract (the headline test surface):
 *
 *  - Every random draw comes from Rng::forStream(seed, restart) -
 *    one private sub-stream per restart, consumed serially before
 *    any evaluation fans out.
 *  - Each iteration drafts a *batch* of proposals (and their
 *    acceptance uniforms) up front, dedupes them against the memo
 *    and within the batch, evaluates the misses through
 *    exec::parallel_map into index-keyed slots, then replays the
 *    accept/reject walk serially in draft order.  The walk therefore
 *    consumes identical numbers in identical order at any thread
 *    count, and the whole search - trace, memo state, best
 *    candidate - is bit-identical at 1 and N threads.
 *  - The budget counts *logical* proposal evaluations, memo hits
 *    included, so memo-on and memo-off searches walk the same
 *    trajectory; the memo only changes how many fleet transients
 *    actually run.
 *
 * The returned optimum is polished by greedy descent over its full
 * neighbor set (off-budget), so it is locally minimal by
 * construction - the property test checks exactly that.
 */

#ifndef TTS_OPT_ENGINE_HH
#define TTS_OPT_ENGINE_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "fleet/fleet.hh"
#include "opt/space.hh"
#include "workload/trace.hh"

namespace tts {
namespace opt {

/** What the search minimizes. */
enum class Objective
{
    /** Fleet peak cooling load (W) - the paper's Section 5.1 axis. */
    PeakCooling,
    /** Annualized cooling-attributed capital + wax capital (USD):
     *  peak kW at the Table 2 cooling rate plus the mass-scaled wax
     *  CapEx, so heavier charges must buy their keep. */
    Tco,
};

/** @return Stable CLI name ("peak" / "tco"). */
const char *objectiveName(Objective o);

/** @return The objective named by @p name.
 *  @throws FatalError on an unknown name. */
Objective objectiveFromName(const std::string &name);

/** Search options. */
struct OptOptions
{
    /** Master seed; restart r draws from forStream(seed, r). */
    std::uint64_t seed = 0x0417c001ULL;
    /** Logical proposal evaluations across all restarts (memo hits
     *  count; initial/baseline/polish evaluations do not). */
    std::size_t budget = 128;
    /** Independent annealing restarts (>= 1); restart 0 starts from
     *  the paper candidate, later ones from random draws. */
    std::size_t restarts = 4;
    Objective objective = Objective::PeakCooling;
    /** Initial temperature as a fraction of the baseline cost. */
    double initialTempFrac = 0.02;
    /** Geometric temperature decay per iteration. */
    double coolingRate = 0.85;
    /** Proposals drafted (and evaluated together) per iteration. */
    std::size_t batchSize = 8;
    /** Memoize candidate evaluations (LRU). */
    bool useMemo = true;
    /** Memo capacity (entries). */
    std::size_t memoCapacity = 4096;
    /** Greedy-descend the final best to a local minimum. */
    bool polish = true;
    /**
     * Fleet oracle base configuration: population, horizon, steps,
     * perturbations.  The engine overrides archetypeWax, placement,
     * and recordSeries per candidate and clears obs/checkpoint
     * sinks; mixedPlatforms must match the space's archetype count.
     */
    fleet::FleetConfig fleet;
};

/** Both objective readings of one candidate evaluation. */
struct EvalOutcome
{
    double peakCoolingW = 0.0;
    double coolingEnergyJ = 0.0;
    /** Annualized cooling-attributed + wax capital (USD/year). */
    double tcoUsdPerYear = 0.0;
};

/** One search-trace sample (appended after every batch, plus one
 *  for each restart's initial evaluation). */
struct OptTracePoint
{
    std::size_t restart = 0;
    std::size_t iteration = 0;
    /** Logical evaluations consumed so far (all restarts). */
    std::uint64_t evaluations = 0;
    /** Cost of the walk's current candidate. */
    double currentCost = 0.0;
    /** Best cost seen within this restart so far. */
    double restartBestCost = 0.0;
    double temperature = 0.0;
};

/** Decoded best configuration, one row per archetype. */
struct ArchetypeChoice
{
    std::string platform;
    double massKg = 0.0;
    double liters = 0.0;
    std::size_t boxes = 0;
    double meltTempC = 0.0;
};

/** Search result. */
struct OptResult
{
    Candidate best;
    /** Objective value of best. */
    double bestCost = 0.0;
    EvalOutcome bestOutcome;
    /** The paper's exact uniform deployment on the same oracle
     *  (withWax fleet, Uniform placement - not snapped to the
     *  grid), the bar the search must clear. */
    double baselineCost = 0.0;
    EvalOutcome baselineOutcome;
    /** Decoded best (per archetype) and its policy. */
    std::vector<ArchetypeChoice> choice;
    std::string policy;
    /** Final best cost of each restart. */
    std::vector<double> restartBest;
    std::vector<OptTracePoint> trace;
    /** Logical evaluations (proposals + initials + polish). */
    std::uint64_t evaluations = 0;
    /** Fleet transients actually run. */
    std::uint64_t oracleCalls = 0;
    std::uint64_t memoHits = 0;
    /** Greedy polish rounds taken. */
    std::size_t polishRounds = 0;

    /** @return True when the search beat the uniform baseline. */
    bool beatsBaseline() const { return bestCost < baselineCost; }
};

/**
 * Evaluate one candidate on the oracle (no memo, no budget); the
 * exact cost function the search minimizes.  Tests use this to
 * verify local minimality independently of the engine.
 */
EvalOutcome evaluateCandidate(const SearchSpace &space,
                              const Candidate &c,
                              const workload::WorkloadTrace &trace,
                              const OptOptions &opts);

/** @return The objective's reading of an outcome. */
double costOf(const EvalOutcome &outcome, Objective objective);

/**
 * Run the search.
 *
 * @param space Configuration space (makeSearchSpace).
 * @param trace Load trace driving the fleet oracle.
 * @param opts  Search options; opts.fleet.mixedPlatforms must agree
 *              with space.archetypes.size().
 * @throws FatalError on inconsistent options.
 */
OptResult optimizeWaxPlacement(const SearchSpace &space,
                               const workload::WorkloadTrace &trace,
                               const OptOptions &opts);

} // namespace opt
} // namespace tts

#endif // TTS_OPT_ENGINE_HH
