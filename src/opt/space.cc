#include "opt/space.hh"

#include <algorithm>
#include <cmath>

#include "cache/fingerprint.hh"
#include "pcm/container.hh"
#include "util/error.hh"
#include "util/units.hh"

namespace tts {
namespace opt {

namespace {

/** The shared FNV-1a u64 mixer (cache/fingerprint.hh): identical
 *  bytes-in, bits-out to the pre-split local helper, so every memo
 *  key and pinned fingerprint is unchanged. */
std::uint64_t
fnvInt(std::uint64_t h, std::uint64_t v)
{
    return cache::fnv1aMixU64(h, v);
}

/** True when archetype axis a can hold this (mass, boxes) pair. */
bool
archFeasible(const SearchSpace &space, const ArchetypeAxis &axis,
             int mass_step, int boxes)
{
    if (mass_step == 0)
        return true;
    if (axis.spec.waxLiters <= 0.0 || axis.spec.waxBoxCount == 0)
        return false; // Platform has no wax bay.
    double liters = static_cast<double>(mass_step) *
        space.opts.massStepKg / space.opts.material.densitySolidGPerMl;
    double cap = axis.spec.waxBlockageOverride >= 0.0
        ? 0.55
        : (axis.spec.maxWaxBlockage > 0.0 ? axis.spec.maxWaxBlockage
                                          : 0.35);
    try {
        pcm::sizeBank(units::liters(liters), axis.spec.ductAreaM2,
                      axis.spec.ductHeightM, cap,
                      static_cast<std::size_t>(boxes));
        return true;
    } catch (const FatalError &) {
        return false;
    }
}

} // namespace

std::uint64_t
SearchSpace::size() const
{
    std::uint64_t n = static_cast<std::uint64_t>(policies.size());
    for (const ArchetypeAxis &a : archetypes) {
        // Zero-mass canonicalization collapses (0, *, *) to one
        // point; positive masses span the box and melt axes.
        std::uint64_t boxes =
            static_cast<std::uint64_t>(a.maxBoxes - a.minBoxes + 1);
        std::uint64_t melts = static_cast<std::uint64_t>(a.meltSteps);
        std::uint64_t masses = static_cast<std::uint64_t>(
            a.maxMassSteps - a.minMassSteps + 1);
        std::uint64_t positive =
            a.minMassSteps == 0 ? masses - 1 : masses;
        std::uint64_t zero = a.minMassSteps == 0 ? 1 : 0;
        n *= zero + positive * boxes * melts;
    }
    return n;
}

SearchSpace
makeSearchSpace(const std::vector<server::ServerSpec> &specs,
                const SpaceOptions &opts)
{
    require(!specs.empty(), "makeSearchSpace: no platforms");
    require(opts.massStepKg > 0.0 && opts.massStepKg <= 1.0,
            "makeSearchSpace: massStepKg must be in (0, 1] kg");
    require(opts.meltStepC > 0.0,
            "makeSearchSpace: meltStepC must be > 0");
    require(opts.material.densitySolidGPerMl > 0.0,
            "makeSearchSpace: material density must be > 0");

    SearchSpace space;
    space.opts = opts;
    double melt_lo =
        std::max(opts.meltMinC, opts.material.meltingTempMinC);
    double melt_hi =
        std::min(opts.meltMaxC, opts.material.meltingTempMaxC);
    require(melt_hi >= melt_lo - 1e-9,
            "makeSearchSpace: melt window does not intersect the "
            "material's range");
    space.meltMinC = melt_lo;
    int melt_steps = static_cast<int>(
        std::floor((melt_hi - melt_lo) / opts.meltStepC + 1e-9)) + 1;

    for (const server::ServerSpec &spec : specs) {
        ArchetypeAxis axis;
        axis.spec = spec;
        axis.paperMassKg =
            spec.waxLiters * opts.material.densitySolidGPerMl;
        axis.meltSteps = melt_steps;
        double default_melt =
            std::clamp(spec.defaultMeltTempC, melt_lo, melt_hi);
        axis.paperMeltStep = static_cast<int>(
            std::lround((default_melt - melt_lo) / opts.meltStepC));
        axis.paperMeltStep =
            std::clamp(axis.paperMeltStep, 0, melt_steps - 1);

        bool has_bay = spec.waxLiters > 0.0 && spec.waxBoxCount > 0;
        axis.paperBoxes =
            has_bay ? static_cast<int>(spec.waxBoxCount) : 1;
        if (opts.lockBoxes || !has_bay) {
            axis.minBoxes = axis.maxBoxes = axis.paperBoxes;
        } else {
            axis.minBoxes =
                std::max(1, axis.paperBoxes - opts.boxRadius);
            axis.maxBoxes = axis.paperBoxes + opts.boxRadius;
        }

        axis.paperMassSteps = has_bay
            ? std::max(1, static_cast<int>(std::lround(
                              axis.paperMassKg / opts.massStepKg)))
            : 0;
        if (opts.lockMass || !has_bay) {
            axis.minMassSteps = axis.maxMassSteps =
                axis.paperMassSteps;
        } else {
            axis.minMassSteps = 0;
            axis.maxMassSteps = std::max(
                axis.paperMassSteps,
                static_cast<int>(std::floor(
                    opts.massCapFactor * axis.paperMassKg /
                    opts.massStepKg + 1e-9)));
        }
        // Clamp the paper seed down until its bank actually fits
        // (the snap can land just past the blockage cap).
        while (axis.paperMassSteps > axis.minMassSteps &&
               !archFeasible(space, axis, axis.paperMassSteps,
                             axis.paperBoxes))
            --axis.paperMassSteps;
        space.archetypes.push_back(axis);
    }

    if (opts.lockPolicy)
        space.policies = {workload::PlacementPolicy::Uniform};
    else
        space.policies = workload::allPlacementPolicies();
    return space;
}

double
massKgOf(const SearchSpace &space, const Candidate &c, std::size_t a)
{
    return static_cast<double>(c.arch[a].massStep) *
        space.opts.massStepKg;
}

double
litersOf(const SearchSpace &space, const Candidate &c, std::size_t a)
{
    return massKgOf(space, c, a) /
        space.opts.material.densitySolidGPerMl;
}

double
meltTempCOf(const SearchSpace &space, const Candidate &c,
            std::size_t a)
{
    return space.meltMinC +
        static_cast<double>(c.arch[a].meltStep) *
        space.opts.meltStepC;
}

server::WaxConfig
waxConfigOf(const SearchSpace &space, const Candidate &c,
            std::size_t a, double melt_window_c)
{
    if (c.arch[a].massStep == 0)
        return server::WaxConfig::none();
    server::WaxConfig wax = server::WaxConfig::custom(
        litersOf(space, c, a), meltTempCOf(space, c, a),
        static_cast<std::size_t>(c.arch[a].boxes));
    wax.material = space.opts.material;
    wax.meltWindowC = melt_window_c;
    return wax;
}

Candidate
canonical(const SearchSpace &space, Candidate c)
{
    require(c.arch.size() == space.archetypes.size(),
            "opt: candidate/space archetype count mismatch");
    for (std::size_t a = 0; a < c.arch.size(); ++a) {
        if (c.arch[a].massStep == 0) {
            c.arch[a].boxes = space.archetypes[a].paperBoxes;
            c.arch[a].meltStep = space.archetypes[a].paperMeltStep;
        }
    }
    return c;
}

std::uint64_t
fingerprint(const SearchSpace &space, const Candidate &c)
{
    Candidate k = canonical(space, c);
    std::uint64_t h = cache::kFnvOffsetBasis;
    for (const Candidate::Arch &a : k.arch) {
        h = fnvInt(h, static_cast<std::uint64_t>(a.massStep));
        h = fnvInt(h, static_cast<std::uint64_t>(a.boxes));
        h = fnvInt(h, static_cast<std::uint64_t>(a.meltStep));
    }
    return fnvInt(h, static_cast<std::uint64_t>(k.policy));
}

bool
feasible(const SearchSpace &space, const Candidate &c)
{
    if (c.arch.size() != space.archetypes.size())
        return false;
    if (c.policy < 0 ||
        c.policy >= static_cast<int>(space.policies.size()))
        return false;
    for (std::size_t a = 0; a < c.arch.size(); ++a) {
        const ArchetypeAxis &axis = space.archetypes[a];
        const Candidate::Arch &x = c.arch[a];
        if (x.massStep < axis.minMassSteps ||
            x.massStep > axis.maxMassSteps ||
            x.boxes < axis.minBoxes || x.boxes > axis.maxBoxes ||
            x.meltStep < 0 || x.meltStep >= axis.meltSteps)
            return false;
        if (!archFeasible(space, axis, x.massStep, x.boxes))
            return false;
    }
    return true;
}

Candidate
paperCandidate(const SearchSpace &space)
{
    Candidate c;
    for (const ArchetypeAxis &axis : space.archetypes) {
        Candidate::Arch a;
        a.massStep = axis.paperMassSteps;
        a.boxes = axis.paperBoxes;
        a.meltStep = axis.paperMeltStep;
        c.arch.push_back(a);
    }
    c.policy = 0; // Uniform is always policies[0].
    return canonical(space, c);
}

std::vector<Candidate>
neighbors(const SearchSpace &space, const Candidate &c)
{
    Candidate base = canonical(space, c);
    std::uint64_t base_fp = fingerprint(space, base);
    std::vector<Candidate> out;
    std::vector<std::uint64_t> seen;
    auto push = [&](Candidate n) {
        n = canonical(space, std::move(n));
        std::uint64_t fp = fingerprint(space, n);
        if (fp == base_fp)
            return;
        if (std::find(seen.begin(), seen.end(), fp) != seen.end())
            return;
        if (!feasible(space, n))
            return;
        seen.push_back(fp);
        out.push_back(std::move(n));
    };
    for (std::size_t a = 0; a < base.arch.size(); ++a) {
        for (int d : {-1, +1}) {
            Candidate n = base;
            n.arch[a].massStep += d;
            push(std::move(n));
        }
        for (int d : {-1, +1}) {
            Candidate n = base;
            n.arch[a].boxes += d;
            push(std::move(n));
        }
        for (int d : {-1, +1}) {
            Candidate n = base;
            n.arch[a].meltStep += d;
            push(std::move(n));
        }
    }
    for (int d : {-1, +1}) {
        Candidate n = base;
        n.policy += d;
        push(std::move(n));
    }
    return out;
}

Candidate
randomCandidate(const SearchSpace &space, Rng &rng)
{
    for (int attempt = 0; attempt < 256; ++attempt) {
        Candidate c;
        for (const ArchetypeAxis &axis : space.archetypes) {
            Candidate::Arch a;
            a.massStep = axis.minMassSteps +
                static_cast<int>(rng.uniformInt(
                    static_cast<std::uint64_t>(axis.maxMassSteps -
                                               axis.minMassSteps +
                                               1)));
            a.boxes = axis.minBoxes +
                static_cast<int>(rng.uniformInt(
                    static_cast<std::uint64_t>(axis.maxBoxes -
                                               axis.minBoxes + 1)));
            a.meltStep = static_cast<int>(rng.uniformInt(
                static_cast<std::uint64_t>(axis.meltSteps)));
            c.arch.push_back(a);
        }
        c.policy = static_cast<int>(
            rng.uniformInt(space.policies.size()));
        c = canonical(space, std::move(c));
        if (feasible(space, c))
            return c;
    }
    return paperCandidate(space);
}

Candidate
randomNeighbor(const SearchSpace &space, const Candidate &c, Rng &rng)
{
    std::vector<Candidate> ns = neighbors(space, c);
    if (ns.empty())
        return canonical(space, c);
    return ns[rng.uniformInt(ns.size())];
}

} // namespace opt
} // namespace tts
