/**
 * @file
 * tts::opt search space: typed wax-placement configurations.
 *
 * A Candidate is one fleet-wide wax deployment: per platform
 * archetype a discrete wax mass (multiples of massStepKg), a
 * container count, and a melting temperature on a grid inside the
 * PCM family's range, plus one fleet-wide job-placement policy.
 * The space is small enough to enumerate per-dimension neighbors
 * exactly, and every candidate decodes deterministically to the
 * FleetConfig overrides the fleet oracle consumes.
 *
 * Candidates are kept in *canonical* form: a zero-mass archetype has
 * no wax, so its box-count and melt-temperature coordinates are
 * pinned to the paper values before fingerprinting - configurations
 * that decode to the same fleet never occupy two memo slots or show
 * up as distinct neighbors.  The fingerprint is an order-fixed
 * FNV-1a over the canonical integer coordinates and is the LRU memo
 * key.
 *
 * Feasibility is the PCM sizing model's word, not a heuristic: a
 * candidate is feasible iff pcm::sizeBank can fit its volume under
 * the platform's duct-blockage cap with its box count (the 2U
 * deployment already sits at the cap, so "more wax" prunes itself).
 */

#ifndef TTS_OPT_SPACE_HH
#define TTS_OPT_SPACE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "pcm/material.hh"
#include "server/server_model.hh"
#include "server/server_spec.hh"
#include "util/random.hh"
#include "workload/placement.hh"

namespace tts {
namespace opt {

/** Knobs shaping the search space. */
struct SpaceOptions
{
    /** PCM family; bounds the melt grid and supplies the density
     *  converting mass steps to liters. */
    pcm::Material material = pcm::commercialParaffin();
    /** Wax mass granularity (kg); the ISSUE's 0-1 kg step. */
    double massStepKg = 0.5;
    /** Mass axis upper bound as a multiple of the paper charge. */
    double massCapFactor = 2.0;
    /** Melt grid granularity (C). */
    double meltStepC = 0.5;
    /** Melt grid bounds (C), intersected with the material range. */
    double meltMinC = 40.0;
    double meltMaxC = 60.0;
    /** Box-count axis half-width around the platform default. */
    int boxRadius = 4;
    /** Freeze the mass axis at the paper charge. */
    bool lockMass = false;
    /** Freeze the box-count axis at the platform default. */
    bool lockBoxes = false;
    /** Restrict the policy axis to Uniform. */
    bool lockPolicy = false;
};

/** One archetype's axes, derived from its spec and the options. */
struct ArchetypeAxis
{
    server::ServerSpec spec;
    /** Paper deployment mass (kg): spec liters x solid density. */
    double paperMassKg = 0.0;
    /** Mass axis (units of massStepKg), inclusive bounds. */
    int minMassSteps = 0;
    int maxMassSteps = 0;
    /** Paper mass snapped to the grid (seed candidate). */
    int paperMassSteps = 0;
    /** Box-count axis, inclusive bounds. */
    int minBoxes = 1;
    int maxBoxes = 1;
    int paperBoxes = 1;
    /** Melt grid (units of meltStepC above meltMinC), inclusive. */
    int meltSteps = 1;
    /** Platform default melt snapped to the grid. */
    int paperMeltStep = 0;
};

/** The full configuration space. */
struct SearchSpace
{
    SpaceOptions opts;
    /** Resolved melt grid origin (C). */
    double meltMinC = 0.0;
    std::vector<ArchetypeAxis> archetypes;
    /** Policy axis, canonical (enum) order. */
    std::vector<workload::PlacementPolicy> policies;

    /** @return Number of candidates (canonical forms). */
    std::uint64_t size() const;
};

/** One candidate configuration (canonical form; see file comment). */
struct Candidate
{
    struct Arch
    {
        /** Wax mass in units of massStepKg. */
        int massStep = 0;
        /** Container count. */
        int boxes = 1;
        /** Melt grid index (meltMinC + meltStep * meltStepC). */
        int meltStep = 0;

        bool operator==(const Arch &) const = default;
    };
    std::vector<Arch> arch;
    /** Index into SearchSpace::policies. */
    int policy = 0;

    bool operator==(const Candidate &) const = default;
};

/**
 * Build the space for a platform set (one spec, or the three-slot
 * mixed fleet).  @throws FatalError on empty specs, non-positive
 * steps, or a melt window outside the material's range.
 */
SearchSpace makeSearchSpace(
    const std::vector<server::ServerSpec> &specs,
    const SpaceOptions &opts = SpaceOptions{});

/** @return Wax mass of archetype a (kg). */
double massKgOf(const SearchSpace &space, const Candidate &c,
                std::size_t a);

/** @return Wax volume of archetype a (liters). */
double litersOf(const SearchSpace &space, const Candidate &c,
                std::size_t a);

/** @return Melting temperature of archetype a (C). */
double meltTempCOf(const SearchSpace &space, const Candidate &c,
                   std::size_t a);

/**
 * @return The wax deployment archetype a carries under candidate c
 * (WaxConfig::none() at zero mass).
 *
 * @param melt_window_c Melt window forwarded to the deployment.
 */
server::WaxConfig waxConfigOf(const SearchSpace &space,
                              const Candidate &c, std::size_t a,
                              double melt_window_c = 0.5);

/** Pin zero-mass archetypes' box/melt coordinates (see file doc). */
Candidate canonical(const SearchSpace &space, Candidate c);

/** @return Order-fixed FNV-1a over the canonical coordinates. */
std::uint64_t fingerprint(const SearchSpace &space,
                          const Candidate &c);

/**
 * @return True when every archetype's volume fits under its
 * platform's blockage cap with its box count (zero mass is always
 * feasible).
 */
bool feasible(const SearchSpace &space, const Candidate &c);

/** The paper's uniform deployment snapped to the grid (feasible by
 *  construction; mass is clamped down until the bank fits). */
Candidate paperCandidate(const SearchSpace &space);

/**
 * All feasible canonical neighbors of c: +-1 on every coordinate of
 * every archetype, then +-1 on the policy index, deduplicated, in
 * that canonical order.  c itself never appears.
 */
std::vector<Candidate> neighbors(const SearchSpace &space,
                                 const Candidate &c);

/**
 * A uniformly drawn feasible candidate (rejection sampling, falls
 * back to the paper candidate if 256 draws all land infeasible).
 * Draws only from @p rng, so restarts seeded by Rng::forStream are
 * independent and reproducible.
 */
Candidate randomCandidate(const SearchSpace &space, Rng &rng);

/** A uniform draw from neighbors(); c itself when it has none. */
Candidate randomNeighbor(const SearchSpace &space, const Candidate &c,
                         Rng &rng);

} // namespace opt
} // namespace tts

#endif // TTS_OPT_SPACE_HH
