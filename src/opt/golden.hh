/**
 * @file
 * Golden values for the wax-placement search.
 *
 * Pins the `opt.*` keys: a small but real search on the 2U fleet
 * oracle whose accepted configuration must beat the paper's uniform
 * 2U deployment on peak cooling load.  tools/tts_golden merges this
 * map into tests/data/golden.json next to core::computeGoldenValues()
 * (opt sits above core in the layering, so core cannot host these),
 * and the integration test recomputes both and diffs.
 */

#ifndef TTS_OPT_GOLDEN_HH
#define TTS_OPT_GOLDEN_HH

#include <map>
#include <string>

namespace tts {
namespace opt {

/**
 * Run the pinned 2U search (fixed seed, budget, restarts, reduced
 * fleet/step resolution so the whole map stays cheap) and return the
 * `opt.2u.*` golden keys: baseline vs. best peak cooling, the chosen
 * melt/mass/boxes, evaluation counters, and beats_uniform.
 */
std::map<std::string, double> computeOptGoldenValues();

} // namespace opt
} // namespace tts

#endif // TTS_OPT_GOLDEN_HH
