#include "fleet/arena.hh"

#include <cstring>

#include "util/error.hh"

namespace tts {
namespace fleet {

std::uint64_t
fnv1a64(const void *data, std::size_t bytes, std::uint64_t h)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < bytes; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::uint64_t
digestDouble(std::uint64_t h, double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    return fnv1a64(&bits, sizeof bits, h);
}

std::uint64_t
digestU64(std::uint64_t h, std::uint64_t v)
{
    return fnv1a64(&v, sizeof v, h);
}

ArchetypeArena::ArchetypeArena(const server::ServerSpec &spec,
                               const server::WaxConfig &wax,
                               std::uint32_t first_server,
                               std::uint32_t count,
                               double inlet_temp_c,
                               double initial_util)
    : spec_(spec), wax_(wax), first_(first_server), count_(count),
      inlet_temp_c_(inlet_temp_c),
      baseline_(std::make_unique<server::ServerModel>(spec, wax))
{
    require(count >= 1, "ArchetypeArena: need at least one row");
    baseline_->network().setInletTemp(inlet_temp_c);
    baseline_->setLoad(initial_util);
    baseline_->solveSteadyState();
}

void
copyServerState(const server::ServerModel &from,
                server::ServerModel &to)
{
    require(from.hasWax() == to.hasWax(),
            "copyServerState: wax configuration mismatch");
    to.network().setInletTemp(from.network().inletTemp());
    to.setLoad(from.utilization(), from.frequency());
    to.network().setEnthalpies(from.network().enthalpies());
    if (from.hasWax())
        to.wax()->restoreThermalState(from.wax()->thermalState());
    to.network().setGuardCounters(from.network().guardCounters());
    to.network().setObsClock(from.network().obsClock());
}

std::unique_ptr<server::ServerModel>
ArchetypeArena::cloneBaseline() const
{
    auto clone = std::make_unique<server::ServerModel>(spec_, wax_);
    copyServerState(*baseline_, *clone);
    return clone;
}

std::uint64_t
digestServerState(const server::ServerModel &model,
                  const RowPerturbState &pert, std::uint64_t h)
{
    for (double v : model.network().enthalpies())
        h = digestDouble(h, v);
    if (model.hasWax()) {
        pcm::PcmElement::ThermalState ts = model.wax()->thermalState();
        h = digestDouble(h, ts.enthalpyJ);
        h = digestU64(h, ts.freezingBranch ? 1 : 0);
        h = digestU64(h, ts.wasMelted ? 1 : 0);
        h = digestU64(h, ts.cycles);
    }
    h = digestDouble(h, model.utilization());
    h = digestDouble(h, model.frequency());
    h = digestDouble(h, pert.utilDelta);
    h = digestDouble(h, pert.inletDeltaC);
    h = digestU64(h, pert.fanPinned ? 1 : 0);
    return h;
}

} // namespace fleet
} // namespace tts
