#include "fleet/fleet.hh"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <string>

#include "exec/parallel.hh"
#include "guard/checkpoint.hh"
#include "obs/obs.hh"
#include "util/error.hh"

namespace tts {
namespace fleet {

namespace {

bool
fileExists(const std::string &path)
{
    std::ifstream f(path);
    return f.good();
}

void
saveCounters(guard::CheckpointWriter &w, const std::string &key,
             const guard::GuardCounters &c)
{
    w.putU64Vector(key, {c.advances, c.steps, c.audits,
                         c.sentinelTrips, c.auditTrips, c.retries,
                         c.fallbacks});
    w.put(key + ".worst_residual_j", c.worstResidualJ);
    w.put(key + ".worst_residual_t", c.worstResidualTimeS);
}

guard::GuardCounters
restoreCounters(guard::CheckpointReader &r, const std::string &key)
{
    std::vector<std::uint64_t> v = r.expectU64Vector(key);
    require(v.size() == 7,
            "fleet checkpoint: bad guard counters for " + key);
    guard::GuardCounters c;
    c.advances = v[0];
    c.steps = v[1];
    c.audits = v[2];
    c.sentinelTrips = v[3];
    c.auditTrips = v[4];
    c.retries = v[5];
    c.fallbacks = v[6];
    c.worstResidualJ = r.expect(key + ".worst_residual_j");
    c.worstResidualTimeS = r.expect(key + ".worst_residual_t");
    return c;
}

void
saveSeries(guard::CheckpointWriter &w, const std::string &key,
           const TimeSeries &s)
{
    w.putVector(key + ".times", s.times());
    w.putVector(key + ".values", s.values());
}

TimeSeries
restoreSeries(guard::CheckpointReader &r, const std::string &key,
              const std::string &name)
{
    std::vector<double> times = r.expectVector(key + ".times");
    std::vector<double> values = r.expectVector(key + ".values");
    require(times.size() == values.size(),
            "fleet checkpoint: ragged series " + key);
    TimeSeries s(name);
    for (std::size_t i = 0; i < times.size(); ++i)
        s.append(times[i], values[i]);
    return s;
}

/** Serialize one model's evolving state (order = restoreModel). */
void
saveModel(guard::CheckpointWriter &w, const std::string &key,
          const server::ServerModel &m)
{
    w.put(key + ".inlet", m.network().inletTemp());
    w.put(key + ".util", m.utilization());
    w.put(key + ".freq", m.frequency());
    w.putVector(key + ".h", m.network().enthalpies());
    w.putBool(key + ".has_wax", m.hasWax());
    if (m.hasWax()) {
        pcm::PcmElement::ThermalState ts = m.wax()->thermalState();
        w.put(key + ".wax.h", ts.enthalpyJ);
        w.putBool(key + ".wax.freezing", ts.freezingBranch);
        w.putBool(key + ".wax.was_melted", ts.wasMelted);
        w.putU64(key + ".wax.cycles", ts.cycles);
    }
    saveCounters(w, key + ".guard", m.network().guardCounters());
}

void
restoreModel(guard::CheckpointReader &r, const std::string &key,
             server::ServerModel &m)
{
    double inlet = r.expect(key + ".inlet");
    double util = r.expect(key + ".util");
    double freq = r.expect(key + ".freq");
    m.network().setInletTemp(inlet);
    m.setLoad(util, freq);
    m.network().setEnthalpies(r.expectVector(key + ".h"));
    bool has_wax = r.expectBool(key + ".has_wax");
    require(has_wax == m.hasWax(),
            "fleet checkpoint: wax configuration mismatch for " + key);
    if (has_wax) {
        pcm::PcmElement::ThermalState ts;
        ts.enthalpyJ = r.expect(key + ".wax.h");
        ts.freezingBranch = r.expectBool(key + ".wax.freezing");
        ts.wasMelted = r.expectBool(key + ".wax.was_melted");
        ts.cycles = r.expectU64(key + ".wax.cycles");
        m.wax()->restoreThermalState(ts);
    }
    m.network().setGuardCounters(restoreCounters(r, key + ".guard"));
}

} // namespace

FleetSim::FleetSim(const server::ServerSpec &spec,
                   const workload::WorkloadTrace &trace,
                   const FleetConfig &cfg)
    : cfg_(cfg), trace_(trace),
      server_count_(cfg.run.serverCount),
      shard_count_(cfg.shardCount > 0 ? cfg.shardCount : 8),
      cooling_w_("fleet_cooling_w"), it_w_("fleet_it_w"),
      melt_("fleet_melt_fraction")
{
    require(cfg_.durationS > 0.0, "FleetSim: durationS must be > 0");
    require(cfg_.controlIntervalS > 0.0 && cfg_.thermalStepS > 0.0,
            "FleetSim: bad step sizes");

    double u0 = utilAt(0.0);
    server::WaxConfig shared_wax = cfg_.withWax
        ? cfg_.run.waxConfig()
        : server::WaxConfig::none();
    if (server_count_ > 0) {
        std::vector<server::ServerSpec> specs;
        if (cfg_.mixedPlatforms) {
            specs = {server::rd330Spec(), server::x4470Spec(),
                     server::openComputeSpec()};
        } else {
            specs = {spec};
        }
        require(cfg_.archetypeWax.empty() ||
                    cfg_.archetypeWax.size() == specs.size(),
                "FleetSim: archetypeWax must carry one entry per "
                "platform slot (" + std::to_string(specs.size()) +
                    ")");
        std::uint32_t n = static_cast<std::uint32_t>(server_count_);
        std::uint32_t base = n / static_cast<std::uint32_t>(specs.size());
        std::uint32_t rem = n % static_cast<std::uint32_t>(specs.size());
        std::uint32_t first = 0;
        for (std::size_t i = 0; i < specs.size(); ++i) {
            std::uint32_t count = base + (i < rem ? 1 : 0);
            if (count == 0)
                continue;
            const server::WaxConfig &wax = cfg_.archetypeWax.empty()
                ? shared_wax
                : cfg_.archetypeWax[i];
            arenas_.push_back(std::make_unique<ArchetypeArena>(
                specs[i], wax, first, count, cfg_.inletTempC, u0));
            first += count;
        }
    }

    // Placement weights are a pure function of the built arenas, so
    // they are identical at any thread count and across resume.
    std::vector<workload::ArchetypeLoadTraits> traits;
    for (const auto &a : arenas_) {
        workload::ArchetypeLoadTraits t;
        t.count = a->count();
        t.latentCapacityJ = a->baseline().waxLatentCapacity();
        t.idleWallW = a->spec().idleWallPowerW;
        t.peakWallW = a->spec().peakWallPowerW;
        traits.push_back(t);
    }
    weights_ = arenas_.empty()
        ? std::vector<double>{}
        : workload::placementWeights(cfg_.placement, traits);

    events_ = generatePerturbations(
        cfg_.seed, static_cast<std::uint32_t>(server_count_),
        cfg_.durationS, cfg_.perturb);
    for (const PerturbEvent &e : cfg_.extraEvents) {
        require(e.server < server_count_,
                "FleetSim: extra event targets server outside fleet");
        events_.push_back(e);
    }
    if (!cfg_.extraEvents.empty())
        std::sort(events_.begin(), events_.end(), perturbEventLess);

    if (!cfg_.dedupe) {
        // Naive reference path: every row private from the start.
        for (std::uint32_t s = 0; s < server_count_; ++s)
            materialize(s);
    }

    if (obs::enabled()) {
        static obs::Gauge &servers =
            obs::registry().gauge("fleet.servers");
        static obs::Gauge &shards =
            obs::registry().gauge("fleet.shards");
        servers.set(static_cast<double>(server_count_));
        shards.set(static_cast<double>(shard_count_));
        obs::emitEvent(obs::EventKind::PhaseBegin, 0.0, "fleet.run",
                       static_cast<double>(server_count_), -1);
    }
}

double
FleetSim::utilAt(double t) const
{
    if (trace_.size() == 0)
        return std::clamp(cfg_.run.utilization, 0.0, 1.0);
    return std::clamp(trace_.totalAt(t), 0.0, 1.0);
}

ArchetypeArena &
FleetSim::arenaOf(std::uint32_t s)
{
    for (auto &a : arenas_)
        if (a->covers(s))
            return *a;
    throw Error("FleetSim: server index " + std::to_string(s) +
                " outside every arena");
}

const ArchetypeArena &
FleetSim::arenaOf(std::uint32_t s) const
{
    return const_cast<FleetSim *>(this)->arenaOf(s);
}

MaterializedRow &
FleetSim::materialize(std::uint32_t s)
{
    require(s < server_count_,
            "FleetSim: cannot materialize server " +
                std::to_string(s) + " of " +
                std::to_string(server_count_));
    auto it = rows_.find(s);
    if (it != rows_.end())
        return it->second;
    std::size_t arena_idx = 0;
    for (; arena_idx < arenas_.size(); ++arena_idx)
        if (arenas_[arena_idx]->covers(s))
            break;
    require(arena_idx < arenas_.size(),
            "FleetSim: no arena covers server " + std::to_string(s));
    ArchetypeArena &arena = *arenas_[arena_idx];
    MaterializedRow row;
    row.server = s;
    row.arena = arena_idx;
    row.model = arena.cloneBaseline();
    row.model->network().setObsLabel("fleet/srv" + std::to_string(s));
    arena.noteMaterialized();
    if (obs::enabled()) {
        static obs::Counter &materialized =
            obs::registry().counter("fleet.rows.materialized");
        materialized.add(1);
    }
    return rows_.emplace(s, std::move(row)).first->second;
}

std::uint64_t
FleetSim::waxDigest() const
{
    // Canonical fingerprint of every arena's wax deployment, so a
    // checkpoint written under one candidate configuration cannot be
    // resumed under another (the opt engine varies exactly these
    // fields between otherwise identical fleets).
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const auto &a : arenas_) {
        const server::WaxConfig &wax = a->wax();
        h = digestU64(h, static_cast<std::uint64_t>(wax.mode));
        h = digestDouble(h, wax.liters);
        h = digestU64(h, wax.boxCount);
        h = digestDouble(h, wax.meltTempC);
        h = digestDouble(h, wax.meltWindowC);
        h = digestDouble(h, wax.supercoolingC);
    }
    return h;
}

void
FleetSim::applyEventsUpTo(double t)
{
    while (events_pos_ < events_.size() &&
           events_[events_pos_].timeS <= t) {
        const PerturbEvent &e = events_[events_pos_++];
        MaterializedRow &row = materialize(e.server);
        switch (e.kind) {
          case PerturbKind::UtilizationDelta:
            row.pert.utilDelta += e.value;
            break;
          case PerturbKind::InletDrift:
            row.pert.inletDeltaC += e.value;
            break;
          case PerturbKind::FanFailure:
            row.pert.fanPinned = true;
            break;
        }
        ++events_applied_;
        if (obs::enabled()) {
            static obs::Counter &applied =
                obs::registry().counter("fleet.events.applied");
            applied.add(1);
            obs::emitEvent(obs::EventKind::FaultInjected, t,
                           std::string("fleet/") +
                               perturbKindName(e.kind),
                           e.value,
                           static_cast<std::int64_t>(e.server));
        }
    }
}

void
FleetSim::setLoads(double u)
{
    for (std::size_t i = 0; i < arenas_.size(); ++i) {
        server::ServerModel &b = arenas_[i]->baseline();
        b.setLoad(std::clamp(u * weights_[i], 0.0, 1.0));
        b.network().setObsClock(t_);
    }
    for (auto &kv : rows_) {
        MaterializedRow &row = kv.second;
        const ArchetypeArena &arena = *arenas_[row.arena];
        double util = std::clamp(
            u * weights_[row.arena] + row.pert.utilDelta, 0.0, 1.0);
        double freq = row.pert.fanPinned
            ? arena.spec().cpu.minFreqGHz
            : 0.0;
        row.model->setLoad(util, freq);
        row.model->network().setInletTemp(arena.inletTempC() +
                                          row.pert.inletDeltaC);
        row.model->network().setObsClock(t_);
    }
}

void
FleetSim::record(double t)
{
    // Canonical aggregation order - arena-major, then rows in server
    // order - so the sums are bit-identical at any thread count and
    // shard width (the aliased contribution is one multiply, which
    // only depends on the width-invariant materialization pattern).
    double cooling = 0.0;
    double it_power = 0.0;
    double melt_sum = 0.0;
    double wax_servers = 0.0;
    for (const auto &arena : arenas_) {
        const server::ServerModel &b = arena->baseline();
        double aliased = static_cast<double>(arena->aliasedCount());
        cooling += aliased * b.coolingLoad();
        it_power += aliased * b.wallPower();
        if (b.hasWax()) {
            melt_sum += aliased * b.waxMeltFraction();
            wax_servers += aliased;
        }
        std::uint32_t lo = arena->firstServer();
        std::uint32_t hi = lo + arena->count();
        for (auto itr = rows_.lower_bound(lo);
             itr != rows_.end() && itr->first < hi; ++itr) {
            const server::ServerModel &m = *itr->second.model;
            cooling += m.coolingLoad();
            it_power += m.wallPower();
            if (m.hasWax()) {
                melt_sum += m.waxMeltFraction();
                wax_servers += 1.0;
            }
        }
    }
    if (cfg_.recordSeries) {
        cooling_w_.append(t, cooling);
        it_w_.append(t, it_power);
        melt_.append(t,
                     wax_servers > 0.0 ? melt_sum / wax_servers : 0.0);
    }
    peak_cooling_w_ = std::max(peak_cooling_w_, cooling);
    peak_it_w_ = std::max(peak_it_w_, it_power);
    last_cooling_w_ = cooling;
}

void
FleetSim::advanceAll(double dt)
{
    // Baselines are a handful of rows; serial keeps their obs
    // streams on the main task and costs nothing next to the fleet.
    for (auto &arena : arenas_)
        arena->baseline().advance(dt, cfg_.thermalStepS);
    if (rows_.empty())
        return;
    // Shards own contiguous server ranges; rows are looked up in the
    // ordered map, which no task mutates while the region runs.
    std::uint32_t n = static_cast<std::uint32_t>(server_count_);
    std::uint32_t chunk = static_cast<std::uint32_t>(
        (server_count_ + shard_count_ - 1) / shard_count_);
    exec::parallel_for_index(shard_count_, [&](std::size_t k) {
        std::uint32_t lo = static_cast<std::uint32_t>(k) * chunk;
        std::uint32_t hi = std::min(n, lo + chunk);
        if (lo >= hi)
            return;
        for (auto itr = rows_.lower_bound(lo);
             itr != rows_.end() && itr->first < hi; ++itr)
            itr->second.model->advance(dt, cfg_.thermalStepS);
    });
}

double
FleetSim::step()
{
    require(!done_, "FleetSim::step: run already finished");
    double u = utilAt(t_);
    applyEventsUpTo(t_);
    setLoads(u);
    record(t_);
    double dt = std::min(cfg_.controlIntervalS, cfg_.durationS - t_);
    advanceAll(dt);
    cooling_energy_j_ += last_cooling_w_ * dt;
    t_ += dt;
    ++control_steps_;
    std::uint64_t inner = static_cast<std::uint64_t>(
        std::ceil(dt / cfg_.thermalStepS - 1e-9));
    if (inner == 0)
        inner = 1;
    server_steps_ +=
        static_cast<std::uint64_t>(server_count_) * inner;
    row_steps_ += static_cast<std::uint64_t>(arenas_.size() +
                                             rows_.size()) *
        inner;
    if (obs::enabled()) {
        static obs::Counter &steps =
            obs::registry().counter("fleet.control_steps");
        steps.add(1);
        static obs::Gauge &materialized =
            obs::registry().gauge("fleet.rows.live");
        materialized.set(static_cast<double>(rows_.size()));
    }
    if (t_ >= cfg_.durationS - 1e-9) {
        t_ = cfg_.durationS;
        double uf = utilAt(t_);
        applyEventsUpTo(t_);
        setLoads(uf);
        record(t_);
        done_ = true;
        TTS_OBS_EVENT(obs::EventKind::PhaseEnd, t_, "fleet.run",
                      static_cast<double>(rows_.size()), -1);
    }
    return dt;
}

const server::ServerModel &
FleetSim::serverView(std::uint32_t s) const
{
    auto it = rows_.find(s);
    if (it != rows_.end())
        return *it->second.model;
    return arenaOf(s).baseline();
}

RowPerturbState
FleetSim::serverPerturbState(std::uint32_t s) const
{
    auto it = rows_.find(s);
    return it != rows_.end() ? it->second.pert : RowPerturbState{};
}

std::uint64_t
FleetSim::serverDigest(std::uint32_t s) const
{
    return digestServerState(serverView(s), serverPerturbState(s));
}

std::uint64_t
FleetSim::stateDigest() const
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    h = digestDouble(h, t_);
    for (std::uint32_t s = 0;
         s < static_cast<std::uint32_t>(server_count_); ++s)
        h = digestServerState(serverView(s), serverPerturbState(s),
                              h);
    return h;
}

void
FleetSim::save(const std::string &path) const
{
    guard::CheckpointWriter w;
    w.section("fleet");
    w.putU64("server_count", server_count_);
    w.putU64("arena_count", arenas_.size());
    w.putU64("seed", cfg_.seed);
    w.putBool("dedupe", cfg_.dedupe);
    w.putU64("placement", static_cast<std::uint64_t>(cfg_.placement));
    w.putU64("wax_digest", waxDigest());
    w.put("duration_s", cfg_.durationS);
    w.put("control_s", cfg_.controlIntervalS);
    w.put("thermal_s", cfg_.thermalStepS);
    w.put("inlet_c", cfg_.inletTempC);
    w.put("t", t_);
    w.putU64("control_steps", control_steps_);
    w.putU64("events_pos", events_pos_);
    w.putU64("events_applied", events_applied_);
    w.putU64("server_steps", server_steps_);
    w.putU64("row_steps", row_steps_);
    w.put("peak_cooling_w", peak_cooling_w_);
    w.put("peak_it_w", peak_it_w_);
    w.put("cooling_energy_j", cooling_energy_j_);
    w.put("last_cooling_w", last_cooling_w_);
    w.section("series");
    saveSeries(w, "cooling", cooling_w_);
    saveSeries(w, "it", it_w_);
    saveSeries(w, "melt", melt_);
    for (std::size_t i = 0; i < arenas_.size(); ++i) {
        const ArchetypeArena &a = *arenas_[i];
        w.section("arena." + std::to_string(i));
        w.putU64("first", a.firstServer());
        w.putU64("count", a.count());
        w.putU64("materialized", a.materializedCount());
        saveModel(w, "base", a.baseline());
    }
    w.section("rows");
    w.putU64("count", rows_.size());
    std::size_t k = 0;
    for (const auto &kv : rows_) {
        const MaterializedRow &row = kv.second;
        w.section("row." + std::to_string(k++));
        w.putU64("server", row.server);
        w.putU64("arena", row.arena);
        w.put("util_delta", row.pert.utilDelta);
        w.put("inlet_delta", row.pert.inletDeltaC);
        w.putBool("fan_pinned", row.pert.fanPinned);
        saveModel(w, "m", *row.model);
    }
    guard::writeCheckpointFile(path, w.finish());
    TTS_OBS_EVENT(obs::EventKind::CheckpointSave, t_,
                  "fleet.checkpoint",
                  static_cast<double>(rows_.size()), -1);
}

void
FleetSim::restore(const std::string &path)
{
    guard::CheckpointReader r(guard::readCheckpointFile(path), path);
    r.expectSection("fleet");
    require(r.expectU64("server_count") == server_count_,
            "fleet checkpoint: server count mismatch");
    require(r.expectU64("arena_count") == arenas_.size(),
            "fleet checkpoint: arena count mismatch");
    require(r.expectU64("seed") == cfg_.seed,
            "fleet checkpoint: seed mismatch");
    require(r.expectBool("dedupe") == cfg_.dedupe,
            "fleet checkpoint: dedupe mode mismatch");
    require(r.expectU64("placement") ==
                static_cast<std::uint64_t>(cfg_.placement),
            "fleet checkpoint: placement policy mismatch");
    require(r.expectU64("wax_digest") == waxDigest(),
            "fleet checkpoint: wax deployment mismatch");
    require(r.expect("duration_s") == cfg_.durationS &&
                r.expect("control_s") == cfg_.controlIntervalS &&
                r.expect("thermal_s") == cfg_.thermalStepS &&
                r.expect("inlet_c") == cfg_.inletTempC,
            "fleet checkpoint: step configuration mismatch");
    t_ = r.expect("t");
    control_steps_ = r.expectU64("control_steps");
    events_pos_ = r.expectU64("events_pos");
    events_applied_ = r.expectU64("events_applied");
    server_steps_ = r.expectU64("server_steps");
    row_steps_ = r.expectU64("row_steps");
    peak_cooling_w_ = r.expect("peak_cooling_w");
    peak_it_w_ = r.expect("peak_it_w");
    cooling_energy_j_ = r.expect("cooling_energy_j");
    last_cooling_w_ = r.expect("last_cooling_w");
    r.expectSection("series");
    cooling_w_ = restoreSeries(r, "cooling", "fleet_cooling_w");
    it_w_ = restoreSeries(r, "it", "fleet_it_w");
    melt_ = restoreSeries(r, "melt", "fleet_melt_fraction");
    for (std::size_t i = 0; i < arenas_.size(); ++i) {
        ArchetypeArena &a = *arenas_[i];
        r.expectSection("arena." + std::to_string(i));
        require(r.expectU64("first") == a.firstServer() &&
                    r.expectU64("count") == a.count(),
                "fleet checkpoint: arena layout mismatch");
        a.setMaterializedCount(static_cast<std::uint32_t>(
            r.expectU64("materialized")));
        restoreModel(r, "base", a.baseline());
    }
    r.expectSection("rows");
    std::uint64_t count = r.expectU64("count");
    rows_.clear();
    for (std::uint64_t k = 0; k < count; ++k) {
        r.expectSection("row." + std::to_string(k));
        MaterializedRow row;
        row.server =
            static_cast<std::uint32_t>(r.expectU64("server"));
        row.arena = static_cast<std::size_t>(r.expectU64("arena"));
        require(row.arena < arenas_.size() &&
                    arenas_[row.arena]->covers(row.server),
                "fleet checkpoint: row outside its arena");
        row.pert.utilDelta = r.expect("util_delta");
        row.pert.inletDeltaC = r.expect("inlet_delta");
        row.pert.fanPinned = r.expectBool("fan_pinned");
        const ArchetypeArena &arena = *arenas_[row.arena];
        row.model = std::make_unique<server::ServerModel>(
            arena.spec(), arena.wax());
        row.model->network().setObsLabel(
            "fleet/srv" + std::to_string(row.server));
        restoreModel(r, "m", *row.model);
        std::uint32_t server = row.server;
        rows_.emplace(server, std::move(row));
    }
    r.expectEnd();
    std::uint64_t materialized = 0;
    for (const auto &a : arenas_)
        materialized += a->materializedCount();
    require(materialized == rows_.size(),
            "fleet checkpoint: materialized-count mismatch");
    done_ = t_ >= cfg_.durationS;
    TTS_OBS_EVENT(obs::EventKind::CheckpointRestore, t_,
                  "fleet.checkpoint",
                  static_cast<double>(rows_.size()), -1);
}

bool
FleetSim::run(const core::CheckpointPolicy &policy)
{
    if (!policy.path.empty() && fileExists(policy.path))
        restore(policy.path);
    double advanced = 0.0;
    double last_save = t_;
    while (!done_) {
        advanced += step();
        if (done_)
            break;
        if (!policy.path.empty() &&
            policy.checkpointEveryS > 0.0 &&
            t_ - last_save >= policy.checkpointEveryS) {
            save(policy.path);
            last_save = t_;
        }
        if (policy.stopAfterS >= 0.0 &&
            advanced >= policy.stopAfterS) {
            if (!policy.path.empty())
                save(policy.path);
            return false;
        }
    }
    return true;
}

FleetResult
FleetSim::take()
{
    require(done_, "FleetSim::take: run not finished");
    require(!taken_, "FleetSim::take: result already taken");
    taken_ = true;
    FleetResult out;
    out.stateDigest = stateDigest();
    out.coolingLoadW = std::move(cooling_w_);
    out.itPowerW = std::move(it_w_);
    out.meltFraction = std::move(melt_);
    out.peakCoolingW = peak_cooling_w_;
    out.peakItPowerW = peak_it_w_;
    out.coolingEnergyJ = cooling_energy_j_;
    out.serverSteps = server_steps_;
    out.rowSteps = row_steps_;
    out.materializedRows = rows_.size();
    out.eventsApplied = events_applied_;
    out.serverCount = server_count_;
    return out;
}

FleetResult
runFleetStudy(const server::ServerSpec &spec,
              const workload::WorkloadTrace &trace,
              const FleetConfig &cfg)
{
    core::StudyContext ctx(spec, trace, cfg.run);
    ctx.beginObs();
    FleetSim sim(spec, trace, cfg);
    bool finished = sim.run(cfg.run.checkpoint);
    ctx.finishObs();
    require(finished,
            "runFleetStudy: run paused by stopAfterS; drive FleetSim "
            "directly for pause/resume");
    return sim.take();
}

} // namespace fleet
} // namespace tts
