#include "fleet/sweep.hh"

#include "exec/parallel.hh"
#include "obs/obs.hh"

namespace tts {
namespace fleet {

std::vector<FleetResult>
runFleetSweep(const std::vector<SweepJob> &jobs)
{
    if (obs::enabled()) {
        static obs::Counter &sweeps =
            obs::registry().counter("fleet.sweep.dispatches");
        static obs::Counter &swept =
            obs::registry().counter("fleet.sweep.jobs");
        sweeps.add(1);
        swept.add(jobs.size());
    }
    return exec::parallel_map(jobs, [](const SweepJob &job) {
        FleetSim sim(job.spec, job.trace, job.cfg);
        sim.run();
        return sim.take();
    });
}

} // namespace fleet
} // namespace tts
