/**
 * @file
 * tts::fleet - warehouse-scale sharded fleet simulation.
 *
 * The paper's headline numbers are for a 10 MW facility (~40k
 * servers); simulating every server naively is 40,000 independent
 * thermal transients per step.  FleetSim scales by exploiting what a
 * warehouse fleet actually looks like: servers group into a handful
 * of platform *archetypes* (spec + wax deployment + shared input
 * stream), and within an archetype every unperturbed server's
 * trajectory is bit-identical.  Each archetype therefore advances one
 * baseline row (see fleet/arena.hh) that all unperturbed rows alias
 * - exact deduplication, not sampling - while perturbed servers
 * (utilization offsets, inlet drift, fan failures; see
 * fleet/perturbation.hh) lazily materialize private rows the moment
 * they diverge.
 *
 * Materialized rows advance sharded across the deterministic
 * exec::ThreadPool.  All randomness is drawn from per-server
 * Rng::forStream sub-streams before stepping begins and every
 * aggregation runs in canonical (arena, server) order, so the entire
 * run - series, peaks, digests - is bit-identical at any thread count
 * and any shard width.  Long runs checkpoint through the CRC-32
 * guard writer (arena baselines + materialized rows + event cursor)
 * and resume bit-identically, and the whole thing is observable
 * through tts::obs (fleet.* metrics, perturbation trace events).
 */

#ifndef TTS_FLEET_FLEET_HH
#define TTS_FLEET_FLEET_HH

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "core/run_config.hh"
#include "fleet/arena.hh"
#include "fleet/perturbation.hh"
#include "server/server_spec.hh"
#include "util/time_series.hh"
#include "workload/placement.hh"
#include "workload/trace.hh"

namespace tts {
namespace fleet {

/** Fleet simulation configuration. */
struct FleetConfig
{
    /**
     * Shared run knobs: serverCount is the fleet population,
     * utilization is the flat load when no trace is given, meltTempC
     * picks the wax deployment, obs/checkpoint wire the sinks.
     */
    core::RunConfig run;
    /** Simulated horizon (s). */
    double durationS = 2.0 * 86400.0;
    /** Control interval: load updates + aggregation (s). */
    double controlIntervalS = 60.0;
    /** Inner thermal integration step (s). */
    double thermalStepS = 15.0;
    /** Cold-aisle inlet temperature every arena sees (C). */
    double inletTempC = 25.0;
    /**
     * Shards the materialized rows advance in (each shard owns a
     * contiguous server range); 0 picks the default of 8.  Results
     * are bit-identical at any width.
     */
    std::size_t shardCount = 0;
    /** Fleet seed: perturbation schedule sub-streams key off it. */
    std::uint64_t seed = 0x715f1ee7ULL;
    /** Perturbation rates/magnitudes (0 rate = fully deduped). */
    PerturbationModel perturb;
    /**
     * Extra hand-written perturbation events appended to the
     * generated schedule (tests, scenario drivers); events must
     * target servers inside the fleet.
     */
    std::vector<PerturbEvent> extraEvents;
    /**
     * Archetype + perturbation dedupe (the point of this module).
     * False materializes every row up front - the naive per-server
     * reference path the perf gate compares against; only sensible
     * for small fleets.
     */
    bool dedupe = true;
    /**
     * Split the fleet across the three platform archetypes (1U
     * RD330, 2U X4470, Open Compute) instead of a single-platform
     * fleet; counts split as evenly as possible.
     */
    bool mixedPlatforms = false;
    /** Deploy wax (run.waxConfig()); false runs a stock fleet. */
    bool withWax = true;
    /**
     * Per-archetype wax overrides, indexed by platform slot (the
     * single platform, or {1U, 2U, OCP} under mixedPlatforms).  When
     * non-empty it must have one entry per slot and replaces the
     * withWax/run.waxConfig() choice for every arena - this is the
     * knob tts::opt turns for per-archetype wax mass / melt / box
     * count candidates.
     */
    std::vector<server::WaxConfig> archetypeWax;
    /**
     * Job-placement policy: skews per-archetype utilization by
     * workload::placementWeights while conserving total fleet load.
     * Uniform reproduces the paper (every archetype at the fleet
     * utilization).
     */
    workload::PlacementPolicy placement =
        workload::PlacementPolicy::Uniform;
    /**
     * Record the per-step cooling/IT/melt series.  The opt oracle
     * turns this off: peaks, energy, and digests are still tracked,
     * but thousands of candidate evaluations skip the per-step
     * appends and carry no series memory.
     */
    bool recordSeries = true;
};

/** Aggregated outputs of a fleet run. */
struct FleetResult
{
    /** Fleet-wide heat rejected to the room (W). */
    TimeSeries coolingLoadW;
    /** Fleet-wide wall power (W). */
    TimeSeries itPowerW;
    /** Mean wax melt fraction over wax-bearing servers. */
    TimeSeries meltFraction;
    /** Peak of coolingLoadW (W). */
    double peakCoolingW = 0.0;
    /** Peak of itPowerW (W). */
    double peakItPowerW = 0.0;
    /** Integrated cooling energy over the horizon (J). */
    double coolingEnergyJ = 0.0;
    /** Logical server thermal steps (population x inner steps). */
    std::uint64_t serverSteps = 0;
    /** Thermal steps actually integrated (baselines + rows). */
    std::uint64_t rowSteps = 0;
    /** Materialized rows at the end of the run. */
    std::size_t materializedRows = 0;
    /** Perturbation events applied. */
    std::size_t eventsApplied = 0;
    /** Canonical end-state digest over every server (bit-identity). */
    std::uint64_t stateDigest = 0;
    /** Fleet population. */
    std::size_t serverCount = 0;

    /**
     * @return Dedupe leverage: logical server steps per actually
     * integrated step (1.0 when every row is materialized).
     */
    double dedupeFactor() const
    {
        return rowSteps == 0
            ? 1.0
            : static_cast<double>(serverSteps) /
                  static_cast<double>(rowSteps);
    }
};

/**
 * The sharded fleet simulator: a resumable step machine in the
 * ResilienceRunner mold.  Construct, then either run(policy) to
 * completion / pause, or drive step() directly (tests).
 */
class FleetSim
{
  public:
    /**
     * @param spec  Platform of every arena (ignored per-arena when
     *              cfg.mixedPlatforms is set).
     * @param trace Normalized load trace driving utilization; an
     *              empty trace holds cfg.run.utilization flat.
     * @param cfg   Fleet configuration (copied).
     */
    FleetSim(const server::ServerSpec &spec,
             const workload::WorkloadTrace &trace,
             const FleetConfig &cfg);

    FleetSim(const FleetSim &) = delete;
    FleetSim &operator=(const FleetSim &) = delete;

    /**
     * Run to completion, restoring from policy.path first when that
     * file exists (it must describe the same fleet configuration).
     * Writes a checkpoint every policy.checkpointEveryS simulated
     * seconds when policy.path is set.
     *
     * @return True when the run finished; false when paused by
     *         policy.stopAfterS (state saved to policy.path).
     */
    bool run(const core::CheckpointPolicy &policy =
                 core::CheckpointPolicy{});

    /** Extract the result.  Call once, after the run finished. */
    FleetResult take();

    /** @return True when the horizon has been reached. */
    bool done() const { return done_; }

    /** Advance one control step.  @return Simulated seconds moved. */
    double step();

    /** @return Current simulated time (s). */
    double timeS() const { return t_; }

    /** @return Fleet population. */
    std::size_t serverCount() const { return server_count_; }

    /** @return Resolved shard count. */
    std::size_t shardCount() const { return shard_count_; }

    /** @return The arenas (one per platform archetype). */
    const std::vector<std::unique_ptr<ArchetypeArena>> &arenas() const
    {
        return arenas_;
    }

    /** @return Per-arena utilization weights (cfg.placement). */
    const std::vector<double> &placementWeights() const
    {
        return weights_;
    }

    /** @return Materialized rows across all arenas. */
    std::size_t materializedCount() const { return rows_.size(); }

    /** @return True when server s has a private row. */
    bool isMaterialized(std::uint32_t s) const
    {
        return rows_.find(s) != rows_.end();
    }

    /**
     * @return The model whose state server s currently carries: its
     * private row when materialized, else its arena's baseline.
     */
    const server::ServerModel &serverView(std::uint32_t s) const;

    /** @return The perturbation state of server s (zero = baseline). */
    RowPerturbState serverPerturbState(std::uint32_t s) const;

    /** @return Canonical digest of server s's state. */
    std::uint64_t serverDigest(std::uint32_t s) const;

    /**
     * @return Canonical digest over (time, every server's state) -
     * the bit-identity oracle the tests and the perf gate compare
     * across thread counts, shard widths, and kill/resume cycles.
     */
    std::uint64_t stateDigest() const;

    /** Test hook: materialize server s without perturbing it. */
    void materializeForTest(std::uint32_t s) { materialize(s); }

    /** @return Perturbation events applied so far. */
    std::size_t eventsApplied() const { return events_applied_; }

    /** @return The full perturbation schedule (sorted). */
    const std::vector<PerturbEvent> &events() const { return events_; }

    /** Write a checkpoint of the full fleet state to path. */
    void save(const std::string &path) const;

    /**
     * Restore a checkpoint written by save().  The simulator must
     * have been constructed with the same configuration.
     * @throws FatalError on CRC/format mismatch, tts::Error on a
     *         configuration mismatch.
     */
    void restore(const std::string &path);

  private:
    /** Utilization at time t (trace, or the flat run value). */
    double utilAt(double t) const;

    /** Canonical digest of every arena's wax deployment. */
    std::uint64_t waxDigest() const;

    /** Arena covering global server s. */
    ArchetypeArena &arenaOf(std::uint32_t s);
    const ArchetypeArena &arenaOf(std::uint32_t s) const;

    /** Materialize server s (no-op when already materialized). */
    MaterializedRow &materialize(std::uint32_t s);

    /** Apply every pending event with timeS <= t. */
    void applyEventsUpTo(double t);

    /** Set baseline + row operating points for utilization u. */
    void setLoads(double u);

    /** Append the aggregate sample at time t (canonical order). */
    void record(double t);

    /** Advance baselines serially, rows sharded; dt seconds. */
    void advanceAll(double dt);

    FleetConfig cfg_;
    workload::WorkloadTrace trace_;
    std::size_t server_count_;
    std::size_t shard_count_;
    std::vector<std::unique_ptr<ArchetypeArena>> arenas_;
    /** Per-arena utilization weights from cfg.placement. */
    std::vector<double> weights_;
    /** Materialized rows keyed by server id (canonical order). */
    std::map<std::uint32_t, MaterializedRow> rows_;
    std::vector<PerturbEvent> events_;
    std::size_t events_pos_ = 0;
    std::size_t events_applied_ = 0;

    double t_ = 0.0;
    bool done_ = false;
    std::uint64_t control_steps_ = 0;
    std::uint64_t server_steps_ = 0;
    std::uint64_t row_steps_ = 0;
    double peak_cooling_w_ = 0.0;
    double peak_it_w_ = 0.0;
    double cooling_energy_j_ = 0.0;
    double last_cooling_w_ = 0.0;
    TimeSeries cooling_w_;
    TimeSeries it_w_;
    TimeSeries melt_;
    bool taken_ = false;
};

/**
 * Convenience wrapper: build a FleetSim and run it to completion
 * under cfg.run.checkpoint, honoring cfg.run.obs via StudyContext.
 * @throws tts::Error when the run pauses (stopAfterS) instead of
 *         finishing - drive FleetSim directly for pause/resume.
 */
FleetResult runFleetStudy(const server::ServerSpec &spec,
                          const workload::WorkloadTrace &trace,
                          const FleetConfig &cfg);

} // namespace fleet
} // namespace tts

#endif // TTS_FLEET_FLEET_HH
