#include "fleet/perturbation.hh"

#include <algorithm>
#include <cmath>

#include "util/error.hh"
#include "util/random.hh"

namespace tts {
namespace fleet {

const char *
perturbKindName(PerturbKind kind)
{
    switch (kind) {
      case PerturbKind::UtilizationDelta: return "perturb.util_delta";
      case PerturbKind::InletDrift: return "perturb.inlet_drift";
      case PerturbKind::FanFailure: return "perturb.fan_failure";
    }
    return "perturb.unknown";
}

bool
perturbEventLess(const PerturbEvent &a, const PerturbEvent &b)
{
    if (a.timeS != b.timeS)
        return a.timeS < b.timeS;
    if (a.server != b.server)
        return a.server < b.server;
    if (a.kind != b.kind)
        return static_cast<int>(a.kind) < static_cast<int>(b.kind);
    return a.value < b.value;
}

std::vector<PerturbEvent>
generatePerturbations(std::uint64_t seed, std::uint32_t server_count,
                      double duration_s,
                      const PerturbationModel &model)
{
    require(model.eventsPerServerDay >= 0.0,
            "generatePerturbations: negative event rate");
    require(model.fanFailureWeight >= 0.0 &&
                model.fanFailureWeight <= 1.0,
            "generatePerturbations: fanFailureWeight outside [0, 1]");
    std::vector<PerturbEvent> events;
    if (model.eventsPerServerDay <= 0.0 || duration_s <= 0.0 ||
        server_count == 0)
        return events;

    double mean = model.eventsPerServerDay * duration_s / 86400.0;
    for (std::uint32_t s = 0; s < server_count; ++s) {
        // One sub-stream per server: the draw sequence below is a
        // pure function of (seed, s), so sharding cannot change it.
        Rng rng = Rng::forStream(seed, s);
        std::uint64_t n = rng.poisson(mean);
        for (std::uint64_t k = 0; k < n; ++k) {
            PerturbEvent e;
            e.timeS = rng.uniform(0.0, duration_s);
            e.server = s;
            double pick = rng.uniform();
            if (pick < model.fanFailureWeight) {
                e.kind = PerturbKind::FanFailure;
                e.value = 0.0;
            } else if (pick < model.fanFailureWeight +
                                  0.5 * (1.0 - model.fanFailureWeight)) {
                e.kind = PerturbKind::UtilizationDelta;
                e.value = rng.normal(0.0, model.utilDeltaSigma);
            } else {
                e.kind = PerturbKind::InletDrift;
                e.value = rng.normal(0.0, model.inletDriftSigmaC);
            }
            events.push_back(e);
        }
    }
    std::sort(events.begin(), events.end(), perturbEventLess);
    return events;
}

} // namespace fleet
} // namespace tts
