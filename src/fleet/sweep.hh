/**
 * @file
 * Batched multi-configuration fleet sweeps.
 *
 * The serving layer's miss batcher collects concurrent fleet-backed
 * cache misses and wants them executed as *one* dispatch instead of
 * N independent submissions; this is that entry point.  Each job is
 * an independent (spec, trace, config) fleet run; the batch fans out
 * over the deterministic exec pool into index-keyed slots, so
 * results[i] is exactly what runFleetStudy would have produced for
 * jobs[i] run alone - the bit-identity contract the batcher's
 * split-back-out step relies on.  (FleetSim's own sharded stepping
 * nests inside the pool the same way the opt engine's candidate
 * batches always have.)
 */

#ifndef TTS_FLEET_SWEEP_HH
#define TTS_FLEET_SWEEP_HH

#include <vector>

#include "fleet/fleet.hh"
#include "server/server_spec.hh"
#include "workload/trace.hh"

namespace tts {
namespace fleet {

/** One independent fleet run in a sweep. */
struct SweepJob
{
    server::ServerSpec spec;
    workload::WorkloadTrace trace;
    FleetConfig cfg;
};

/**
 * Run every job, fanning out on the global exec pool.
 *
 * @return One FleetResult per job, in job order, each bit-identical
 *         to the same job run alone at any thread count.
 */
std::vector<FleetResult>
runFleetSweep(const std::vector<SweepJob> &jobs);

} // namespace fleet
} // namespace tts

#endif // TTS_FLEET_SWEEP_HH
