/**
 * @file
 * Archetype arenas: the fleet-scale extension of the SoA layout.
 *
 * PR 5 moved one server's node attributes into structure-of-arrays
 * storage; the fleet layer extends the same idea *across* servers.
 * Servers of one platform archetype (spec + wax deployment + shared
 * input stream) are rows of one arena.  The arena advances a single
 * *baseline row* - one materialized ServerThermalNetwork - and every
 * unperturbed row aliases it: their trajectories are bit-identical by
 * construction, so computing them once is exact deduplication, not an
 * approximation.  The first perturbation aimed at a row materializes
 * it: the baseline state is cloned bit-for-bit into a private
 * ServerModel that integrates on its own from then on.
 *
 * The arena also owns the canonical per-row state digest used by the
 * determinism tests and the fleet bench: an order-fixed FNV-1a hash
 * over the row's enthalpy vector, PCM hysteresis latches, and
 * perturbation state, identical whether the row is aliased or
 * materialized.
 */

#ifndef TTS_FLEET_ARENA_HH
#define TTS_FLEET_ARENA_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "server/server_model.hh"
#include "server/server_spec.hh"

namespace tts {
namespace fleet {

/** FNV-1a 64-bit over raw bytes (digest building block). */
std::uint64_t fnv1a64(const void *data, std::size_t bytes,
                      std::uint64_t h = 0xcbf29ce484222325ULL);

/** Fold a double's bit pattern into a digest. */
std::uint64_t digestDouble(std::uint64_t h, double v);

/** Fold a u64 into a digest. */
std::uint64_t digestU64(std::uint64_t h, std::uint64_t v);

/**
 * Persistent perturbation state of one row; the zero value means
 * "identical to the baseline" and is what unmaterialized rows carry
 * implicitly.
 */
struct RowPerturbState
{
    /** Cumulative utilization offset. */
    double utilDelta = 0.0;
    /** Cumulative inlet-air offset (C). */
    double inletDeltaC = 0.0;
    /** Fan bank failed: frequency pinned to the DVFS floor. */
    bool fanPinned = false;

    /** @return True when every field is the baseline value. */
    bool isBaseline() const
    {
        return utilDelta == 0.0 && inletDeltaC == 0.0 && !fanPinned;
    }
};

/** One materialized row: a private server model + its divergences. */
struct MaterializedRow
{
    /** Global server index of this row. */
    std::uint32_t server = 0;
    /** Arena the row belongs to. */
    std::size_t arena = 0;
    RowPerturbState pert;
    std::unique_ptr<server::ServerModel> model;
};

/**
 * One platform archetype: [firstServer, firstServer + count) rows,
 * a baseline model every unmaterialized row aliases, and the clone
 * machinery for lazy materialization.
 */
class ArchetypeArena
{
  public:
    /**
     * @param spec         Platform of every row.
     * @param wax          Wax-bay contents of every row.
     * @param first_server First global server index of this arena.
     * @param count        Rows in the arena.
     * @param inlet_temp_c Cold-aisle inlet temperature (C).
     * @param initial_util Utilization the baseline equilibrates at.
     */
    ArchetypeArena(const server::ServerSpec &spec,
                   const server::WaxConfig &wax,
                   std::uint32_t first_server, std::uint32_t count,
                   double inlet_temp_c, double initial_util);

    /** @return First global server index. */
    std::uint32_t firstServer() const { return first_; }
    /** @return Rows in the arena. */
    std::uint32_t count() const { return count_; }
    /** @return True when the arena covers global server s. */
    bool covers(std::uint32_t s) const
    {
        return s >= first_ && s < first_ + count_;
    }

    /** @return The baseline row's model. */
    server::ServerModel &baseline() { return *baseline_; }
    /** @return The baseline row's model. */
    const server::ServerModel &baseline() const { return *baseline_; }

    /** @return The platform spec. */
    const server::ServerSpec &spec() const { return spec_; }
    /** @return The wax deployment. */
    const server::WaxConfig &wax() const { return wax_; }
    /** @return The arena inlet temperature (C). */
    double inletTempC() const { return inlet_temp_c_; }

    /**
     * Clone the baseline into a fresh private model for one row:
     * a new ServerModel of the arena's (spec, wax) whose enthalpy
     * vector, PCM hysteresis latches, guard counters, and operating
     * point are copied bit-for-bit, so an unperturbed clone advances
     * bit-identically to the baseline forever.
     */
    std::unique_ptr<server::ServerModel> cloneBaseline() const;

    /** Rows of this arena that have been materialized. */
    std::uint32_t materializedCount() const { return materialized_; }
    /** Bump the materialized-row count (FleetSim bookkeeping). */
    void noteMaterialized() { ++materialized_; }
    /** Restore the count (checkpoint resume). */
    void setMaterializedCount(std::uint32_t n) { materialized_ = n; }

    /** @return Rows still aliasing the baseline. */
    std::uint32_t aliasedCount() const
    {
        return count_ - materialized_;
    }

  private:
    server::ServerSpec spec_;
    server::WaxConfig wax_;
    std::uint32_t first_;
    std::uint32_t count_;
    double inlet_temp_c_;
    std::uint32_t materialized_ = 0;
    std::unique_ptr<server::ServerModel> baseline_;
};

/**
 * Copy the evolving thermal state of one server model into another
 * of identical construction (enthalpies, PCM hysteresis, guard
 * counters, operating point).  The models must share (spec, wax).
 */
void copyServerState(const server::ServerModel &from,
                     server::ServerModel &to);

/**
 * Canonical digest of one row's evolving state: enthalpy vector, PCM
 * hysteresis latches and cycle count, and perturbation state.  Used
 * by the bit-identity tests/bench; identical for an aliased row and
 * a faithful materialized clone.
 */
std::uint64_t digestServerState(const server::ServerModel &model,
                                const RowPerturbState &pert,
                                std::uint64_t h = 0xcbf29ce484222325ULL);

} // namespace fleet
} // namespace tts

#endif // TTS_FLEET_ARENA_HH
