/**
 * @file
 * Per-server perturbation schedules for the fleet simulator.
 *
 * A warehouse fleet is *almost* homogeneous: most servers of one
 * platform archetype see the same load trace and the same cold-aisle
 * air, so their thermal trajectories are bit-identical and need to be
 * computed only once (tts::fleet's dedupe).  What breaks the symmetry
 * is a sparse stream of per-server perturbations - a hot spot drifts
 * an inlet sensor, a fan bank degrades, a scheduler pins extra load on
 * a rack.  This file models that stream: typed events, drawn from
 * per-server RNG sub-streams so the schedule is a pure function of
 * (seed, server id) - independent of shard width, thread count, and
 * iteration order.
 */

#ifndef TTS_FLEET_PERTURBATION_HH
#define TTS_FLEET_PERTURBATION_HH

#include <cstdint>
#include <vector>

namespace tts {
namespace fleet {

/** What a perturbation does to its server. */
enum class PerturbKind
{
    /** Persistent utilization offset (value: delta in [-1, 1]). */
    UtilizationDelta,
    /** Inlet air offset seen by the server (value: delta C). */
    InletDrift,
    /** Fan bank failure: frequency pinned to the DVFS floor. */
    FanFailure,
};

/** @return Stable dotted name, e.g. "perturb.util_delta". */
const char *perturbKindName(PerturbKind kind);

/** One perturbation event aimed at one server. */
struct PerturbEvent
{
    /** Simulated time the event fires (s). */
    double timeS = 0.0;
    /** Global server index. */
    std::uint32_t server = 0;
    PerturbKind kind = PerturbKind::UtilizationDelta;
    /** Kind-specific magnitude (see PerturbKind). */
    double value = 0.0;
};

/** Rate/magnitude model for generated schedules. */
struct PerturbationModel
{
    /**
     * Expected perturbation events per server per simulated day
     * (Poisson); 0 disables generation and keeps the fleet fully
     * deduplicated.
     */
    double eventsPerServerDay = 0.0;
    /** Std-dev of a UtilizationDelta draw. */
    double utilDeltaSigma = 0.08;
    /** Std-dev of an InletDrift draw (C). */
    double inletDriftSigmaC = 1.5;
    /**
     * Probability a drawn event is a FanFailure; the remainder splits
     * evenly between UtilizationDelta and InletDrift.
     */
    double fanFailureWeight = 0.2;
};

/**
 * Generate a deterministic perturbation schedule.
 *
 * Each server draws from its own Rng::forStream(seed, server)
 * sub-stream: event count ~ Poisson(rate * days), times uniform over
 * the horizon, kinds and magnitudes per the model.  Because draws are
 * keyed by server id - never by shard or worker - the schedule (and
 * therefore the whole fleet trajectory) is bit-identical at any shard
 * width and thread count.  The result is sorted by (time, server,
 * kind, value) so replay order is canonical.
 *
 * @param seed        Fleet seed.
 * @param server_count Fleet population.
 * @param duration_s  Horizon the events are drawn over (s).
 * @param model       Rates and magnitudes.
 */
std::vector<PerturbEvent> generatePerturbations(
    std::uint64_t seed, std::uint32_t server_count, double duration_s,
    const PerturbationModel &model);

/**
 * Canonical ordering used by generatePerturbations(); exposed so
 * callers appending hand-written events (tests, scenario drivers) can
 * restore the replay invariant with std::sort.
 */
bool perturbEventLess(const PerturbEvent &a, const PerturbEvent &b);

} // namespace fleet
} // namespace tts

#endif // TTS_FLEET_PERTURBATION_HH
