/**
 * @file
 * DVFS governor for thermally constrained operation (Section 5.2).
 *
 * In the paper's oversubscribed datacenter, servers are downclocked
 * to 1.6 GHz when the cluster would otherwise exceed the cooling
 * system's capacity.  The governor picks the highest frequency whose
 * wall power fits a per-server heat budget, falling back to the DVFS
 * floor.
 */

#ifndef TTS_SERVER_DVFS_HH
#define TTS_SERVER_DVFS_HH

#include "server/server_model.hh"

namespace tts {
namespace server {

/** Frequency decision made by the governor. */
struct DvfsDecision
{
    /** Chosen frequency (GHz). */
    double freqGHz;
    /** Wall power at the chosen operating point (W). */
    double wallPowerW;
    /** True if the budget forced a downclock below nominal. */
    bool throttled;
};

/**
 * Thermal-cap DVFS governor.
 */
class DvfsGovernor
{
  public:
    /**
     * @param spec Platform to govern.
     */
    explicit DvfsGovernor(const ServerSpec &spec);

    /**
     * Highest frequency such that the server's wall power at the
     * given utilization stays within the budget.  Falls back to the
     * DVFS floor when even that exceeds the budget (the paper's
     * behavior: clamp at 1.6 GHz and accept residual overrun, which
     * the wax or job relocation must cover).
     *
     * @param util           Utilization in [0, 1].
     * @param wall_budget_w  Per-server wall power budget (W).
     */
    DvfsDecision decide(double util, double wall_budget_w) const;

    /**
     * Wall power of the platform at an operating point (helper that
     * reuses the server power decomposition).
     */
    double wallPowerAt(double util, double freq_ghz) const;

  private:
    ServerSpec spec_;
    /** A throwaway model used purely for power evaluation. */
    mutable ServerModel probe_;
};

} // namespace server
} // namespace tts

#endif // TTS_SERVER_DVFS_HH
