#include "server/fan_model.hh"

#include "util/error.hh"

namespace tts {
namespace server {

double
FanBank::speedAt(double util) const
{
    require(util >= 0.0 && util <= 1.0,
            "FanBank::speedAt: util must be in [0, 1]");
    return idleSpeed + (loadSpeed - idleSpeed) * util;
}

double
FanBank::powerAt(double speed) const
{
    require(speed >= 0.0 && speed <= 1.0,
            "FanBank::powerAt: speed must be in [0, 1]");
    return static_cast<double>(count) * ratedPowerEachW *
        speed * speed * speed;
}

} // namespace server
} // namespace tts
