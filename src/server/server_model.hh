/**
 * @file
 * Executable model of one server: power decomposition + thermal
 * network + optional PCM charge.
 *
 * ServerModel is the per-platform equivalent of the paper's Icepak
 * server models (Figures 6, 8, 9): it assembles the thermal network
 * from a ServerSpec, computes the component power split for a given
 * (utilization, frequency) operating point, and steps the transient.
 * The wax can be real PCM, a placebo (empty aluminum boxes - the
 * validation control), or absent.
 */

#ifndef TTS_SERVER_SERVER_MODEL_HH
#define TTS_SERVER_SERVER_MODEL_HH

#include <memory>
#include <optional>
#include <vector>

#include "pcm/container.hh"
#include "pcm/material.hh"
#include "pcm/pcm_element.hh"
#include "server/server_spec.hh"
#include "thermal/network.hh"

namespace tts {
namespace server {

/** Wax deployment choice for a ServerModel. */
struct WaxConfig
{
    /** What sits in the wax bay. */
    enum class Mode
    {
        None,     //!< Stock server, empty bay.
        Placebo,  //!< Sealed boxes filled with air (control).
        Wax,      //!< Boxes filled with PCM.
    };

    Mode mode = Mode::None;
    /** PCM material (ignored for None/Placebo blockage purposes). */
    pcm::Material material = pcm::commercialParaffin();
    /** Wax volume (liters); <= 0 uses the spec default. */
    double liters = 0.0;
    /** Container count; 0 uses the spec default. */
    std::size_t boxCount = 0;
    /** Melting temperature (C); <= 0 uses the spec default. */
    double meltTempC = 0.0;
    /** Melt window width (C).  Narrow by default: a slab melting
     *  at a moving front absorbs at nearly constant temperature. */
    double meltWindowC = 0.5;
    /** Supercooling depth (C); 0 disables hysteresis. */
    double supercoolingC = 0.0;
    /**
     * Explicit container geometry; when set, boxCount boxes of this
     * shape are used instead of sizing against the blockage cap
     * (used e.g. for the 90 ml validation box of Section 3).
     */
    std::optional<pcm::BoxSpec> explicitBox;

    /** Stock server, no containers. */
    static WaxConfig none() { return {}; }
    /** Containers present but air-filled (validation control). */
    static WaxConfig placebo();
    /** The paper's deployment for the platform (spec defaults). */
    static WaxConfig paper();
    /** PCM with an explicit melting temperature (C). */
    static WaxConfig withMeltTemp(double melt_c);
    /** PCM with explicit volume (liters) and melting point. */
    static WaxConfig custom(double liters, double melt_c,
                            std::size_t boxes = 0);
};

/** A runnable server instance. */
class ServerModel
{
  public:
    /**
     * Build the server.
     *
     * @param spec Platform specification (copied).
     * @param wax  Wax bay contents.
     */
    explicit ServerModel(const ServerSpec &spec,
                         const WaxConfig &wax = WaxConfig::none());

    /**
     * Set the operating point.  Recomputes the component power split
     * and fan speed; takes effect on the next advance() or
     * solveSteadyState().
     *
     * @param util     Utilization in [0, 1].
     * @param freq_ghz Core frequency (GHz); <= 0 means nominal.
     */
    void setLoad(double util, double freq_ghz = 0.0);

    /** Advance the thermal state (s). */
    void advance(double dt_total, double dt_step = 1.0);

    /** Jump the thermal state to steady state at the current load. */
    void solveSteadyState();

    /** @return Current utilization. */
    double utilization() const { return util_; }
    /** @return Current frequency (GHz). */
    double frequency() const { return freq_; }

    /** @return Wall (AC) power at the current load (W). */
    double wallPower() const;
    /** @return DC power at the current load (W). */
    double dcPower() const;

    /**
     * @return Instantaneous heat rejected to the room air (W).  With
     * melting wax this is below wallPower(); while the wax freezes it
     * is above.
     */
    double coolingLoad() const;

    /**
     * @return Rate of heat being absorbed into server thermal mass,
     * wallPower() - coolingLoad() (W).
     */
    double heatStorageRate() const;

    /**
     * @return Relative throughput: utilization x frequency scale
     * (1.0 == fully loaded at nominal frequency).
     */
    double throughput() const;

    /** @return CPU lumped node (case/heatsink) temperature (C). */
    double cpuCaseTemp() const;
    /** @return CPU junction temperature (C). */
    double cpuJunctionTemp() const;
    /** @return Server outlet air temperature (C). */
    double outletTemp() const;
    /** @return Air temperature at the wax bay (C). */
    double waxBayAirTemp() const;

    /** @return True if the bay holds PCM (not placebo/none). */
    bool hasWax() const { return wax_ != nullptr; }
    /** @return Wax temperature (C); requires hasWax(). */
    double waxTemp() const;
    /** @return Wax melt fraction; requires hasWax(). */
    double waxMeltFraction() const;
    /** @return Wax stored energy above initial (J); 0 without wax. */
    double waxStoredEnergy() const;
    /** @return Wax latent capacity (J); 0 without wax. */
    double waxLatentCapacity() const;

    /** @return Duct blockage imposed by the bay contents. */
    double blockage() const;

    /** @return True if the bay holds anything (wax or placebo). */
    bool hasBay() const { return bay_node_ >= 0; }

    /**
     * @return Surface temperature of the bay contents (wax or
     * placebo box) (C); requires hasBay().
     */
    double bayNodeTemp() const;

    /** @return The platform spec. */
    const ServerSpec &spec() const { return spec_; }

    /** @return The thermal network (for tests and harnesses). */
    thermal::ServerThermalNetwork &network() { return *net_; }
    /** @return The thermal network. */
    const thermal::ServerThermalNetwork &network() const
    {
        return *net_;
    }

    /** @return The PCM element, or null. */
    pcm::PcmElement *wax() { return wax_.get(); }
    /** @return The PCM element, or null. */
    const pcm::PcmElement *wax() const { return wax_.get(); }

    /** @return Misc residual power at utilization u (W). */
    double miscPower(double util) const;

  private:
    void buildBay(const WaxConfig &cfg);
    void buildNetwork();

    ServerSpec spec_;
    WaxConfig wax_cfg_;
    std::optional<pcm::ContainerBank> bank_;
    std::unique_ptr<pcm::PcmElement> wax_;
    std::unique_ptr<thermal::ServerThermalNetwork> net_;
    int cpu_node_ = -1;
    int dram_node_ = -1;
    int front_node_ = -1;
    int psu_node_ = -1;
    int chassis_node_ = -1;
    int bay_node_ = -1;      //!< Wax or placebo node, or -1.
    double util_ = 0.0;
    double freq_ = 0.0;
    double misc_idle_w_ = 0.0;
    double misc_peak_w_ = 0.0;
    double bay_blockage_ = 0.0;
};

/**
 * Advance a batch of independent servers by the same interval.
 *
 * Thin wrapper over thermal::advanceNetworks(): serial on the caller
 * below four servers (a resilience arm's pair), deterministic
 * exec::ThreadPool fan-out above.  Bit-identical at any thread count.
 */
void advanceServers(const std::vector<ServerModel *> &servers,
                    double dt_total, double dt_step = 1.0);

} // namespace server
} // namespace tts

#endif // TTS_SERVER_SERVER_MODEL_HH
