/**
 * @file
 * Fan bank: speed policy and electrical power.
 *
 * The paper models fans "as a time-based step function between the
 * idle and loaded speeds"; we generalize slightly to a linear speed
 * ramp in utilization between the same two endpoints.  Electrical
 * power follows the cube law.
 */

#ifndef TTS_SERVER_FAN_MODEL_HH
#define TTS_SERVER_FAN_MODEL_HH

#include <cstddef>

namespace tts {
namespace server {

/** A bank of identical chassis fans. */
struct FanBank
{
    /** Number of fans. */
    std::size_t count;
    /** Rated electrical power per fan at full speed (W). */
    double ratedPowerEachW;
    /** Speed fraction when the server idles. */
    double idleSpeed;
    /** Speed fraction when the server is fully loaded. */
    double loadSpeed;

    /**
     * Speed fraction at the given utilization (linear between the
     * idle and load setpoints).
     *
     * @param util Server utilization in [0, 1].
     */
    double speedAt(double util) const;

    /**
     * Total electrical power at a speed fraction (W), cube law.
     */
    double powerAt(double speed) const;
};

} // namespace server
} // namespace tts

#endif // TTS_SERVER_FAN_MODEL_HH
