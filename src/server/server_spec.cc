#include "server/server_spec.hh"

#include "util/error.hh"

namespace tts {
namespace server {

thermal::FanCurve
ServerSpec::fanCurve() const
{
    // Build a linear fan curve from the calibration pair
    // (nominal flow, pressure) and the stiffness ratio r:
    //   Pmax = r * dP0, and the curve passes through (Q0, dP0),
    // so Qmax = Q0 * r / (r - 1).
    require(fanStiffness > 1.0,
            "ServerSpec: fan stiffness must exceed 1");
    thermal::FanCurve fan;
    fan.maxPressurePa = fanStiffness * refPressurePa;
    fan.maxFlowM3s = nominalFlowM3s * fanStiffness /
        (fanStiffness - 1.0);
    return fan;
}

thermal::AirflowModel
ServerSpec::makeAirflow() const
{
    return thermal::AirflowModel(fanCurve(), nominalFlowM3s,
                                 ductAreaM2);
}

double
ServerSpec::nominalVelocity() const
{
    return nominalFlowM3s / ductAreaM2;
}

void
ServerSpec::validate() const
{
    require(sockets >= 1, "ServerSpec: need at least one socket");
    require(cpu.peakPowerW > cpu.idlePowerW,
            "ServerSpec: CPU peak power must exceed idle");
    require(cpu.nominalFreqGHz > cpu.minFreqGHz,
            "ServerSpec: nominal frequency must exceed minimum");
    require(peakWallPowerW > idleWallPowerW,
            "ServerSpec: peak wall power must exceed idle");
    require(nominalFlowM3s > 0.0 && ductAreaM2 > 0.0,
            "ServerSpec: airflow calibration incomplete");
    require(fans.idleSpeed > 0.0 && fans.loadSpeed <= 1.0 &&
            fans.idleSpeed <= fans.loadSpeed,
            "ServerSpec: fan speed endpoints invalid");
    require(psu.ratedDcW > 0.0, "ServerSpec: PSU rating missing");
    require(waxBayPlume > 0.0 && waxBayPlume <= 1.0,
            "ServerSpec: wax bay plume fraction invalid");
    require(waxZone < ZoneCount, "ServerSpec: wax zone out of range");
    require(serversPerRack >= 1, "ServerSpec: servers per rack");
}

ServerSpec
rd330Spec()
{
    ServerSpec s;
    s.name = "1U Low Power (RD330)";
    s.rackUnits = 1.0;

    s.sockets = 2;
    s.coresPerSocket = 6;
    // Measured in the paper: 6 W idle -> 46 W per socket under load
    // at 2.4 GHz (TurboBoost off).  Downclock floor 1.6 GHz (the
    // thermally-constrained mode of Section 5.2).
    s.cpu = {6.0, 46.0, 2.4, 1.6};
    s.dram = {10, 1.0, 2.0};       // 10 DDR3 DIMMs, 144 GB total.
    s.hdd = {1, 4.0, 6.0};         // One 1 TB 2.5" drive.
    s.ssd = {0, 0.0, 0.0};
    s.fans = {6, 12.0, 0.50, 0.75};  // Six fans (17 W rated; ~12 W
                                     // electrical ceiling in practice).
    s.psu = {0.80, 0.90, 180.0};     // 80 % idle / 90 % load.

    // Measured at the wall: 90 W idle, 185 W fully loaded.
    s.idleWallPowerW = 90.0;
    s.peakWallPowerW = 185.0;

    s.nominalFlowM3s = 0.012;     // ~25 CFM at full speed.
    s.fanStiffness = 24.0;        // Six fans: robust to blockage.
    s.refPressurePa = 80.0;
    s.ductAreaM2 = 0.43 * 0.0445; // 1U interior cross-section.
    s.ductHeightM = 0.040;

    s.cpuNode = {1200.0, 3.4};    // Two sockets + heatsinks lumped.
    s.dramNode = {400.0, 2.0};
    s.frontNode = {900.0, 1.5};
    s.psuNode = {800.0, 1.8};
    s.chassisNode = {20000.0, 5.0};
    s.junctionResistance = 0.40;  // K/W per socket.
    s.waxBayPlume = 0.50;
    s.inletTempC = 25.0;

    s.waxLiters = 1.2;            // Figure 6: 1.2 l in the PCIe bay.
    s.waxBoxCount = 14;
    s.defaultMeltTempC = 52.5;
    s.waxZone = ZoneWaxBay;
    s.maxWaxBlockage = 0.70;      // Fig 7a: safe up to ~70 %.

    s.serverCostUsd = 2000.0;
    s.serversPerRack = 40;
    s.validate();
    return s;
}

ServerSpec
x4470Spec()
{
    ServerSpec s;
    s.name = "2U High Throughput (X4470)";
    s.rackUnits = 2.0;

    s.sockets = 4;
    s.coresPerSocket = 8;
    s.cpu = {12.0, 90.0, 2.4, 1.6};  // Four E7-4800 class sockets.
    s.dram = {8, 1.5, 3.0};          // 32 GB in 2 packages/socket.
    s.hdd = {2, 4.0, 6.0};
    s.ssd = {0, 0.0, 0.0};
    s.fans = {4, 30.0, 0.50, 0.80};
    s.psu = {0.80, 0.90, 550.0};

    // Paper: ~500 W per server after the PSU at peak; wall ~556 W.
    s.idleWallPowerW = 200.0;
    s.peakWallPowerW = 556.0;

    s.nominalFlowM3s = 0.040;
    s.fanStiffness = 10.0;        // Fig 7b: stable < 60 %, unsafe > 70 %.
    s.refPressurePa = 60.0;
    s.ductAreaM2 = 0.43 * 0.089;  // 2U interior cross-section.
    s.ductHeightM = 0.080;

    s.cpuNode = {2600.0, 8.0};    // Four sockets lumped.
    s.dramNode = {500.0, 2.5};
    s.frontNode = {1200.0, 2.0};
    s.psuNode = {1500.0, 3.0};
    s.chassisNode = {40000.0, 8.0};
    s.junctionResistance = 0.30;
    s.waxBayPlume = 0.55;
    s.inletTempC = 25.0;

    s.waxLiters = 4.0;            // Figure 8: four 1 l boxes.
    s.waxBoxCount = 10;
    s.defaultMeltTempC = 54.0;
    s.waxZone = ZoneWaxBay;
    s.maxWaxBlockage = 0.69;      // Paper: boxes block 69 %.

    s.serverCostUsd = 7000.0;
    s.serversPerRack = 20;
    s.validate();
    return s;
}

ServerSpec
openComputeSpec(OcpLayout layout)
{
    ServerSpec s;
    s.rackUnits = 0.5;            // 1U sub-half-width blade.

    s.sockets = 2;
    s.coresPerSocket = 6;
    s.cpu = {8.0, 70.0, 2.4, 1.6};
    s.dram = {4, 2.0, 4.0};       // 64 GB in 2 packages per socket.
    s.hdd = {4, 4.0, 6.0};        // Redundant 3.5" HDDs.
    s.ssd = {2, 6.0, 25.0};       // PCIe enterprise SSDs (hot!).
    s.fans = {1, 10.0, 0.60, 0.85};  // Per-blade share of 6 chassis
                                     // fans.
    s.psu = {0.88, 0.94, 320.0};     // High-efficiency shared PSU.

    // Paper: 100 W idle, at most 300 W per blade (before the PSU).
    s.idleWallPowerW = 100.0;
    s.peakWallPowerW = 300.0;

    s.nominalFlowM3s = 0.013;     // <200 LFM at the blade rear.
    s.fanStiffness = 1.8;         // Fig 7c: collapses immediately.
    s.refPressurePa = 30.0;
    s.ductAreaM2 = 0.013;
    s.ductHeightM = 0.060;

    s.cpuNode = {1100.0, 4.0};
    s.dramNode = {250.0, 1.2};
    s.frontNode = {1600.0, 2.2};  // Four HDDs up front.
    s.psuNode = {400.0, 1.0};
    s.chassisNode = {15000.0, 4.0};
    s.junctionResistance = 0.25;
    s.cpuZonePlume = 1.0;
    s.inletTempC = 27.0;          // OCP chassis run warmer.

    s.serverCostUsd = 4000.0;
    s.serversPerRack = 96;        // 24 blades per quarter-height
                                  // chassis, 4 chassis per rack.

    switch (layout) {
      case OcpLayout::Production:
        s.name = "Open Compute (production)";
        s.waxLiters = 0.0;
        s.waxBoxCount = 0;
        s.defaultMeltTempC = 0.0;
        s.waxZone = ZoneCpu;
        s.maxWaxBlockage = 0.0;
        s.waxBlockageOverride = 0.0;
        break;
      case OcpLayout::InhibitorWax:
        // Figure 9 (b): 0.5 l replacing the plastic air inhibitors
        // beside the CPUs; no added blockage.  The boxes sit at the
        // sockets' flanks, so they see a partially-mixed plume
        // (modeled by placing them just downwind with a milder plume
        // fraction than the future layout).
        s.name = "Open Compute (inhibitor wax)";
        s.waxLiters = 0.5;
        s.waxBoxCount = 2;
        s.defaultMeltTempC = 48.0;
        s.waxZone = ZoneWaxBay;
        s.maxWaxBlockage = 0.05;
        s.waxBlockageOverride = 0.0;
        break;
      case OcpLayout::FutureSsd:
        // Figure 9 (c): CPU/SSD swap plus HDD replacement yields
        // 1.5 l downwind of the sockets, same blockage as production.
        s.name = "Open Compute (future, 1.5l)";
        s.waxLiters = 1.5;
        s.waxBoxCount = 10;
        s.defaultMeltTempC = 57.5;
        s.waxZone = ZoneWaxBay;
        s.maxWaxBlockage = 0.05;
        s.waxBlockageOverride = 0.0;
        break;
    }
    s.waxBayPlume = 0.45;         // Strong plume behind the sockets
                                  // (68 C measured behind socket 2).
    s.validate();
    return s;
}

} // namespace server
} // namespace tts
