/**
 * @file
 * Complete specification of one server platform.
 *
 * A ServerSpec bundles everything the library needs to model a
 * platform: component power models, airflow calibration, thermal
 * network constants, wax-bay geometry, and economics.  Factories are
 * provided for the paper's three platforms:
 *
 *   - rd330Spec():       1U low-power commodity server (Lenovo
 *                        RD330; validated against hardware in the
 *                        paper).
 *   - x4470Spec():       2U high-throughput commodity server (Sun
 *                        X4470-class, four sockets).
 *   - openComputeSpec(): Microsoft Open Compute blade, in the three
 *                        layouts of Figure 9 (production, wax
 *                        replacing airflow inhibitors, and the
 *                        future SSD-swap layout with 1.5 l of wax).
 */

#ifndef TTS_SERVER_SERVER_SPEC_HH
#define TTS_SERVER_SERVER_SPEC_HH

#include <cstddef>
#include <string>

#include "server/cpu_model.hh"
#include "server/fan_model.hh"
#include "server/psu_model.hh"
#include "thermal/airflow.hh"

namespace tts {
namespace server {

/** Air zones of the canonical front-to-rear server layout. */
enum Zone : std::size_t
{
    ZoneFront = 0,   //!< Fans, drives, front panel.
    ZoneDram = 1,    //!< DIMM banks + spread motherboard load.
    ZoneCpu = 2,     //!< CPU sockets and heatsinks.
    ZoneWaxBay = 3,  //!< Downwind wax bay (vacant PCIe space).
    ZoneRear = 4,    //!< PSU and exhaust.
    ZoneCount = 5,
};

/** Open Compute blade layout variants (Figure 9 of the paper). */
enum class OcpLayout
{
    /** Production blade; plastic airflow inhibitors, no wax bay. */
    Production,
    /** Inhibitors replaced with 0.5 l of wax beside the CPUs. */
    InhibitorWax,
    /** CPU/SSD swap + HDDs replaced by SSDs; 1.5 l downwind. */
    FutureSsd,
};

/** One storage/memory style component population. */
struct ComponentBank
{
    std::size_t count = 0;
    double idleEachW = 0.0;
    double activeEachW = 0.0;

    /** Total power at utilization u (linear). */
    double power(double util) const
    {
        return static_cast<double>(count) *
            (idleEachW + (activeEachW - idleEachW) * util);
    }
};

/** Node thermal constants (capacity + convective coupling). */
struct NodeThermal
{
    /** Heat capacity (J/K). */
    double capacity;
    /** Convective conductance at the reference velocity (W/K). */
    double ua0;
};

/** Full platform specification. */
struct ServerSpec
{
    /** Platform name. */
    std::string name;
    /** Rack units occupied (0.5 for sub-half-width blades). */
    double rackUnits;

    /** @name Components */
    /// @{
    std::size_t sockets;
    std::size_t coresPerSocket;
    CpuPowerModel cpu;
    ComponentBank dram;
    ComponentBank hdd;
    ComponentBank ssd;
    FanBank fans;
    PsuModel psu;
    /// @}

    /** @name Published power envelope (wall side) */
    /// @{
    /** Wall power at idle (W); the misc residual is calibrated so
     *  the model reproduces this exactly. */
    double idleWallPowerW;
    /** Wall power at 100 % utilization, nominal frequency (W). */
    double peakWallPowerW;
    /// @}

    /** @name Airflow calibration */
    /// @{
    /** Volumetric flow at full fan speed, zero blockage (m^3/s). */
    double nominalFlowM3s;
    /** Fan pressure headroom r = Pmax / dP(nominal); larger means
     *  flow is more robust to blockage (Fig 7 shape knob). */
    double fanStiffness;
    /** Chassis pressure drop at the nominal flow (Pa). */
    double refPressurePa;
    /** Duct cross-section at the wax bay (m^2). */
    double ductAreaM2;
    /** Duct height at the wax bay (m). */
    double ductHeightM;
    /// @}

    /** @name Thermal network constants */
    /// @{
    NodeThermal cpuNode;      //!< All sockets lumped.
    NodeThermal dramNode;
    NodeThermal frontNode;    //!< Drives + front panel.
    NodeThermal psuNode;
    NodeThermal chassisNode;  //!< Slow chassis/motherboard mass.
    /** CPU junction-to-node thermal resistance (K/W per socket). */
    double junctionResistance;
    /** Plume mixing fraction at the wax bay. */
    double waxBayPlume;
    /** Plume mixing fraction at the CPU zone. */
    double cpuZonePlume = 1.0;
    /** Cold-aisle inlet temperature (C). */
    double inletTempC = 25.0;
    /// @}

    /** @name Wax deployment defaults */
    /// @{
    /** Wax volume the paper deploys in this platform (liters). */
    double waxLiters;
    /** Number of containers the charge is split across. */
    std::size_t waxBoxCount;
    /** Default melting temperature before optimization (C). */
    double defaultMeltTempC;
    /** Zone holding the wax. */
    std::size_t waxZone = ZoneWaxBay;
    /** Blockage cap for wax sizing (from the Fig 7 sweeps). */
    double maxWaxBlockage;
    /**
     * If >= 0, overrides the geometric blockage of the wax bank
     * (e.g. 0 for OCP layouts where wax replaces existing airflow
     * inhibitors).
     */
    double waxBlockageOverride = -1.0;
    /// @}

    /** @name Economics */
    /// @{
    /** Server capital cost (USD). */
    double serverCostUsd;
    /** Servers per rack. */
    std::size_t serversPerRack;
    /// @}

    /** @return The fan curve implied by the airflow calibration. */
    thermal::FanCurve fanCurve() const;

    /** @return A calibrated airflow model for this platform. */
    thermal::AirflowModel makeAirflow() const;

    /** @return Duct air velocity at full fan speed (m/s). */
    double nominalVelocity() const;

    /** Validate invariants; throws FatalError when inconsistent. */
    void validate() const;
};

/** 1U low power commodity server (validated platform). */
ServerSpec rd330Spec();

/** 2U high-throughput commodity server (four sockets). */
ServerSpec x4470Spec();

/** Microsoft Open Compute blade in the given layout. */
ServerSpec openComputeSpec(OcpLayout layout = OcpLayout::FutureSsd);

} // namespace server
} // namespace tts

#endif // TTS_SERVER_SERVER_SPEC_HH
