#include "server/psu_model.hh"

#include <algorithm>
#include <cmath>

#include "util/error.hh"

namespace tts {
namespace server {

double
PsuModel::efficiencyAt(double dc_w) const
{
    require(ratedDcW > 0.0, "PsuModel: rated DC power must be > 0");
    require(dc_w >= 0.0, "PsuModel: DC load must be >= 0");
    double frac = std::min(dc_w / ratedDcW, 1.0);
    return efficiencyIdle + frac * (efficiencyLoad - efficiencyIdle);
}

double
PsuModel::wallPower(double dc_w) const
{
    if (dc_w == 0.0)
        return 0.0;
    return dc_w / efficiencyAt(dc_w);
}

double
PsuModel::lossPower(double dc_w) const
{
    return wallPower(dc_w) - dc_w;
}

double
PsuModel::dcFromWall(double wall_w) const
{
    require(wall_w >= 0.0, "PsuModel: wall power must be >= 0");
    if (wall_w == 0.0)
        return 0.0;
    // Fixed point on dc = wall * eff(dc); converges because eff is a
    // mild function of dc.
    double dc = wall_w * efficiencyLoad;
    for (int i = 0; i < 50; ++i) {
        double next = wall_w * efficiencyAt(dc);
        if (std::abs(next - dc) < 1e-9)
            return next;
        dc = next;
    }
    return dc;
}

} // namespace server
} // namespace tts
