/**
 * @file
 * Power supply efficiency model.
 *
 * The paper's RD330 PSU runs at 80 % efficiency when idle and 90 %
 * under load; we model efficiency as piecewise-linear in the DC load
 * fraction and convert between wall (AC) and DC power.  PSU loss is
 * heat dissipated inside the chassis.
 */

#ifndef TTS_SERVER_PSU_MODEL_HH
#define TTS_SERVER_PSU_MODEL_HH

namespace tts {
namespace server {

/** AC/DC power supply with load-dependent efficiency. */
struct PsuModel
{
    /** Efficiency at (near-)zero DC load. */
    double efficiencyIdle = 0.80;
    /** Efficiency at rated DC load. */
    double efficiencyLoad = 0.90;
    /** Rated DC output (W). */
    double ratedDcW;

    /** @return Efficiency at the given DC load (W), clamped. */
    double efficiencyAt(double dc_w) const;

    /** @return Wall (AC input) power for a DC load (W). */
    double wallPower(double dc_w) const;

    /** @return Heat dissipated by the PSU at a DC load (W). */
    double lossPower(double dc_w) const;

    /**
     * @return DC power deliverable from the given wall power (W);
     * inverse of wallPower, solved by fixed point.
     */
    double dcFromWall(double wall_w) const;
};

} // namespace server
} // namespace tts

#endif // TTS_SERVER_PSU_MODEL_HH
