#include "server/server_model.hh"

#include <cmath>

#include "util/error.hh"
#include "util/units.hh"

namespace tts {
namespace server {

WaxConfig
WaxConfig::placebo()
{
    WaxConfig c;
    c.mode = Mode::Placebo;
    return c;
}

WaxConfig
WaxConfig::paper()
{
    WaxConfig c;
    c.mode = Mode::Wax;
    return c;
}

WaxConfig
WaxConfig::withMeltTemp(double melt_c)
{
    WaxConfig c;
    c.mode = Mode::Wax;
    c.meltTempC = melt_c;
    return c;
}

WaxConfig
WaxConfig::custom(double liters, double melt_c, std::size_t boxes)
{
    WaxConfig c;
    c.mode = Mode::Wax;
    c.liters = liters;
    c.meltTempC = melt_c;
    c.boxCount = boxes;
    return c;
}

ServerModel::ServerModel(const ServerSpec &spec, const WaxConfig &wax)
    : spec_(spec), wax_cfg_(wax)
{
    spec_.validate();
    buildBay(wax);
    buildNetwork();

    // Calibrate the misc residual so the modeled wall power matches
    // the published envelope exactly at both endpoints (the paper
    // lumps "motherboard, LEDs, I/O, etc." the same way).
    double dc_idle = spec_.psu.dcFromWall(spec_.idleWallPowerW);
    double dc_peak = spec_.psu.dcFromWall(spec_.peakWallPowerW);
    auto components = [this](double util) {
        double cpu = static_cast<double>(spec_.sockets) *
            spec_.cpu.power(util, spec_.cpu.nominalFreqGHz);
        return cpu + spec_.dram.power(util) + spec_.hdd.power(util) +
            spec_.ssd.power(util) +
            spec_.fans.powerAt(spec_.fans.speedAt(util));
    };
    misc_idle_w_ = dc_idle - components(0.0);
    misc_peak_w_ = dc_peak - components(1.0);
    require(misc_idle_w_ >= 0.0 && misc_peak_w_ >= 0.0,
            "ServerModel: component power exceeds the published wall "
            "power envelope; spec is inconsistent");

    setLoad(0.0);
    solveSteadyState();
}

void
ServerModel::buildBay(const WaxConfig &cfg)
{
    if (cfg.mode == WaxConfig::Mode::None)
        return;
    if (cfg.explicitBox) {
        std::size_t count = cfg.boxCount > 0 ? cfg.boxCount : 1;
        bank_ = pcm::ContainerBank(*cfg.explicitBox, count,
                                   spec_.ductAreaM2);
        bay_blockage_ = spec_.waxBlockageOverride >= 0.0
            ? spec_.waxBlockageOverride
            : bank_->blockageFraction();
        if (cfg.mode == WaxConfig::Mode::Wax) {
            double melt = cfg.meltTempC > 0.0
                ? cfg.meltTempC : spec_.defaultMeltTempC;
            wax_ = std::make_unique<pcm::PcmElement>(
                cfg.material, *bank_, melt, spec_.inletTempC,
                cfg.meltWindowC, cfg.supercoolingC);
        }
        return;
    }

    double liters = cfg.liters > 0.0 ? cfg.liters : spec_.waxLiters;
    std::size_t boxes =
        cfg.boxCount > 0 ? cfg.boxCount : spec_.waxBoxCount;
    if (liters <= 0.0 || boxes == 0)
        return;  // Platform has no wax bay (OCP production layout).

    // Size the bank against the platform's blockage cap.  When the
    // platform reuses existing inhibitor space (blockage override
    // >= 0) the cap only shapes the boxes, so use a generic geometric
    // cap instead of the platform's aerodynamic one.
    double cap = spec_.waxBlockageOverride >= 0.0
        ? 0.55
        : (spec_.maxWaxBlockage > 0.0 ? spec_.maxWaxBlockage : 0.35);
    bank_ = pcm::sizeBank(units::liters(liters), spec_.ductAreaM2,
                          spec_.ductHeightM, cap, boxes);
    bay_blockage_ = spec_.waxBlockageOverride >= 0.0
        ? spec_.waxBlockageOverride
        : bank_->blockageFraction();

    if (cfg.mode == WaxConfig::Mode::Wax) {
        double melt = cfg.meltTempC > 0.0 ? cfg.meltTempC
                                          : spec_.defaultMeltTempC;
        wax_ = std::make_unique<pcm::PcmElement>(
            cfg.material, *bank_, melt, spec_.inletTempC,
            cfg.meltWindowC, cfg.supercoolingC);
    }
}

void
ServerModel::buildNetwork()
{
    thermal::AirflowModel airflow = spec_.makeAirflow();
    airflow.setBlockage(bay_blockage_);
    net_ = std::make_unique<thermal::ServerThermalNetwork>(
        airflow, ZoneCount, spec_.inletTempC);

    // Reference all convective couplings to the platform's full-load
    // duct velocity so the spec's ua0 values are the effective
    // conductances at load.
    double vref = spec_.fans.speedAt(1.0) * spec_.nominalVelocity();
    auto coupling = [vref](const NodeThermal &n) {
        return thermal::ConvectiveCoupling{n.ua0, vref, 0.8};
    };

    double t0 = spec_.inletTempC;
    front_node_ = net_->addCapacityNode(
        "front", spec_.frontNode.capacity, coupling(spec_.frontNode),
        ZoneFront, t0);
    dram_node_ = net_->addCapacityNode(
        "dram", spec_.dramNode.capacity, coupling(spec_.dramNode),
        ZoneDram, t0);
    chassis_node_ = net_->addCapacityNode(
        "chassis", spec_.chassisNode.capacity,
        coupling(spec_.chassisNode), ZoneDram, t0);
    cpu_node_ = net_->addCapacityNode(
        "cpu", spec_.cpuNode.capacity, coupling(spec_.cpuNode),
        ZoneCpu, t0);
    psu_node_ = net_->addCapacityNode(
        "psu", spec_.psuNode.capacity, coupling(spec_.psuNode),
        ZoneRear, t0);

    // A little of the CPU heat conducts into the chassis sheet metal.
    net_->addConduction(cpu_node_, chassis_node_, 1.0);

    net_->setZonePlumeFraction(ZoneCpu, spec_.cpuZonePlume);
    net_->setZonePlumeFraction(spec_.waxZone, spec_.waxBayPlume);

    if (bank_) {
        if (wax_) {
            bay_node_ = net_->addPcmNode("wax", wax_.get(),
                                         spec_.waxZone);
        } else {
            // Placebo: air-filled boxes = shell heat capacity with
            // the same surface coupling and blockage.
            double cap = bank_->shellMass() *
                units::aluminumSpecificHeat;
            double v = net_->airflow().velocityAtBlockage();
            thermal::ConvectiveCoupling c{
                bank_->conductanceAt(v), std::max(v, 0.05), 0.8};
            bay_node_ = net_->addCapacityNode(
                "placebo", cap, c, spec_.waxZone, t0,
                thermal::VelocityRef::Constriction);
        }
    }
}

void
ServerModel::setLoad(double util, double freq_ghz)
{
    require(util >= 0.0 && util <= 1.0,
            "ServerModel::setLoad: util must be in [0, 1]");
    util_ = util;
    freq_ = freq_ghz > 0.0 ? spec_.cpu.clampFreq(freq_ghz)
                           : spec_.cpu.nominalFreqGHz;

    double cpu_total = static_cast<double>(spec_.sockets) *
        spec_.cpu.power(util_, freq_);
    double dram = spec_.dram.power(util_);
    double drives = spec_.hdd.power(util_) + spec_.ssd.power(util_);
    double fan_speed = spec_.fans.speedAt(util_);
    double fan_power = spec_.fans.powerAt(fan_speed);
    double misc = miscPower(util_);
    double dc = cpu_total + dram + drives + fan_power + misc;
    double psu_loss = spec_.psu.lossPower(dc);

    net_->airflow().setFanSpeed(fan_speed);
    net_->setNodePower(cpu_node_, cpu_total);
    net_->setNodePower(dram_node_, dram);
    net_->setNodePower(front_node_, drives);
    net_->setNodePower(chassis_node_, misc);
    net_->setNodePower(psu_node_, psu_loss);
    net_->setDirectAirPower(ZoneFront, fan_power);
}

void
ServerModel::advance(double dt_total, double dt_step)
{
    net_->advance(dt_total, dt_step);
}

void
advanceServers(const std::vector<ServerModel *> &servers,
               double dt_total, double dt_step)
{
    std::vector<thermal::ServerThermalNetwork *> nets;
    nets.reserve(servers.size());
    for (ServerModel *srv : servers) {
        require(srv != nullptr, "advanceServers: null server");
        nets.push_back(&srv->network());
    }
    thermal::advanceNetworks(nets, dt_total, dt_step);
}

void
ServerModel::solveSteadyState()
{
    net_->solveSteadyState();
}

double
ServerModel::miscPower(double util) const
{
    return misc_idle_w_ + (misc_peak_w_ - misc_idle_w_) * util;
}

double
ServerModel::dcPower() const
{
    double cpu_total = static_cast<double>(spec_.sockets) *
        spec_.cpu.power(util_, freq_);
    return cpu_total + spec_.dram.power(util_) +
        spec_.hdd.power(util_) + spec_.ssd.power(util_) +
        spec_.fans.powerAt(spec_.fans.speedAt(util_)) +
        miscPower(util_);
}

double
ServerModel::wallPower() const
{
    return spec_.psu.wallPower(dcPower());
}

double
ServerModel::coolingLoad() const
{
    return net_->airHeatRate();
}

double
ServerModel::heatStorageRate() const
{
    return wallPower() - coolingLoad();
}

double
ServerModel::throughput() const
{
    return util_ * spec_.cpu.throughputScale(freq_);
}

double
ServerModel::cpuCaseTemp() const
{
    return net_->nodeTemperature(cpu_node_);
}

double
ServerModel::cpuJunctionTemp() const
{
    double per_socket = spec_.cpu.power(util_, freq_);
    return cpuCaseTemp() + per_socket * spec_.junctionResistance;
}

double
ServerModel::outletTemp() const
{
    return net_->outletTemp();
}

double
ServerModel::waxBayAirTemp() const
{
    return net_->zoneAirTemp(spec_.waxZone);
}

double
ServerModel::waxTemp() const
{
    require(hasWax(), "ServerModel::waxTemp: no wax installed");
    return wax_->temperature();
}

double
ServerModel::waxMeltFraction() const
{
    require(hasWax(),
            "ServerModel::waxMeltFraction: no wax installed");
    return wax_->meltFraction();
}

double
ServerModel::waxStoredEnergy() const
{
    return hasWax() ? wax_->storedEnergy() : 0.0;
}

double
ServerModel::waxLatentCapacity() const
{
    return hasWax() ? wax_->latentCapacity() : 0.0;
}

double
ServerModel::blockage() const
{
    return bay_blockage_;
}

double
ServerModel::bayNodeTemp() const
{
    require(hasBay(), "ServerModel::bayNodeTemp: empty bay");
    return net_->nodeTemperature(bay_node_);
}

} // namespace server
} // namespace tts
