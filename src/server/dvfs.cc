#include "server/dvfs.hh"

#include "util/error.hh"

namespace tts {
namespace server {

DvfsGovernor::DvfsGovernor(const ServerSpec &spec)
    : spec_(spec), probe_(spec, WaxConfig::none())
{
}

double
DvfsGovernor::wallPowerAt(double util, double freq_ghz) const
{
    probe_.setLoad(util, freq_ghz);
    return probe_.wallPower();
}

DvfsDecision
DvfsGovernor::decide(double util, double wall_budget_w) const
{
    require(wall_budget_w > 0.0,
            "DvfsGovernor::decide: budget must be > 0");
    double nominal = spec_.cpu.nominalFreqGHz;
    double floor = spec_.cpu.minFreqGHz;
    if (wallPowerAt(util, nominal) <= wall_budget_w)
        return {nominal, wallPowerAt(util, nominal), false};
    if (wallPowerAt(util, floor) >= wall_budget_w)
        return {floor, wallPowerAt(util, floor), true};
    double lo = floor, hi = nominal;
    for (int i = 0; i < 50; ++i) {
        double mid = 0.5 * (lo + hi);
        if (wallPowerAt(util, mid) <= wall_budget_w)
            lo = mid;
        else
            hi = mid;
    }
    return {lo, wallPowerAt(util, lo), true};
}

} // namespace server
} // namespace tts
