/**
 * @file
 * CPU socket power model with DVFS scaling.
 *
 * Per-socket power is the standard linear-in-utilization model with
 * frequency/voltage scaling of the active component:
 *
 *     P(u, f) = P_idle + (P_peak - P_idle) * u * (f/f0) * (V(f)/V0)^2
 *
 * Throughput is proportional to frequency (the paper normalizes
 * cluster throughput to the downclocked peak, so only ratios matter).
 */

#ifndef TTS_SERVER_CPU_MODEL_HH
#define TTS_SERVER_CPU_MODEL_HH

namespace tts {
namespace server {

/** Per-socket CPU power/performance model. */
struct CpuPowerModel
{
    /** Idle power per socket (W). */
    double idlePowerW;
    /** Peak power per socket at nominal frequency, 100 % util (W). */
    double peakPowerW;
    /** Nominal frequency (GHz). */
    double nominalFreqGHz;
    /** Minimum DVFS frequency (GHz). */
    double minFreqGHz;
    /** Core voltage at the minimum frequency (relative). */
    double voltageAtMin = 0.80;
    /** Core voltage at the nominal frequency (relative). */
    double voltageAtNom = 1.00;

    /**
     * Relative core voltage at frequency f (linear between the DVFS
     * endpoints, clamped).
     */
    double voltageAt(double freq_ghz) const;

    /**
     * Per-socket power (W) at the given utilization and frequency.
     *
     * @param util     Utilization in [0, 1].
     * @param freq_ghz Frequency (GHz), clamped to the DVFS range.
     */
    double power(double util, double freq_ghz) const;

    /**
     * Throughput at frequency f relative to nominal (f / f0,
     * clamped to the DVFS range).
     */
    double throughputScale(double freq_ghz) const;

    /** Clamp a frequency to the DVFS range. */
    double clampFreq(double freq_ghz) const;

    /**
     * Largest frequency whose full-utilization power does not exceed
     * the given budget (W); returns minFreqGHz if even that exceeds
     * the budget.
     *
     * @param budget_w Power budget per socket (W).
     * @param util     Utilization the budget must hold at.
     */
    double maxFreqForPower(double budget_w, double util) const;
};

} // namespace server
} // namespace tts

#endif // TTS_SERVER_CPU_MODEL_HH
