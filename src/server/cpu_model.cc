#include "server/cpu_model.hh"

#include <algorithm>
#include <cmath>

#include "util/error.hh"

namespace tts {
namespace server {

double
CpuPowerModel::clampFreq(double freq_ghz) const
{
    return std::clamp(freq_ghz, minFreqGHz, nominalFreqGHz);
}

double
CpuPowerModel::voltageAt(double freq_ghz) const
{
    double f = clampFreq(freq_ghz);
    double span = nominalFreqGHz - minFreqGHz;
    if (span <= 0.0)
        return voltageAtNom;
    double t = (f - minFreqGHz) / span;
    return voltageAtMin + t * (voltageAtNom - voltageAtMin);
}

double
CpuPowerModel::power(double util, double freq_ghz) const
{
    require(util >= 0.0 && util <= 1.0,
            "CpuPowerModel::power: util must be in [0, 1]");
    double f = clampFreq(freq_ghz);
    double v = voltageAt(f) / voltageAtNom;
    double fscale = f / nominalFreqGHz;
    return idlePowerW +
        (peakPowerW - idlePowerW) * util * fscale * v * v;
}

double
CpuPowerModel::throughputScale(double freq_ghz) const
{
    return clampFreq(freq_ghz) / nominalFreqGHz;
}

double
CpuPowerModel::maxFreqForPower(double budget_w, double util) const
{
    require(util >= 0.0 && util <= 1.0,
            "CpuPowerModel::maxFreqForPower: util must be in [0, 1]");
    if (power(util, nominalFreqGHz) <= budget_w)
        return nominalFreqGHz;
    if (power(util, minFreqGHz) >= budget_w)
        return minFreqGHz;
    // Bisect: power is monotone in frequency.
    double lo = minFreqGHz, hi = nominalFreqGHz;
    for (int i = 0; i < 60; ++i) {
        double mid = 0.5 * (lo + hi);
        if (power(util, mid) <= budget_w)
            lo = mid;
        else
            hi = mid;
    }
    return lo;
}

} // namespace server
} // namespace tts
