/**
 * @file
 * Load balancing policies for the cluster simulator.
 *
 * The paper's DCSim uses round-robin; random and join-shortest-queue
 * are provided for comparison studies (round-robin's uniformity is
 * what justifies the representative-server scale-out model, and the
 * tests verify that property).
 */

#ifndef TTS_WORKLOAD_LOAD_BALANCER_HH
#define TTS_WORKLOAD_LOAD_BALANCER_HH

#include <cstddef>
#include <memory>
#include <vector>

#include "util/random.hh"

namespace tts {
namespace workload {

/** Abstract dispatch policy: pick a server for the next job. */
class LoadBalancer
{
  public:
    virtual ~LoadBalancer() = default;

    /**
     * Choose a server.
     *
     * @param queue_depths Jobs in service + queued, per server.
     * @return Server index.
     */
    virtual std::size_t pick(
        const std::vector<std::size_t> &queue_depths) = 0;

    /** @return Policy name. */
    virtual const char *name() const = 0;
};

/** Round-robin dispatch (the paper's policy). */
class RoundRobinBalancer : public LoadBalancer
{
  public:
    std::size_t pick(const std::vector<std::size_t> &depths) override
    {
        return depths.empty() ? 0 : (next_++ % depths.size());
    }
    const char *name() const override { return "round-robin"; }

  private:
    std::size_t next_ = 0;
};

/** Uniform random dispatch. */
class RandomBalancer : public LoadBalancer
{
  public:
    explicit RandomBalancer(std::uint64_t seed) : rng_(seed) {}
    std::size_t pick(const std::vector<std::size_t> &depths) override
    {
        return depths.empty() ? 0 : rng_.uniformInt(depths.size());
    }
    const char *name() const override { return "random"; }

  private:
    Rng rng_;
};

/** Join-shortest-queue dispatch. */
class LeastLoadedBalancer : public LoadBalancer
{
  public:
    std::size_t pick(const std::vector<std::size_t> &depths) override
    {
        std::size_t best = 0;
        for (std::size_t i = 1; i < depths.size(); ++i) {
            if (depths[i] < depths[best])
                best = i;
        }
        return best;
    }
    const char *name() const override { return "least-loaded"; }
};

} // namespace workload
} // namespace tts

#endif // TTS_WORKLOAD_LOAD_BALANCER_HH
