/**
 * @file
 * Load balancing policies for the cluster simulator.
 *
 * The paper's DCSim uses round-robin; random and join-shortest-queue
 * are provided for comparison studies (round-robin's uniformity is
 * what justifies the representative-server scale-out model, and the
 * tests verify that property).
 */

#ifndef TTS_WORKLOAD_LOAD_BALANCER_HH
#define TTS_WORKLOAD_LOAD_BALANCER_HH

#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/error.hh"
#include "util/random.hh"

namespace tts {
namespace workload {

/** Abstract dispatch policy: pick a server for the next job. */
class LoadBalancer
{
  public:
    virtual ~LoadBalancer() = default;

    /**
     * Choose a server.
     *
     * @param queue_depths Jobs in service + queued, per server.
     * @return Server index.
     */
    virtual std::size_t pick(
        const std::vector<std::size_t> &queue_depths) = 0;

    /** @return Policy name. */
    virtual const char *name() const = 0;

    /**
     * Append the policy's mutable state (cursor, RNG words) to
     * @p out as opaque 64-bit words for checkpointing.  Stateless
     * policies append nothing.
     */
    virtual void saveState(std::vector<std::uint64_t> &out) const
    {
        (void)out;
    }

    /**
     * Restore state written by saveState(), consuming words from
     * @p in starting at @p pos (advanced past what was consumed).
     */
    virtual void restoreState(const std::vector<std::uint64_t> &in,
                              std::size_t &pos)
    {
        (void)in;
        (void)pos;
    }
};

/** Round-robin dispatch (the paper's policy). */
class RoundRobinBalancer : public LoadBalancer
{
  public:
    std::size_t pick(const std::vector<std::size_t> &depths) override
    {
        return depths.empty() ? 0 : (next_++ % depths.size());
    }
    const char *name() const override { return "round-robin"; }

    void saveState(std::vector<std::uint64_t> &out) const override
    {
        out.push_back(next_);
    }
    void restoreState(const std::vector<std::uint64_t> &in,
                      std::size_t &pos) override
    {
        require(pos < in.size(), "round-robin: truncated state");
        next_ = static_cast<std::size_t>(in[pos++]);
    }

  private:
    std::size_t next_ = 0;
};

/** Uniform random dispatch. */
class RandomBalancer : public LoadBalancer
{
  public:
    explicit RandomBalancer(std::uint64_t seed) : rng_(seed) {}
    std::size_t pick(const std::vector<std::size_t> &depths) override
    {
        return depths.empty() ? 0 : rng_.uniformInt(depths.size());
    }
    const char *name() const override { return "random"; }

    void saveState(std::vector<std::uint64_t> &out) const override
    {
        Rng::State st = rng_.state();
        for (std::uint64_t word : st.s)
            out.push_back(word);
        out.push_back(st.haveSpare ? 1 : 0);
        out.push_back(std::bit_cast<std::uint64_t>(st.spare));
    }
    void restoreState(const std::vector<std::uint64_t> &in,
                      std::size_t &pos) override
    {
        require(pos + 6 <= in.size(), "random balancer: truncated state");
        Rng::State st;
        for (auto &word : st.s)
            word = in[pos++];
        st.haveSpare = in[pos++] != 0;
        st.spare = std::bit_cast<double>(in[pos++]);
        rng_.setState(st);
    }

  private:
    Rng rng_;
};

/** Join-shortest-queue dispatch. */
class LeastLoadedBalancer : public LoadBalancer
{
  public:
    std::size_t pick(const std::vector<std::size_t> &depths) override
    {
        std::size_t best = 0;
        for (std::size_t i = 1; i < depths.size(); ++i) {
            if (depths[i] < depths[best])
                best = i;
        }
        return best;
    }
    const char *name() const override { return "least-loaded"; }
};

} // namespace workload
} // namespace tts

#endif // TTS_WORKLOAD_LOAD_BALANCER_HH
