/**
 * @file
 * Workload trace file I/O.
 *
 * Lets operators feed their own measured load traces to the studies
 * instead of the synthetic generator, and round-trip generated
 * traces for plotting.  Format: CSV with a header line
 *
 *     t_hours,Orkut,Search,FBmr
 *
 * (class columns may appear in any order; an optional Total column
 * is ignored and recomputed).  Values are utilization fractions.
 */

#ifndef TTS_WORKLOAD_TRACE_IO_HH
#define TTS_WORKLOAD_TRACE_IO_HH

#include <iosfwd>
#include <string>

#include "workload/trace.hh"

namespace tts {
namespace workload {

/**
 * Parse a trace from a stream.
 *
 * @param in CSV input (header + rows).
 * @return The trace.
 * @throws FatalError on malformed input (bad header, non-numeric
 *         cells, non-increasing time, negative loads).
 */
WorkloadTrace readTraceCsv(std::istream &in);

/**
 * Load a trace from a file.
 *
 * @param path File path.
 */
WorkloadTrace loadTrace(const std::string &path);

/**
 * Write a trace to a stream as CSV (t_hours, one column per class,
 * Total).
 */
void writeTraceCsv(std::ostream &out, const WorkloadTrace &trace);

/** Save a trace to a file. */
void saveTrace(const std::string &path, const WorkloadTrace &trace);

} // namespace workload
} // namespace tts

#endif // TTS_WORKLOAD_TRACE_IO_HH
