#include "workload/dcsim.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <queue>

#include "util/error.hh"

namespace tts {
namespace workload {

namespace {

double
spreadOf(const std::vector<double> &utils)
{
    if (utils.empty())
        return 0.0;
    double mean = 0.0;
    for (double u : utils)
        mean += u;
    mean /= static_cast<double>(utils.size());
    double spread = 0.0;
    for (double u : utils)
        spread = std::max(spread, std::abs(u - mean));
    return spread;
}

} // namespace

double
DcSimResult::utilizationSpread() const
{
    return spreadOf(perServerUtilization);
}

double
DcSimResult::rackUtilizationSpread() const
{
    return spreadOf(perRackUtilization);
}

ClusterSim::ClusterSim(const DcSimConfig &config,
                       std::unique_ptr<LoadBalancer> balancer)
    : config_(config), balancer_(std::move(balancer))
{
    require(config_.serverCount >= 1, "ClusterSim: need servers");
    require(config_.slotsPerServer >= 1, "ClusterSim: need slots");
    require(config_.meanServiceTimeS > 0.0,
            "ClusterSim: mean service time must be > 0");
    require(config_.statsIntervalS > 0.0,
            "ClusterSim: stats interval must be > 0");
    if (!balancer_)
        balancer_ = std::make_unique<RoundRobinBalancer>();
}

namespace {

/** Departure event in the global heap. */
struct Departure
{
    double time;
    std::size_t server;
    std::uint64_t job_id;

    bool operator>(const Departure &o) const { return time > o.time; }
};

/** Per-server state. */
struct ServerState
{
    std::size_t busy = 0;                 //!< Occupied slots.
    std::deque<Job> queue;                //!< Waiting jobs.
    double busy_integral = 0.0;           //!< Slot-seconds served.
    double last_update = 0.0;

    void
    accumulate(double now)
    {
        busy_integral += static_cast<double>(busy) *
            (now - last_update);
        last_update = now;
    }
};

} // namespace

DcSimResult
ClusterSim::run(const WorkloadTrace &trace)
{
    require(trace.size() >= 2, "ClusterSim::run: trace too short");
    const double t0 = trace.startTime();
    const double t1 = trace.endTime();
    const std::size_t n_servers = config_.serverCount;
    const double slots = static_cast<double>(config_.slotsPerServer);
    const double capacity =
        static_cast<double>(n_servers) * slots /
        config_.meanServiceTimeS;  // jobs/s at util == 1.

    Rng rng(config_.seed);
    std::vector<ServerState> servers(n_servers);
    for (auto &s : servers)
        s.last_update = t0;
    std::priority_queue<Departure, std::vector<Departure>,
                        std::greater<>> departures;
    std::vector<std::size_t> depths(n_servers, 0);

    DcSimResult result;
    result.clusterUtilization.setName("cluster_util");
    result.throughput.setName("throughput_jobs_per_s");

    // Latency tracking: jobs in flight, keyed implicitly by keeping
    // arrival time inside the Job; map id -> arrival via a vector is
    // avoided by storing arrival time in the departure record's
    // service bookkeeping below.
    struct InFlight
    {
        double arrival;
        JobClass job_class;
    };
    std::vector<InFlight> inflight;
    std::vector<std::size_t> free_ids;
    auto alloc_id = [&](double arrival, JobClass c) {
        if (!free_ids.empty()) {
            std::size_t id = free_ids.back();
            free_ids.pop_back();
            inflight[id] = {arrival, c};
            return id;
        }
        inflight.push_back({arrival, c});
        return inflight.size() - 1;
    };

    auto class_at = [&](double t) {
        // Sample a job class from the trace mix at time t.
        double shares[jobClassCount];
        double total = 0.0;
        for (std::size_t i = 0; i < jobClassCount; ++i) {
            shares[i] = trace.classAt(allJobClasses[i], t);
            total += shares[i];
        }
        if (total <= 0.0)
            return allJobClasses[0];
        double u = rng.uniform() * total;
        for (std::size_t i = 0; i < jobClassCount; ++i) {
            if (u < shares[i])
                return allJobClasses[i];
            u -= shares[i];
        }
        return allJobClasses[jobClassCount - 1];
    };

    auto start_job = [&](std::size_t sv, double now,
                         std::uint64_t id) {
        servers[sv].accumulate(now);
        ++servers[sv].busy;
        double service = rng.exponential(
            1.0 / config_.meanServiceTimeS);
        departures.push({now + service, sv, id});
    };

    // Thinning-based non-homogeneous Poisson arrivals: draw at the
    // peak rate and accept with probability lambda(t) / lambda_max.
    const double peak_util = std::max(trace.peak(), 1e-6);
    const double lambda_max = peak_util * capacity;

    double next_arrival = t0 + rng.exponential(lambda_max);
    double next_stats = t0 + config_.statsIntervalS;
    std::uint64_t completed_window = 0;

    auto record_stats = [&](double now) {
        double busy_total = 0.0;
        for (auto &s : servers) {
            s.accumulate(now);
            busy_total += static_cast<double>(s.busy);
        }
        double util = busy_total /
            (static_cast<double>(n_servers) * slots);
        result.clusterUtilization.append(now, util);
        result.throughput.append(
            now, static_cast<double>(completed_window) /
                     config_.statsIntervalS);
        completed_window = 0;
    };

    while (true) {
        double next_departure = departures.empty()
            ? std::numeric_limits<double>::infinity()
            : departures.top().time;
        double now = std::min({next_arrival, next_departure,
                               next_stats});
        if (now > t1)
            break;

        if (now == next_stats) {
            record_stats(now);
            next_stats += config_.statsIntervalS;
            continue;
        }
        if (now == next_departure) {
            Departure d = departures.top();
            departures.pop();
            ServerState &sv = servers[d.server];
            sv.accumulate(now);
            --sv.busy;
            --depths[d.server];
            ++result.completedJobs;
            ++completed_window;
            const InFlight &f = inflight[d.job_id];
            result.latency.add(now - f.arrival);
            for (std::size_t i = 0; i < jobClassCount; ++i) {
                if (allJobClasses[i] == f.job_class)
                    ++result.completedByClass[i];
            }
            free_ids.push_back(d.job_id);
            if (!sv.queue.empty()) {
                // The queued job was already counted in depths at
                // arrival; it stays in the system, so no increment.
                Job j = sv.queue.front();
                sv.queue.pop_front();
                start_job(d.server, now, j.id);
            }
            continue;
        }

        // Arrival (possibly thinned away).
        next_arrival = now + rng.exponential(lambda_max);
        double lambda = trace.totalAt(now) * capacity;
        if (rng.uniform() * lambda_max > lambda)
            continue;
        ++result.offeredJobs;
        std::size_t sv = balancer_->pick(depths);
        ServerState &state = servers[sv];
        std::uint64_t id = alloc_id(now, class_at(now));
        if (state.busy < config_.slotsPerServer) {
            ++depths[sv];
            start_job(sv, now, id);
        } else if (state.queue.size() < config_.queueCapPerServer) {
            ++depths[sv];
            state.queue.push_back(Job{id, inflight[id].job_class,
                                      now, 0.0});
            result.maxQueueDepth =
                std::max(result.maxQueueDepth, state.queue.size());
        } else {
            ++result.droppedJobs;
            free_ids.push_back(id);
        }
    }

    result.perServerUtilization.resize(n_servers);
    for (std::size_t i = 0; i < n_servers; ++i) {
        servers[i].accumulate(t1);
        result.perServerUtilization[i] =
            servers[i].busy_integral / ((t1 - t0) * slots);
        result.residualJobs +=
            servers[i].busy + servers[i].queue.size();
    }

    // Rack-level aggregation (the paper's DCSim models the server,
    // rack, and cluster levels).
    std::size_t per_rack = std::max<std::size_t>(
        config_.serversPerRack, 1);
    for (std::size_t start = 0; start < n_servers;
         start += per_rack) {
        std::size_t end = std::min(start + per_rack, n_servers);
        double mean = 0.0;
        for (std::size_t i = start; i < end; ++i)
            mean += result.perServerUtilization[i];
        result.perRackUtilization.push_back(
            mean / static_cast<double>(end - start));
    }
    return result;
}

} // namespace workload
} // namespace tts
