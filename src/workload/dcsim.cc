#include "workload/dcsim.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <queue>

#include "fault/fault_schedule.hh"
#include "util/error.hh"

namespace tts {
namespace workload {

namespace {

double
spreadOf(const std::vector<double> &utils)
{
    if (utils.empty())
        return 0.0;
    double mean = 0.0;
    for (double u : utils)
        mean += u;
    mean /= static_cast<double>(utils.size());
    double spread = 0.0;
    for (double u : utils)
        spread = std::max(spread, std::abs(u - mean));
    return spread;
}

} // namespace

double
DcSimResult::utilizationSpread() const
{
    return spreadOf(perServerUtilization);
}

double
DcSimResult::rackUtilizationSpread() const
{
    return spreadOf(perRackUtilization);
}

ClusterSim::ClusterSim(const DcSimConfig &config,
                       std::unique_ptr<LoadBalancer> balancer)
    : config_(config), balancer_(std::move(balancer))
{
    require(config_.serverCount >= 1, "ClusterSim: need servers");
    require(config_.slotsPerServer >= 1, "ClusterSim: need slots");
    require(config_.meanServiceTimeS > 0.0,
            "ClusterSim: mean service time must be > 0");
    require(config_.statsIntervalS > 0.0,
            "ClusterSim: stats interval must be > 0");
    if (!balancer_)
        balancer_ = std::make_unique<RoundRobinBalancer>();
}

namespace {

/** Departure event in the global heap. */
struct Departure
{
    double time;
    std::size_t server;
    std::uint64_t job_id;
    /** Server incarnation the job started under; a crash bumps the
     *  server's epoch so stale departures are discarded instead of
     *  being credited to the dead (or reborn) server. */
    std::uint64_t epoch;

    bool operator>(const Departure &o) const { return time > o.time; }
};

/** Per-server state. */
struct ServerState
{
    std::size_t busy = 0;                 //!< Occupied slots.
    std::deque<Job> queue;                //!< Waiting jobs.
    double busy_integral = 0.0;           //!< Slot-seconds served.
    double last_update = 0.0;

    void
    accumulate(double now)
    {
        busy_integral += static_cast<double>(busy) *
            (now - last_update);
        last_update = now;
    }
};

} // namespace

DcSimResult
ClusterSim::run(const WorkloadTrace &trace)
{
    return run(trace, nullptr);
}

DcSimResult
ClusterSim::run(const WorkloadTrace &trace,
                const fault::FaultSchedule *faults)
{
    require(trace.size() >= 2, "ClusterSim::run: trace too short");
    const double t0 = trace.startTime();
    const double t1 = trace.endTime();
    const std::size_t n_servers = config_.serverCount;
    const double slots = static_cast<double>(config_.slotsPerServer);
    const double capacity =
        static_cast<double>(n_servers) * slots /
        config_.meanServiceTimeS;  // jobs/s at util == 1.

    Rng rng(config_.seed);
    std::vector<ServerState> servers(n_servers);
    for (auto &s : servers)
        s.last_update = t0;
    std::priority_queue<Departure, std::vector<Departure>,
                        std::greater<>> departures;
    std::vector<std::size_t> depths(n_servers, 0);

    DcSimResult result;
    result.clusterUtilization.setName("cluster_util");
    result.throughput.setName("throughput_jobs_per_s");
    result.completedByServer.assign(n_servers, 0);

    // Fault state: alive/epoch per server, plus the schedule cursor.
    // The epoch is bumped on every crash so departures of killed
    // jobs (already counted dropped) are discarded when they pop.
    static const std::vector<fault::FaultEvent> no_events;
    const auto &events = faults ? faults->events() : no_events;
    for (const auto &e : events) {
        if (fault::kindTargetsServer(e.kind))
            require(e.target < n_servers,
                    "ClusterSim::run: fault targets server " +
                        std::to_string(e.target) +
                        " but the cluster has " +
                        std::to_string(n_servers));
    }
    std::size_t next_fault = 0;
    std::vector<bool> alive(n_servers, true);
    std::vector<std::uint64_t> epoch(n_servers, 0);
    std::size_t alive_count = n_servers;
    int gap_depth = 0;
    std::vector<std::size_t> alive_idx, alive_depths;

    // Latency tracking: jobs in flight, keyed implicitly by keeping
    // arrival time inside the Job; map id -> arrival via a vector is
    // avoided by storing arrival time in the departure record's
    // service bookkeeping below.
    struct InFlight
    {
        double arrival;
        JobClass job_class;
    };
    std::vector<InFlight> inflight;
    std::vector<std::size_t> free_ids;
    auto alloc_id = [&](double arrival, JobClass c) {
        if (!free_ids.empty()) {
            std::size_t id = free_ids.back();
            free_ids.pop_back();
            inflight[id] = {arrival, c};
            return id;
        }
        inflight.push_back({arrival, c});
        return inflight.size() - 1;
    };

    auto class_at = [&](double t) {
        // Sample a job class from the trace mix at time t.
        double shares[jobClassCount];
        double total = 0.0;
        for (std::size_t i = 0; i < jobClassCount; ++i) {
            shares[i] = trace.classAt(allJobClasses[i], t);
            total += shares[i];
        }
        if (total <= 0.0)
            return allJobClasses[0];
        double u = rng.uniform() * total;
        for (std::size_t i = 0; i < jobClassCount; ++i) {
            if (u < shares[i])
                return allJobClasses[i];
            u -= shares[i];
        }
        return allJobClasses[jobClassCount - 1];
    };

    auto start_job = [&](std::size_t sv, double now,
                         std::uint64_t id) {
        servers[sv].accumulate(now);
        ++servers[sv].busy;
        double service = rng.exponential(
            1.0 / config_.meanServiceTimeS);
        departures.push({now + service, sv, id, epoch[sv]});
    };

    // Apply every fault event with time <= t.  A crash destroys the
    // target's running and queued jobs (graceful degradation: the
    // balancer routes later arrivals around the corpse); a recovery
    // returns it empty.  Thermal-side kinds are no-ops here.
    auto apply_faults_to = [&](double t) {
        while (next_fault < events.size() &&
               events[next_fault].timeS <= t) {
            const fault::FaultEvent &e = events[next_fault];
            ++next_fault;
            ++result.faultEventsApplied;
            switch (e.kind) {
              case fault::FaultKind::ServerCrash: {
                if (!alive[e.target])
                    break;
                ServerState &sv = servers[e.target];
                sv.accumulate(t);
                std::uint64_t lost =
                    sv.busy +
                    static_cast<std::uint64_t>(sv.queue.size());
                result.droppedJobs += lost;
                result.crashKilledJobs += lost;
                // Queued jobs free their latency slots now; running
                // jobs free theirs when their stale departure pops.
                for (const Job &j : sv.queue)
                    free_ids.push_back(j.id);
                sv.queue.clear();
                sv.busy = 0;
                depths[e.target] = 0;
                ++epoch[e.target];
                alive[e.target] = false;
                --alive_count;
                break;
              }
              case fault::FaultKind::ServerRecover:
                if (!alive[e.target]) {
                    alive[e.target] = true;
                    ++alive_count;
                }
                break;
              case fault::FaultKind::TraceGapStart:
                ++gap_depth;
                break;
              case fault::FaultKind::TraceGapEnd:
                gap_depth = std::max(0, gap_depth - 1);
                break;
              default:
                break; // Thermal-side kinds.
            }
        }
    };
    apply_faults_to(t0);

    // Thinning-based non-homogeneous Poisson arrivals: draw at the
    // peak rate and accept with probability lambda(t) / lambda_max.
    const double peak_util = std::max(trace.peak(), 1e-6);
    const double lambda_max = peak_util * capacity;

    double next_arrival = t0 + rng.exponential(lambda_max);
    double next_stats = t0 + config_.statsIntervalS;
    std::uint64_t completed_window = 0;

    auto record_stats = [&](double now) {
        double busy_total = 0.0;
        for (auto &s : servers) {
            s.accumulate(now);
            busy_total += static_cast<double>(s.busy);
        }
        double util = busy_total /
            (static_cast<double>(n_servers) * slots);
        result.clusterUtilization.append(now, util);
        result.throughput.append(
            now, static_cast<double>(completed_window) /
                     config_.statsIntervalS);
        completed_window = 0;
    };

    while (true) {
        double next_departure = departures.empty()
            ? std::numeric_limits<double>::infinity()
            : departures.top().time;
        double next_fault_t = next_fault < events.size()
            ? events[next_fault].timeS
            : std::numeric_limits<double>::infinity();
        double now = std::min({next_arrival, next_departure,
                               next_stats, next_fault_t});
        if (now > t1)
            break;

        if (now == next_fault_t) {
            // Faults win ties: a crash coinciding with a departure
            // kills the job rather than completing it.
            apply_faults_to(now);
            continue;
        }
        if (now == next_stats) {
            record_stats(now);
            next_stats += config_.statsIntervalS;
            continue;
        }
        if (now == next_departure) {
            Departure d = departures.top();
            departures.pop();
            if (d.epoch != epoch[d.server]) {
                // The job died with its server; it was counted as
                // dropped at crash time - just recycle its slot.
                free_ids.push_back(d.job_id);
                continue;
            }
            ServerState &sv = servers[d.server];
            sv.accumulate(now);
            --sv.busy;
            --depths[d.server];
            ++result.completedJobs;
            ++result.completedByServer[d.server];
            ++completed_window;
            const InFlight &f = inflight[d.job_id];
            result.latency.add(now - f.arrival);
            for (std::size_t i = 0; i < jobClassCount; ++i) {
                if (allJobClasses[i] == f.job_class)
                    ++result.completedByClass[i];
            }
            free_ids.push_back(d.job_id);
            if (!sv.queue.empty()) {
                // The queued job was already counted in depths at
                // arrival; it stays in the system, so no increment.
                Job j = sv.queue.front();
                sv.queue.pop_front();
                start_job(d.server, now, j.id);
            }
            continue;
        }

        // Arrival (possibly thinned away).
        next_arrival = now + rng.exponential(lambda_max);
        if (gap_depth > 0)
            continue; // Trace dark: the job is never offered.
        double lambda = trace.totalAt(now) * capacity;
        if (rng.uniform() * lambda_max > lambda)
            continue;
        ++result.offeredJobs;
        if (alive_count == 0) {
            ++result.droppedJobs;
            ++result.rejectedNoAliveServer;
            continue;
        }
        std::size_t sv;
        if (alive_count == n_servers) {
            sv = balancer_->pick(depths);
        } else {
            // Re-dispatch around dead servers: offer the balancer
            // the compacted alive view and map its pick back.
            alive_idx.clear();
            alive_depths.clear();
            for (std::size_t i = 0; i < n_servers; ++i) {
                if (alive[i]) {
                    alive_idx.push_back(i);
                    alive_depths.push_back(depths[i]);
                }
            }
            sv = alive_idx[balancer_->pick(alive_depths)];
        }
        ServerState &state = servers[sv];
        std::uint64_t id = alloc_id(now, class_at(now));
        if (state.busy < config_.slotsPerServer) {
            ++depths[sv];
            start_job(sv, now, id);
        } else if (state.queue.size() < config_.queueCapPerServer) {
            ++depths[sv];
            state.queue.push_back(Job{id, inflight[id].job_class,
                                      now, 0.0});
            result.maxQueueDepth =
                std::max(result.maxQueueDepth, state.queue.size());
        } else {
            ++result.droppedJobs;
            free_ids.push_back(id);
        }
    }

    result.perServerUtilization.resize(n_servers);
    for (std::size_t i = 0; i < n_servers; ++i) {
        servers[i].accumulate(t1);
        result.perServerUtilization[i] =
            servers[i].busy_integral / ((t1 - t0) * slots);
        result.residualJobs +=
            servers[i].busy + servers[i].queue.size();
    }

    // Rack-level aggregation (the paper's DCSim models the server,
    // rack, and cluster levels).
    std::size_t per_rack = std::max<std::size_t>(
        config_.serversPerRack, 1);
    for (std::size_t start = 0; start < n_servers;
         start += per_rack) {
        std::size_t end = std::min(start + per_rack, n_servers);
        double mean = 0.0;
        for (std::size_t i = start; i < end; ++i)
            mean += result.perServerUtilization[i];
        result.perRackUtilization.push_back(
            mean / static_cast<double>(end - start));
    }
    return result;
}

} // namespace workload
} // namespace tts
