#include "workload/dcsim.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <functional>
#include <limits>

#include "fault/fault_schedule.hh"
#include "guard/checkpoint.hh"
#include "obs/obs.hh"
#include "util/error.hh"

namespace tts {
namespace workload {

namespace {

double
spreadOf(const std::vector<double> &utils)
{
    if (utils.empty())
        return 0.0;
    double mean = 0.0;
    for (double u : utils)
        mean += u;
    mean /= static_cast<double>(utils.size());
    double spread = 0.0;
    for (double u : utils)
        spread = std::max(spread, std::abs(u - mean));
    return spread;
}

} // namespace

double
DcSimResult::utilizationSpread() const
{
    return spreadOf(perServerUtilization);
}

double
DcSimResult::rackUtilizationSpread() const
{
    return spreadOf(perRackUtilization);
}

ClusterSim::ClusterSim(const DcSimConfig &config,
                       std::unique_ptr<LoadBalancer> balancer)
    : config_(config), balancer_(std::move(balancer))
{
    require(config_.serverCount >= 1, "ClusterSim: need servers");
    require(config_.slotsPerServer >= 1, "ClusterSim: need slots");
    require(config_.meanServiceTimeS > 0.0,
            "ClusterSim: mean service time must be > 0");
    require(config_.statsIntervalS > 0.0,
            "ClusterSim: stats interval must be > 0");
    if (!balancer_)
        balancer_ = std::make_unique<RoundRobinBalancer>();
}

namespace {

/** Departure event in the global heap. */
struct Departure
{
    double time;
    std::size_t server;
    std::uint64_t job_id;
    /** Server incarnation the job started under; a crash bumps the
     *  server's epoch so stale departures are discarded instead of
     *  being credited to the dead (or reborn) server. */
    std::uint64_t epoch;

    bool operator>(const Departure &o) const { return time > o.time; }
};

/** Per-server state. */
struct ServerState
{
    std::size_t busy = 0;                 //!< Occupied slots.
    std::deque<Job> queue;                //!< Waiting jobs.
    double busy_integral = 0.0;           //!< Slot-seconds served.
    double last_update = 0.0;

    void
    accumulate(double now)
    {
        busy_integral += static_cast<double>(busy) *
            (now - last_update);
        last_update = now;
    }
};

/** Latency bookkeeping for a job in the system. */
struct InFlight
{
    double arrival;
    JobClass job_class;
};

const std::vector<fault::FaultEvent> &
eventsOf(const fault::FaultSchedule *faults)
{
    static const std::vector<fault::FaultEvent> no_events;
    return faults ? faults->events() : no_events;
}

const WorkloadTrace &
checkedTrace(const WorkloadTrace &trace)
{
    require(trace.size() >= 2, "ClusterSim::run: trace too short");
    return trace;
}

/** Restore a TimeSeries by re-appending checkpointed samples. */
void
restoreSeries(TimeSeries &series, const std::vector<double> &times,
              const std::vector<double> &values,
              const std::string &what)
{
    require(times.size() == values.size(),
            what + ": times/values length mismatch");
    for (std::size_t i = 0; i < times.size(); ++i)
        series.append(times[i], values[i]);
}

} // namespace

/**
 * All event-loop state as members.  The departure heap is a plain
 * vector managed with std::push_heap/std::pop_heap (the same
 * algorithms std::priority_queue uses, hence the same layout and the
 * same pop order) so it can be serialized verbatim and restored
 * bit-identically.
 */
struct ClusterSimEngine::Impl
{
    DcSimConfig config;
    LoadBalancer *balancer;
    const WorkloadTrace &trace;
    const std::vector<fault::FaultEvent> &events;

    double t0, t1;
    double slots, capacity, lambda_max;

    Rng rng;
    std::vector<ServerState> servers;
    std::vector<Departure> departures;    //!< Min-heap by time.
    std::vector<std::size_t> depths;
    DcSimResult result;
    std::size_t next_fault = 0;
    std::vector<bool> alive;
    std::vector<std::uint64_t> epoch;
    std::size_t alive_count;
    int gap_depth = 0;
    std::vector<std::size_t> alive_idx, alive_depths;
    std::vector<InFlight> inflight;
    std::vector<std::size_t> free_ids;
    double next_arrival;
    double next_stats;
    std::uint64_t completed_window = 0;
    bool done = false;
    bool taken = false;

    // Cached metrics instruments (registry references are stable, so
    // the hot path pays one relaxed add, no lookup).  Bumped only
    // when collection is enabled; they mirror the DcSimResult
    // counters live, across every engine in the process.
    obs::Counter &obs_offered =
        obs::registry().counter("dcsim.jobs.offered");
    obs::Counter &obs_completed =
        obs::registry().counter("dcsim.jobs.completed");
    obs::Counter &obs_dropped =
        obs::registry().counter("dcsim.jobs.dropped");
    obs::Counter &obs_crash_killed =
        obs::registry().counter("dcsim.jobs.crash_killed");
    obs::Counter &obs_faults =
        obs::registry().counter("dcsim.fault.applied");
    obs::HistogramCell &obs_depth = obs::registry().histogram(
        "dcsim.queue.depth",
        {0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0});

    Impl(const DcSimConfig &cfg, LoadBalancer *lb,
         const WorkloadTrace &tr, const fault::FaultSchedule *faults)
        : config(cfg), balancer(lb), trace(checkedTrace(tr)),
          events(eventsOf(faults)), t0(trace.startTime()),
          t1(trace.endTime()),
          slots(static_cast<double>(cfg.slotsPerServer)),
          capacity(static_cast<double>(cfg.serverCount) * slots /
                   cfg.meanServiceTimeS),
          rng(cfg.seed), servers(cfg.serverCount),
          depths(cfg.serverCount, 0), alive(cfg.serverCount, true),
          epoch(cfg.serverCount, 0), alive_count(cfg.serverCount)
    {
        require(balancer != nullptr, "ClusterSimEngine: no balancer");
        for (auto &s : servers)
            s.last_update = t0;
        result.clusterUtilization.setName("cluster_util");
        result.throughput.setName("throughput_jobs_per_s");
        result.completedByServer.assign(config.serverCount, 0);
        for (const auto &e : events) {
            if (fault::kindTargetsServer(e.kind))
                require(e.target < config.serverCount,
                        "ClusterSim::run: fault targets server " +
                            std::to_string(e.target) +
                            " but the cluster has " +
                            std::to_string(config.serverCount));
        }
        applyFaultsTo(t0);

        // Thinning-based non-homogeneous Poisson arrivals: draw at
        // the peak rate and accept with prob lambda(t) / lambda_max.
        const double peak_util = std::max(trace.peak(), 1e-6);
        lambda_max = peak_util * capacity;
        next_arrival = t0 + rng.exponential(lambda_max);
        next_stats = t0 + config.statsIntervalS;
    }

    std::uint64_t
    allocId(double arrival, JobClass c)
    {
        if (!free_ids.empty()) {
            std::size_t id = free_ids.back();
            free_ids.pop_back();
            inflight[id] = {arrival, c};
            return id;
        }
        inflight.push_back({arrival, c});
        return inflight.size() - 1;
    }

    JobClass
    classAt(double t)
    {
        // Sample a job class from the trace mix at time t.
        double shares[jobClassCount];
        double total = 0.0;
        for (std::size_t i = 0; i < jobClassCount; ++i) {
            shares[i] = trace.classAt(allJobClasses[i], t);
            total += shares[i];
        }
        if (total <= 0.0)
            return allJobClasses[0];
        double u = rng.uniform() * total;
        for (std::size_t i = 0; i < jobClassCount; ++i) {
            if (u < shares[i])
                return allJobClasses[i];
            u -= shares[i];
        }
        return allJobClasses[jobClassCount - 1];
    }

    void
    pushDeparture(const Departure &d)
    {
        departures.push_back(d);
        std::push_heap(departures.begin(), departures.end(),
                       std::greater<Departure>{});
    }

    Departure
    popDeparture()
    {
        std::pop_heap(departures.begin(), departures.end(),
                      std::greater<Departure>{});
        Departure d = departures.back();
        departures.pop_back();
        return d;
    }

    void
    startJob(std::size_t sv, double now, std::uint64_t id)
    {
        servers[sv].accumulate(now);
        ++servers[sv].busy;
        double service = rng.exponential(
            1.0 / config.meanServiceTimeS);
        pushDeparture({now + service, sv, id, epoch[sv]});
    }

    // Apply every fault event with time <= t.  A crash destroys the
    // target's running and queued jobs (graceful degradation: the
    // balancer routes later arrivals around the corpse); a recovery
    // returns it empty.  Thermal-side kinds are no-ops here.
    void
    applyFaultsTo(double t)
    {
        while (next_fault < events.size() &&
               events[next_fault].timeS <= t) {
            const fault::FaultEvent &e = events[next_fault];
            ++next_fault;
            ++result.faultEventsApplied;
            TTS_OBS_COUNT(obs_faults, 1);
            TTS_OBS_EVENT(obs::EventKind::FaultInjected, e.timeS,
                          std::string("dcsim.") +
                              fault::toString(e.kind),
                          e.magnitude,
                          e.target == fault::FaultEvent::noTarget
                              ? -1
                              : static_cast<std::int64_t>(e.target));
            switch (e.kind) {
              case fault::FaultKind::ServerCrash: {
                if (!alive[e.target])
                    break;
                ServerState &sv = servers[e.target];
                sv.accumulate(t);
                std::uint64_t lost =
                    sv.busy +
                    static_cast<std::uint64_t>(sv.queue.size());
                result.droppedJobs += lost;
                result.crashKilledJobs += lost;
                TTS_OBS_COUNT(obs_dropped, lost);
                TTS_OBS_COUNT(obs_crash_killed, lost);
                TTS_OBS_EVENT(obs::EventKind::JobCrashKill, t,
                              "dcsim", static_cast<double>(lost),
                              static_cast<std::int64_t>(e.target));
                // Queued jobs free their latency slots now; running
                // jobs free theirs when their stale departure pops.
                for (const Job &j : sv.queue)
                    free_ids.push_back(j.id);
                sv.queue.clear();
                sv.busy = 0;
                depths[e.target] = 0;
                ++epoch[e.target];
                alive[e.target] = false;
                --alive_count;
                break;
              }
              case fault::FaultKind::ServerRecover:
                if (!alive[e.target]) {
                    alive[e.target] = true;
                    ++alive_count;
                }
                break;
              case fault::FaultKind::TraceGapStart:
                ++gap_depth;
                break;
              case fault::FaultKind::TraceGapEnd:
                gap_depth = std::max(0, gap_depth - 1);
                break;
              default:
                break; // Thermal-side kinds.
            }
        }
    }

    void
    recordStats(double now)
    {
        double busy_total = 0.0;
        for (auto &s : servers) {
            s.accumulate(now);
            busy_total += static_cast<double>(s.busy);
        }
        double util = busy_total /
            (static_cast<double>(config.serverCount) * slots);
        result.clusterUtilization.append(now, util);
        result.throughput.append(
            now, static_cast<double>(completed_window) /
                     config.statsIntervalS);
        completed_window = 0;
    }

    bool
    runUntil(double t_stop)
    {
        invariant(!taken, "ClusterSimEngine: run after take()");
        while (!done) {
            double next_departure = departures.empty()
                ? std::numeric_limits<double>::infinity()
                : departures.front().time;
            double next_fault_t = next_fault < events.size()
                ? events[next_fault].timeS
                : std::numeric_limits<double>::infinity();
            double now = std::min({next_arrival, next_departure,
                                   next_stats, next_fault_t});
            if (now > t1) {
                done = true;
                break;
            }
            if (now > t_stop)
                return false;

            if (now == next_fault_t) {
                // Faults win ties: a crash coinciding with a
                // departure kills the job rather than completing it.
                applyFaultsTo(now);
                continue;
            }
            if (now == next_stats) {
                recordStats(now);
                next_stats += config.statsIntervalS;
                continue;
            }
            if (now == next_departure) {
                Departure d = popDeparture();
                if (d.epoch != epoch[d.server]) {
                    // The job died with its server; it was counted
                    // as dropped at crash time - just recycle its
                    // slot.
                    free_ids.push_back(d.job_id);
                    continue;
                }
                ServerState &sv = servers[d.server];
                sv.accumulate(now);
                --sv.busy;
                --depths[d.server];
                ++result.completedJobs;
                ++result.completedByServer[d.server];
                ++completed_window;
                TTS_OBS_COUNT(obs_completed, 1);
                const InFlight &f = inflight[d.job_id];
                result.latency.add(now - f.arrival);
                for (std::size_t i = 0; i < jobClassCount; ++i) {
                    if (allJobClasses[i] == f.job_class)
                        ++result.completedByClass[i];
                }
                free_ids.push_back(d.job_id);
                if (!sv.queue.empty()) {
                    // The queued job was already counted in depths
                    // at arrival; it stays in the system, so no
                    // increment.
                    Job j = sv.queue.front();
                    sv.queue.pop_front();
                    startJob(d.server, now, j.id);
                }
                continue;
            }

            // Arrival (possibly thinned away).
            next_arrival = now + rng.exponential(lambda_max);
            if (gap_depth > 0)
                continue; // Trace dark: the job is never offered.
            double lambda = trace.totalAt(now) * capacity;
            if (rng.uniform() * lambda_max > lambda)
                continue;
            ++result.offeredJobs;
            TTS_OBS_COUNT(obs_offered, 1);
            if (alive_count == 0) {
                ++result.droppedJobs;
                ++result.rejectedNoAliveServer;
                TTS_OBS_COUNT(obs_dropped, 1);
                continue;
            }
            std::size_t sv;
            if (alive_count == config.serverCount) {
                sv = balancer->pick(depths);
            } else {
                // Re-dispatch around dead servers: offer the
                // balancer the compacted alive view and map its pick
                // back.
                alive_idx.clear();
                alive_depths.clear();
                for (std::size_t i = 0; i < config.serverCount; ++i) {
                    if (alive[i]) {
                        alive_idx.push_back(i);
                        alive_depths.push_back(depths[i]);
                    }
                }
                sv = alive_idx[balancer->pick(alive_depths)];
            }
            ServerState &state = servers[sv];
            std::uint64_t id = allocId(now, classAt(now));
            bool accepted = true;
            if (state.busy < config.slotsPerServer) {
                ++depths[sv];
                startJob(sv, now, id);
            } else if (state.queue.size() < config.queueCapPerServer) {
                ++depths[sv];
                state.queue.push_back(Job{id, inflight[id].job_class,
                                          now, 0.0});
                result.maxQueueDepth =
                    std::max(result.maxQueueDepth,
                             state.queue.size());
            } else {
                ++result.droppedJobs;
                free_ids.push_back(id);
                accepted = false;
                TTS_OBS_COUNT(obs_dropped, 1);
            }
            if (accepted && obs::enabled()) {
                obs_depth.observe(
                    static_cast<double>(depths[sv]));
                obs::emitEvent(obs::EventKind::JobDispatch, now,
                               "dcsim",
                               static_cast<double>(depths[sv]),
                               static_cast<std::int64_t>(sv));
            }
        }
        return true;
    }

    DcSimResult
    take()
    {
        require(done, "ClusterSimEngine::take: run not finished");
        invariant(!taken, "ClusterSimEngine::take: called twice");
        taken = true;

        result.perServerUtilization.resize(config.serverCount);
        for (std::size_t i = 0; i < config.serverCount; ++i) {
            servers[i].accumulate(t1);
            result.perServerUtilization[i] =
                servers[i].busy_integral / ((t1 - t0) * slots);
            result.residualJobs +=
                servers[i].busy + servers[i].queue.size();
        }

        // Rack-level aggregation (the paper's DCSim models the
        // server, rack, and cluster levels).
        std::size_t per_rack = std::max<std::size_t>(
            config.serversPerRack, 1);
        for (std::size_t start = 0; start < config.serverCount;
             start += per_rack) {
            std::size_t end =
                std::min(start + per_rack, config.serverCount);
            double mean = 0.0;
            for (std::size_t i = start; i < end; ++i)
                mean += result.perServerUtilization[i];
            result.perRackUtilization.push_back(
                mean / static_cast<double>(end - start));
        }
        return std::move(result);
    }

    void
    save(guard::CheckpointWriter &w) const
    {
        invariant(!taken, "ClusterSimEngine::save: after take()");
        w.section("dcsim");
        w.putU64("servers", config.serverCount);

        Rng::State rs = rng.state();
        w.putU64Vector("rng.s", {rs.s[0], rs.s[1], rs.s[2], rs.s[3]});
        w.putBool("rng.have_spare", rs.haveSpare);
        w.put("rng.spare", rs.spare);

        for (std::size_t i = 0; i < servers.size(); ++i) {
            const ServerState &s = servers[i];
            const std::string p = "server." + std::to_string(i) + ".";
            w.putU64(p + "busy", s.busy);
            w.put(p + "busy_integral", s.busy_integral);
            w.put(p + "last_update", s.last_update);
            w.putU64(p + "queue_len", s.queue.size());
            for (const Job &j : s.queue) {
                std::vector<double> job = {
                    static_cast<double>(j.id),
                    static_cast<double>(static_cast<int>(j.jobClass)),
                    j.arrivalTime, j.serviceTime};
                w.putVector(p + "job", job);
            }
        }

        // The heap vector is serialized in layout order and restored
        // verbatim: it is already a valid heap, so no rebuild (which
        // could reorder equal keys) is needed.
        w.putU64("departures", departures.size());
        for (const Departure &d : departures) {
            w.put("dep.time", d.time);
            w.putU64("dep.server", d.server);
            w.putU64("dep.job", d.job_id);
            w.putU64("dep.epoch", d.epoch);
        }

        std::vector<std::uint64_t> u64s(depths.begin(), depths.end());
        w.putU64Vector("depths", u64s);
        w.putU64("next_fault", next_fault);
        u64s.clear();
        for (bool a : alive)
            u64s.push_back(a ? 1 : 0);
        w.putU64Vector("alive", u64s);
        w.putU64Vector("epoch", epoch);
        w.putU64("alive_count", alive_count);
        w.putI64("gap_depth", gap_depth);

        w.putU64("inflight", inflight.size());
        for (const InFlight &f : inflight) {
            w.put("inflight.arrival", f.arrival);
            w.putI64("inflight.class",
                     static_cast<int>(f.job_class));
        }
        u64s.assign(free_ids.begin(), free_ids.end());
        w.putU64Vector("free_ids", u64s);

        w.put("next_arrival", next_arrival);
        w.put("next_stats", next_stats);
        w.putU64("completed_window", completed_window);
        w.putBool("done", done);

        w.putVector("util.times", result.clusterUtilization.times());
        w.putVector("util.values",
                    result.clusterUtilization.values());
        w.putVector("tput.times", result.throughput.times());
        w.putVector("tput.values", result.throughput.values());
        w.putU64("completed", result.completedJobs);
        w.putU64("dropped", result.droppedJobs);
        w.putU64("offered", result.offeredJobs);
        w.putU64("max_queue_depth", result.maxQueueDepth);
        w.putU64("crash_killed", result.crashKilledJobs);
        w.putU64("rejected_no_alive", result.rejectedNoAliveServer);
        w.putU64Vector("completed_by_server",
                       result.completedByServer);
        w.putU64("fault_events", result.faultEventsApplied);
        RunningStats::Snapshot lat = result.latency.snapshot();
        w.putU64("latency.n", lat.n);
        w.put("latency.mean", lat.mean);
        w.put("latency.m2", lat.m2);
        w.put("latency.min", lat.min);
        w.put("latency.max", lat.max);
        w.put("latency.sum", lat.sum);
        w.putU64Vector("completed_by_class",
                       {result.completedByClass[0],
                        result.completedByClass[1],
                        result.completedByClass[2]});

        std::vector<std::uint64_t> bal;
        balancer->saveState(bal);
        w.putU64Vector("balancer", bal);
    }

    void
    restore(guard::CheckpointReader &r)
    {
        r.expectSection("dcsim");
        require(r.expectU64("servers") == config.serverCount,
                "dcsim checkpoint: server count mismatch");

        std::vector<std::uint64_t> words = r.expectU64Vector("rng.s");
        require(words.size() == 4, "dcsim checkpoint: bad rng state");
        Rng::State rs;
        for (int i = 0; i < 4; ++i)
            rs.s[i] = words[i];
        rs.haveSpare = r.expectBool("rng.have_spare");
        rs.spare = r.expect("rng.spare");
        rng.setState(rs);

        for (std::size_t i = 0; i < servers.size(); ++i) {
            ServerState &s = servers[i];
            const std::string p = "server." + std::to_string(i) + ".";
            s.busy = static_cast<std::size_t>(
                r.expectU64(p + "busy"));
            s.busy_integral = r.expect(p + "busy_integral");
            s.last_update = r.expect(p + "last_update");
            std::uint64_t qlen = r.expectU64(p + "queue_len");
            s.queue.clear();
            for (std::uint64_t q = 0; q < qlen; ++q) {
                std::vector<double> job = r.expectVector(p + "job");
                require(job.size() == 4,
                        "dcsim checkpoint: bad job record");
                s.queue.push_back(Job{
                    static_cast<std::uint64_t>(job[0]),
                    static_cast<JobClass>(
                        static_cast<int>(job[1])),
                    job[2], job[3]});
            }
        }

        std::uint64_t ndep = r.expectU64("departures");
        departures.clear();
        for (std::uint64_t i = 0; i < ndep; ++i) {
            Departure d;
            d.time = r.expect("dep.time");
            d.server = static_cast<std::size_t>(
                r.expectU64("dep.server"));
            d.job_id = r.expectU64("dep.job");
            d.epoch = r.expectU64("dep.epoch");
            departures.push_back(d);
        }

        std::vector<std::uint64_t> u64s = r.expectU64Vector("depths");
        require(u64s.size() == config.serverCount,
                "dcsim checkpoint: bad depths");
        depths.assign(u64s.begin(), u64s.end());
        next_fault = static_cast<std::size_t>(
            r.expectU64("next_fault"));
        require(next_fault <= events.size(),
                "dcsim checkpoint: fault cursor beyond schedule");
        u64s = r.expectU64Vector("alive");
        require(u64s.size() == config.serverCount,
                "dcsim checkpoint: bad alive set");
        for (std::size_t i = 0; i < u64s.size(); ++i)
            alive[i] = u64s[i] != 0;
        epoch = r.expectU64Vector("epoch");
        require(epoch.size() == config.serverCount,
                "dcsim checkpoint: bad epochs");
        alive_count = static_cast<std::size_t>(
            r.expectU64("alive_count"));
        gap_depth = static_cast<int>(r.expectI64("gap_depth"));

        std::uint64_t nif = r.expectU64("inflight");
        inflight.clear();
        for (std::uint64_t i = 0; i < nif; ++i) {
            InFlight f;
            f.arrival = r.expect("inflight.arrival");
            f.job_class = static_cast<JobClass>(
                static_cast<int>(r.expectI64("inflight.class")));
            inflight.push_back(f);
        }
        u64s = r.expectU64Vector("free_ids");
        free_ids.assign(u64s.begin(), u64s.end());

        next_arrival = r.expect("next_arrival");
        next_stats = r.expect("next_stats");
        completed_window = r.expectU64("completed_window");
        done = r.expectBool("done");

        std::vector<double> times = r.expectVector("util.times");
        std::vector<double> values = r.expectVector("util.values");
        result.clusterUtilization = TimeSeries("cluster_util");
        restoreSeries(result.clusterUtilization, times, values,
                      "dcsim checkpoint: cluster_util");
        times = r.expectVector("tput.times");
        values = r.expectVector("tput.values");
        result.throughput = TimeSeries("throughput_jobs_per_s");
        restoreSeries(result.throughput, times, values,
                      "dcsim checkpoint: throughput");
        result.completedJobs = r.expectU64("completed");
        result.droppedJobs = r.expectU64("dropped");
        result.offeredJobs = r.expectU64("offered");
        result.maxQueueDepth = static_cast<std::size_t>(
            r.expectU64("max_queue_depth"));
        result.crashKilledJobs = r.expectU64("crash_killed");
        result.rejectedNoAliveServer =
            r.expectU64("rejected_no_alive");
        result.completedByServer =
            r.expectU64Vector("completed_by_server");
        require(result.completedByServer.size() == config.serverCount,
                "dcsim checkpoint: bad per-server counters");
        result.faultEventsApplied = r.expectU64("fault_events");
        RunningStats::Snapshot lat;
        lat.n = static_cast<std::size_t>(r.expectU64("latency.n"));
        lat.mean = r.expect("latency.mean");
        lat.m2 = r.expect("latency.m2");
        lat.min = r.expect("latency.min");
        lat.max = r.expect("latency.max");
        lat.sum = r.expect("latency.sum");
        result.latency.restore(lat);
        u64s = r.expectU64Vector("completed_by_class");
        require(u64s.size() == jobClassCount,
                "dcsim checkpoint: bad class counters");
        for (std::size_t i = 0; i < jobClassCount; ++i)
            result.completedByClass[i] = u64s[i];

        std::vector<std::uint64_t> bal =
            r.expectU64Vector("balancer");
        std::size_t pos = 0;
        balancer->restoreState(bal, pos);
        require(pos == bal.size(),
                "dcsim checkpoint: balancer state not fully "
                "consumed");
    }
};

ClusterSimEngine::ClusterSimEngine(const DcSimConfig &config,
                                   LoadBalancer *balancer,
                                   const WorkloadTrace &trace,
                                   const fault::FaultSchedule *faults)
    : impl_(std::make_unique<Impl>(config, balancer, trace, faults))
{
}

ClusterSimEngine::~ClusterSimEngine() = default;

bool
ClusterSimEngine::runUntil(double t_stop)
{
    obs::Scope scope("dcsim.run");
    return impl_->runUntil(t_stop);
}

bool
ClusterSimEngine::finished() const
{
    return impl_->done;
}

double
ClusterSimEngine::traceEnd() const
{
    return impl_->t1;
}

DcSimResult
ClusterSimEngine::take()
{
    return impl_->take();
}

void
ClusterSimEngine::save(guard::CheckpointWriter &w) const
{
    impl_->save(w);
}

void
ClusterSimEngine::restore(guard::CheckpointReader &r)
{
    impl_->restore(r);
}

DcSimResult
ClusterSim::run(const WorkloadTrace &trace)
{
    return run(trace, nullptr);
}

DcSimResult
ClusterSim::run(const WorkloadTrace &trace,
                const fault::FaultSchedule *faults)
{
    ClusterSimEngine engine(config_, balancer_.get(), trace, faults);
    engine.runUntil(std::numeric_limits<double>::infinity());
    return engine.take();
}

} // namespace workload
} // namespace tts
