#include "workload/placement.hh"

#include <algorithm>
#include <bit>

#include "util/error.hh"

namespace tts {
namespace workload {

namespace {

/** Clamp bounds keeping any archetype usable but not saturated. */
constexpr double kMinRawWeight = 0.25;
constexpr double kMaxRawWeight = 4.0;

/**
 * Normalize raw per-archetype preferences into load-conserving
 * weights: scale so sum(count_a * w_a) == sum(count_a).
 */
std::vector<double>
normalize(const std::vector<ArchetypeLoadTraits> &traits,
          std::vector<double> raw)
{
    double population = 0.0;
    double weighted = 0.0;
    for (std::size_t i = 0; i < traits.size(); ++i) {
        raw[i] = std::clamp(raw[i], kMinRawWeight, kMaxRawWeight);
        double count = static_cast<double>(traits[i].count);
        population += count;
        weighted += count * raw[i];
    }
    require(population > 0.0,
            "placementWeights: fleet population is zero");
    double scale = population / weighted;
    for (double &w : raw)
        w *= scale;
    return raw;
}

} // namespace

const char *
placementPolicyName(PlacementPolicy p)
{
    switch (p) {
      case PlacementPolicy::Uniform: return "uniform";
      case PlacementPolicy::WaxAware: return "wax-aware";
      case PlacementPolicy::EfficiencyFirst: return "efficiency-first";
    }
    return "unknown";
}

PlacementPolicy
placementPolicyFromName(const std::string &name)
{
    for (PlacementPolicy p : allPlacementPolicies())
        if (name == placementPolicyName(p))
            return p;
    fatal("unknown placement policy '" + name +
          "' (want uniform, wax-aware, or efficiency-first)");
}

std::vector<PlacementPolicy>
allPlacementPolicies()
{
    return {PlacementPolicy::Uniform, PlacementPolicy::WaxAware,
            PlacementPolicy::EfficiencyFirst};
}

std::vector<double>
placementWeights(PlacementPolicy policy,
                 const std::vector<ArchetypeLoadTraits> &traits)
{
    require(!traits.empty(), "placementWeights: no archetypes");
    std::vector<double> raw(traits.size(), 1.0);
    switch (policy) {
      case PlacementPolicy::Uniform:
        break;
      case PlacementPolicy::WaxAware: {
        // Preference proportional to latent capacity relative to the
        // population mean; all-zero (stock fleet) stays uniform.
        double population = 0.0;
        double latent_sum = 0.0;
        double latent_max = 0.0;
        for (const auto &t : traits) {
            double count = static_cast<double>(t.count);
            population += count;
            latent_sum += count * t.latentCapacityJ;
            latent_max = std::max(latent_max, t.latentCapacityJ);
        }
        require(population > 0.0,
                "placementWeights: fleet population is zero");
        if (latent_max <= 0.0)
            break;
        double mean = latent_sum / population;
        for (std::size_t i = 0; i < traits.size(); ++i)
            raw[i] = 1.0 +
                0.5 * (traits[i].latentCapacityJ - mean) / latent_max;
        break;
      }
      case PlacementPolicy::EfficiencyFirst: {
        // Preference inversely proportional to the power slope
        // (marginal watts per unit utilization).
        double population = 0.0;
        double slope_sum = 0.0;
        bool degenerate = false;
        for (const auto &t : traits) {
            double slope = t.peakWallW - t.idleWallW;
            if (slope <= 0.0)
                degenerate = true;
            population += static_cast<double>(t.count);
            slope_sum +=
                static_cast<double>(t.count) * std::max(slope, 0.0);
        }
        require(population > 0.0,
                "placementWeights: fleet population is zero");
        if (degenerate || slope_sum <= 0.0)
            break;
        double mean_slope = slope_sum / population;
        for (std::size_t i = 0; i < traits.size(); ++i)
            raw[i] = mean_slope /
                (traits[i].peakWallW - traits[i].idleWallW);
        break;
      }
    }
    return normalize(traits, std::move(raw));
}

std::vector<double>
expandArchetypeWeights(const std::vector<ArchetypeLoadTraits> &traits,
                       const std::vector<double> &weights)
{
    require(traits.size() == weights.size(),
            "expandArchetypeWeights: traits/weights size mismatch");
    std::vector<double> out;
    for (std::size_t i = 0; i < traits.size(); ++i)
        out.insert(out.end(), traits[i].count, weights[i]);
    return out;
}

WeightedRoundRobinBalancer::WeightedRoundRobinBalancer(
    std::vector<double> weights)
    : weights_(std::move(weights)),
      credit_(weights_.size(), 0.0)
{
    require(!weights_.empty(),
            "WeightedRoundRobinBalancer: no servers");
    for (double w : weights_) {
        require(w > 0.0,
                "WeightedRoundRobinBalancer: weights must be > 0");
        total_ += w;
    }
}

std::size_t
WeightedRoundRobinBalancer::pick(
    const std::vector<std::size_t> &depths)
{
    require(depths.size() == weights_.size(),
            "WeightedRoundRobinBalancer: depth vector size mismatch");
    std::size_t best = 0;
    for (std::size_t i = 0; i < credit_.size(); ++i) {
        credit_[i] += weights_[i];
        if (credit_[i] > credit_[best])
            best = i;
    }
    credit_[best] -= total_;
    return best;
}

void
WeightedRoundRobinBalancer::saveState(
    std::vector<std::uint64_t> &out) const
{
    out.push_back(credit_.size());
    for (double c : credit_)
        out.push_back(std::bit_cast<std::uint64_t>(c));
}

void
WeightedRoundRobinBalancer::restoreState(
    const std::vector<std::uint64_t> &in, std::size_t &pos)
{
    require(pos < in.size(),
            "weighted-round-robin: truncated state");
    std::size_t n = static_cast<std::size_t>(in[pos++]);
    require(n == credit_.size() && pos + n <= in.size(),
            "weighted-round-robin: state size mismatch");
    for (std::size_t i = 0; i < n; ++i)
        credit_[i] = std::bit_cast<double>(in[pos++]);
}

} // namespace workload
} // namespace tts
