/**
 * @file
 * Job classes of the Google workload trace.
 *
 * The paper's two-day trace (Nov 17-18, 2010, via Kontorinis et al.)
 * mixes three job types: Web Search, Social Networking (Orkut), and
 * MapReduce (labeled "FBmr" in Figure 10).
 */

#ifndef TTS_WORKLOAD_JOB_HH
#define TTS_WORKLOAD_JOB_HH

#include <cstdint>
#include <string>

namespace tts {
namespace workload {

/** Workload class in the Google trace. */
enum class JobClass
{
    WebSearch,
    Orkut,
    MapReduce,
};

/** Number of job classes. */
constexpr std::size_t jobClassCount = 3;

/** @return Display name matching the paper's Figure 10 legend. */
std::string toString(JobClass c);

/** All job classes, in Figure 10 order. */
constexpr JobClass allJobClasses[jobClassCount] = {
    JobClass::Orkut, JobClass::WebSearch, JobClass::MapReduce};

/** One job instance flowing through the cluster simulator. */
struct Job
{
    /** Unique id. */
    std::uint64_t id;
    /** Workload class. */
    JobClass jobClass;
    /** Arrival time (s). */
    double arrivalTime;
    /** Service demand on one slot (s). */
    double serviceTime;
};

} // namespace workload
} // namespace tts

#endif // TTS_WORKLOAD_JOB_HH
