#include "workload/job.hh"

#include "util/error.hh"

namespace tts {
namespace workload {

std::string
toString(JobClass c)
{
    switch (c) {
      case JobClass::WebSearch: return "Search";
      case JobClass::Orkut: return "Orkut";
      case JobClass::MapReduce: return "FBmr";
    }
    panic("toString(JobClass): bad enum value");
}

} // namespace workload
} // namespace tts
