/**
 * @file
 * DCSim-style event-driven cluster simulator.
 *
 * Reimplements the published description of DCSim (Kontorinis et
 * al.): jobs arrive following the input load trace, a load balancer
 * dispatches them to servers, each server runs jobs on a fixed number
 * of slots (logical threads) with FIFO queueing, and the simulator
 * records per-server utilization, latency, and cluster throughput.
 * The cluster model is then extrapolated to the datacenter by the
 * higher layers, exactly as the paper does.
 *
 * Arrivals are a non-homogeneous Poisson process with rate
 *     lambda(t) = util(t) * servers * slots / mean_service_time,
 * which makes the offered load equal to the trace value.
 */

#ifndef TTS_WORKLOAD_DCSIM_HH
#define TTS_WORKLOAD_DCSIM_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "util/random.hh"
#include "util/stats.hh"
#include "util/time_series.hh"
#include "workload/job.hh"
#include "workload/load_balancer.hh"
#include "workload/trace.hh"

namespace tts {

namespace fault {
class FaultSchedule;
} // namespace fault

namespace guard {
class CheckpointWriter;
class CheckpointReader;
} // namespace guard

namespace workload {

/** Cluster simulator configuration. */
struct DcSimConfig
{
    /** Number of simulated servers (a rack/cluster sample). */
    std::size_t serverCount = 48;
    /** Job slots per server (logical threads). */
    std::size_t slotsPerServer = 12;
    /** Mean job service time (s), exponential. */
    double meanServiceTimeS = 30.0;
    /** Per-server queue cap; jobs beyond it are dropped. */
    std::size_t queueCapPerServer = 256;
    /** Servers per rack (for rack-level metrics). */
    std::size_t serversPerRack = 24;
    /** Utilization sampling interval (s). */
    double statsIntervalS = 300.0;
    /** RNG seed. */
    std::uint64_t seed = 1;
};

/** Aggregated results of one simulation run. */
struct DcSimResult
{
    /** Cluster-mean slot utilization over time. */
    TimeSeries clusterUtilization;
    /** Completed jobs per second over time. */
    TimeSeries throughput;
    /** Time-mean busy-slot fraction per server. */
    std::vector<double> perServerUtilization;
    /** Time-mean busy-slot fraction per rack. */
    std::vector<double> perRackUtilization;
    /** Completed job count. */
    std::uint64_t completedJobs = 0;
    /** Dropped job count (queue overflow). */
    std::uint64_t droppedJobs = 0;
    /** Jobs offered to the cluster (accepted Poisson arrivals). */
    std::uint64_t offeredJobs = 0;
    /** Jobs still in the system (running or queued) at trace end. */
    std::uint64_t residualJobs = 0;
    /** Deepest per-server FIFO queue observed during the run. */
    std::size_t maxQueueDepth = 0;
    /**
     * Jobs destroyed by a server crash (they were running or queued
     * on the server when it died).  A subset of droppedJobs, so the
     * offered = completed + dropped + residual partition still
     * holds under faults.
     */
    std::uint64_t crashKilledJobs = 0;
    /** Arrivals rejected because no server was alive (subset of
     *  droppedJobs). */
    std::uint64_t rejectedNoAliveServer = 0;
    /** Completed jobs per server (fault studies assert a crashed
     *  server completes nothing while down). */
    std::vector<std::uint64_t> completedByServer;
    /** Fault events applied during the run. */
    std::uint64_t faultEventsApplied = 0;
    /** Sojourn time statistics (queue + service, s). */
    RunningStats latency;
    /** Completed jobs per class. */
    std::uint64_t completedByClass[jobClassCount] = {0, 0, 0};

    /**
     * @return Max over servers of |server util - mean| (the
     * round-robin uniformity metric the scale-out model relies on).
     */
    double utilizationSpread() const;

    /** @return The same uniformity metric at rack granularity. */
    double rackUtilizationSpread() const;
};

/**
 * Pausable core of the cluster simulator.
 *
 * Holds every piece of event-loop state (pending departures, queues,
 * fault cursor, RNG position, partial counters) as members, so a run
 * can stop at an arbitrary simulation time, be serialized to a guard
 * checkpoint, and resume - in the same process or a new one -
 * producing results bit-identical to an uninterrupted run.
 * ClusterSim::run() is a thin wrapper driving this engine to the end
 * of the trace.
 *
 * The trace, fault schedule, and balancer are configuration: the
 * caller reconstructs them and passes them again on resume; only the
 * evolving state (including the balancer's cursor/RNG via
 * LoadBalancer::saveState) is checkpointed.
 */
class ClusterSimEngine
{
  public:
    /**
     * @param config   Simulator configuration.
     * @param balancer Dispatch policy; must outlive the engine.
     * @param trace    Load trace; must outlive the engine.
     * @param faults   Fault schedule, or nullptr.
     */
    ClusterSimEngine(const DcSimConfig &config, LoadBalancer *balancer,
                     const WorkloadTrace &trace,
                     const fault::FaultSchedule *faults);
    ~ClusterSimEngine();

    ClusterSimEngine(const ClusterSimEngine &) = delete;
    ClusterSimEngine &operator=(const ClusterSimEngine &) = delete;

    /**
     * Process every event with time <= min(t_stop, trace end).
     *
     * @return True once the trace end has been reached (no further
     *         events to process); false if paused at t_stop.
     */
    bool runUntil(double t_stop);

    /** @return True once the run has consumed the whole trace. */
    bool finished() const;

    /** @return Trace end time (s). */
    double traceEnd() const;

    /**
     * Final accounting (utilization integrals, residual jobs, rack
     * aggregation) and result extraction.  Call once, after the run
     * finished.
     */
    DcSimResult take();

    /** Serialize the full engine state (including the balancer's). */
    void save(guard::CheckpointWriter &w) const;

    /**
     * Restore state saved by save().  The engine must have been
     * constructed with the same config, trace, schedule, and
     * balancer type.
     */
    void restore(guard::CheckpointReader &r);

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/** Event-driven cluster simulator. */
class ClusterSim
{
  public:
    /**
     * @param config   Simulator configuration.
     * @param balancer Dispatch policy; defaults to round-robin.
     */
    explicit ClusterSim(const DcSimConfig &config,
                        std::unique_ptr<LoadBalancer> balancer =
                            nullptr);

    /**
     * Run the simulator over a load trace.
     *
     * @param trace Normalized multi-class load trace; arrival rate
     *              and class mix follow it.
     * @return Aggregated results.
     */
    DcSimResult run(const WorkloadTrace &trace);

    /**
     * Run the simulator over a load trace with fault injection.
     *
     * Fault events interleave with arrivals and departures at their
     * scheduled times:
     *
     *  - ServerCrash kills the target's running and queued jobs
     *    (counted in droppedJobs and crashKilledJobs) and removes it
     *    from dispatch; the balancer re-routes subsequent arrivals
     *    around it.  If every server is dead, arrivals are dropped
     *    (rejectedNoAliveServer).
     *  - ServerRecover returns the target, empty, to the pool.
     *  - TraceGapStart/End suppress arrivals while the input trace
     *    is dark (the gap's would-be jobs are never offered).
     *  - Thermal-side kinds (cooling, sensor, fan) are ignored here;
     *    core::runResilienceStudy applies them to the room model.
     *
     * Given the same seed and schedule the run is bit-identical on
     * every platform and at every thread count.
     *
     * @param trace  Normalized multi-class load trace.
     * @param faults Fault schedule, or nullptr for none.
     */
    DcSimResult run(const WorkloadTrace &trace,
                    const fault::FaultSchedule *faults);

    /** @return The configuration. */
    const DcSimConfig &config() const { return config_; }

  private:
    DcSimConfig config_;
    std::unique_ptr<LoadBalancer> balancer_;
};

} // namespace workload
} // namespace tts

#endif // TTS_WORKLOAD_DCSIM_HH
