/**
 * @file
 * Job-placement policies across platform archetypes.
 *
 * The paper's §6 sketches "intelligent, wax-aware scheduling": skew
 * load toward servers whose wax can absorb the peak.  This module is
 * that seam.  A PlacementPolicy maps per-archetype load traits
 * (population, latent capacity, power slope) to deterministic
 * per-archetype utilization weights that conserve total fleet load:
 * sum over archetypes of count_a * w_a == sum of count_a, so a
 * fleet-level utilization u becomes u * w_a on archetype a without
 * changing the total offered work.  FleetSim applies the weights in
 * setLoads(); tts::opt searches over the policy as one dimension of
 * its configuration space.
 *
 * WeightedRoundRobinBalancer is the per-job face of the same idea
 * for DCSim-style dispatch: a smooth weighted round-robin whose
 * long-run pick frequencies match the weights exactly, with the
 * save/restore contract of the other balancers.
 */

#ifndef TTS_WORKLOAD_PLACEMENT_HH
#define TTS_WORKLOAD_PLACEMENT_HH

#include <cstddef>
#include <string>
#include <vector>

#include "workload/load_balancer.hh"

namespace tts {
namespace workload {

/** How fleet load spreads across platform archetypes. */
enum class PlacementPolicy
{
    /** Every archetype sees the fleet utilization (the paper). */
    Uniform,
    /** Skew load toward archetypes with more latent capacity per
     *  server, so the wax absorbs more of the peak. */
    WaxAware,
    /** Skew load toward archetypes with the flattest power slope
     *  (W per unit utilization), minimizing marginal heat. */
    EfficiencyFirst,
};

/** @return Stable CLI/report name ("uniform", "wax-aware", ...). */
const char *placementPolicyName(PlacementPolicy p);

/**
 * @return The policy named by @p name (see placementPolicyName).
 * @throws FatalError on an unknown name.
 */
PlacementPolicy placementPolicyFromName(const std::string &name);

/** @return Every policy, in canonical (enum) order. */
std::vector<PlacementPolicy> allPlacementPolicies();

/** Per-archetype inputs a policy weighs. */
struct ArchetypeLoadTraits
{
    /** Servers of this archetype. */
    std::size_t count = 0;
    /** Wax latent capacity per server (J); 0 without wax. */
    double latentCapacityJ = 0.0;
    /** Idle wall power per server (W). */
    double idleWallW = 0.0;
    /** Peak wall power per server (W). */
    double peakWallW = 0.0;
};

/**
 * Compute per-archetype utilization weights for a policy.
 *
 * Deterministic in the traits alone (no RNG), and load-conserving:
 * sum(count_a * w_a) == sum(count_a) to within rounding.  Weights
 * are clamped to [0.25, 4.0] before normalization so no archetype is
 * starved or driven past saturation by a degenerate trait set; when
 * the policy's discriminating trait is flat (all-equal latent
 * capacity, say) the result collapses to the uniform weights.
 *
 * @throws FatalError when traits is empty or every count is zero.
 */
std::vector<double> placementWeights(
    PlacementPolicy policy,
    const std::vector<ArchetypeLoadTraits> &traits);

/**
 * Expand per-archetype weights to per-server weights in global
 * server order (archetype-major), for per-job dispatch.
 */
std::vector<double> expandArchetypeWeights(
    const std::vector<ArchetypeLoadTraits> &traits,
    const std::vector<double> &weights);

/**
 * Smooth weighted round-robin dispatch: each pick adds every
 * server's weight to its credit and picks the highest-credit server
 * (first index on ties), subtracting the total weight from the
 * winner.  Long-run pick frequencies converge to the weights; the
 * spread between any server's ideal and actual share is bounded by
 * one pick (the classic smooth-WRR property).
 */
class WeightedRoundRobinBalancer : public LoadBalancer
{
  public:
    /** @param weights Positive per-server weights. */
    explicit WeightedRoundRobinBalancer(std::vector<double> weights);

    std::size_t pick(const std::vector<std::size_t> &depths) override;
    const char *name() const override
    {
        return "weighted-round-robin";
    }

    void saveState(std::vector<std::uint64_t> &out) const override;
    void restoreState(const std::vector<std::uint64_t> &in,
                      std::size_t &pos) override;

    /** @return The configured weights. */
    const std::vector<double> &weights() const { return weights_; }

  private:
    std::vector<double> weights_;
    std::vector<double> credit_;
    double total_ = 0.0;
};

} // namespace workload
} // namespace tts

#endif // TTS_WORKLOAD_PLACEMENT_HH
