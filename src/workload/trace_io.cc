#include "workload/trace_io.hh"

#include <array>
#include <cmath>
#include <fstream>
#include <sstream>
#include <vector>

#include "util/error.hh"
#include "util/units.hh"

namespace tts {
namespace workload {

namespace {

std::vector<std::string>
splitCsvLine(const std::string &line)
{
    std::vector<std::string> cells;
    std::string cell;
    std::istringstream ss(line);
    while (std::getline(ss, cell, ','))
        cells.push_back(cell);
    return cells;
}

double
parseNumber(const std::string &cell, const char *what)
{
    try {
        std::size_t used = 0;
        double v = std::stod(cell, &used);
        // Allow trailing whitespace / CR only.
        for (std::size_t i = used; i < cell.size(); ++i) {
            char c = cell[i];
            require(c == ' ' || c == '\t' || c == '\r',
                    std::string("readTraceCsv: trailing garbage "
                                "in ") + what);
        }
        return v;
    } catch (const std::invalid_argument &) {
        fatal(std::string("readTraceCsv: non-numeric ") + what +
              " '" + cell + "'");
    } catch (const std::out_of_range &) {
        fatal(std::string("readTraceCsv: out-of-range ") + what);
    }
}

} // namespace

WorkloadTrace
readTraceCsv(std::istream &in)
{
    std::string header;
    require(static_cast<bool>(std::getline(in, header)),
            "readTraceCsv: empty input");
    auto columns = splitCsvLine(header);
    require(!columns.empty() && columns[0].rfind("t_", 0) == 0,
            "readTraceCsv: first column must be the time "
            "(t_hours)");

    // Map class -> column index.
    std::array<int, jobClassCount> col{};
    col.fill(-1);
    for (std::size_t i = 1; i < columns.size(); ++i) {
        std::string name = columns[i];
        while (!name.empty() &&
               (name.back() == '\r' || name.back() == ' '))
            name.pop_back();
        for (std::size_t c = 0; c < jobClassCount; ++c) {
            if (name == toString(allJobClasses[c]))
                col[c] = static_cast<int>(i);
        }
    }
    for (std::size_t c = 0; c < jobClassCount; ++c) {
        require(col[c] >= 0,
                "readTraceCsv: missing class column '" +
                    toString(allJobClasses[c]) + "'");
    }

    WorkloadTrace trace;
    std::string line;
    std::size_t line_no = 1;
    bool have_last_t = false;
    double last_t = 0.0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty() || line == "\r")
            continue;
        auto cells = splitCsvLine(line);
        // Truncated rows (a cut-off download, a partial write) must
        // fail loudly, not index out of range.
        require(cells.size() >= columns.size() &&
                cells.size() >= 1 + jobClassCount,
                "readTraceCsv: short row at line " +
                    std::to_string(line_no));
        double t = units::hours(parseNumber(cells[0], "time"));
        require(std::isfinite(t),
                "readTraceCsv: non-finite time at line " +
                    std::to_string(line_no));
        require(!have_last_t || t > last_t,
                "readTraceCsv: out-of-order timestamp at line " +
                    std::to_string(line_no) +
                    " (times must be strictly increasing)");
        last_t = t;
        have_last_t = true;
        std::array<double, jobClassCount> sample{};
        for (std::size_t c = 0; c < jobClassCount; ++c) {
            double v = parseNumber(cells[col[c]], "class load");
            require(std::isfinite(v),
                    "readTraceCsv: non-finite class load at line " +
                        std::to_string(line_no));
            require(v >= 0.0,
                    "readTraceCsv: negative class load at line " +
                        std::to_string(line_no));
            sample[c] = v;
        }
        trace.append(t, sample);
    }
    require(trace.size() >= 2, "readTraceCsv: need >= 2 rows");
    return trace;
}

WorkloadTrace
loadTrace(const std::string &path)
{
    std::ifstream in(path);
    require(in.good(), "loadTrace: cannot open '" + path + "'");
    return readTraceCsv(in);
}

void
writeTraceCsv(std::ostream &out, const WorkloadTrace &trace)
{
    require(trace.size() >= 1, "writeTraceCsv: empty trace");
    out << "t_hours";
    for (auto c : allJobClasses)
        out << "," << toString(c);
    out << ",Total\n";
    const auto &times = trace.total().times();
    for (std::size_t i = 0; i < times.size(); ++i) {
        out << units::toHours(times[i]);
        for (auto c : allJobClasses)
            out << "," << trace.series(c).values()[i];
        out << "," << trace.total().values()[i] << "\n";
    }
}

void
saveTrace(const std::string &path, const WorkloadTrace &trace)
{
    std::ofstream out(path);
    require(out.good(), "saveTrace: cannot open '" + path + "'");
    writeTraceCsv(out, trace);
}

} // namespace workload
} // namespace tts
