/**
 * @file
 * Synthetic Google-style diurnal trace generator.
 *
 * The original two-day trace (Web Search, Orkut, MapReduce; Nov
 * 17-18, 2010) is proprietary, so we generate a statistically
 * matched substitute: three job classes with class-specific diurnal
 * peaks, light deterministic noise, and the published normalization
 * (50 % average load, 95 % peak over the two days).  The default
 * parameters reproduce the Figure 10 shape: a broad mid-day peak,
 * an evening social-networking bump, and a flatter batch baseline.
 */

#ifndef TTS_WORKLOAD_GOOGLE_TRACE_HH
#define TTS_WORKLOAD_GOOGLE_TRACE_HH

#include <cstdint>

#include "workload/trace.hh"

namespace tts {
namespace workload {

/** One job class's diurnal shape. */
struct ClassShape
{
    /** Baseline load (arbitrary units before normalization). */
    double base;
    /** Peak amplitude above baseline. */
    double amplitude;
    /** Local hour of the daily peak [0, 24). */
    double peakHour;
    /** Concentration of the peak (von Mises kappa); larger means a
     *  narrower peak. */
    double concentration;
};

/** Generator parameters. */
struct GoogleTraceParams
{
    /** Trace duration (s); the paper uses two days. */
    double durationS = 2.0 * 86400.0;
    /** Sample interval (s). */
    double sampleIntervalS = 300.0;
    /** Target time-average of the total load. */
    double targetMean = 0.50;
    /** Target peak of the total load. */
    double targetPeak = 0.95;
    /** Relative day-to-day amplitude jitter. */
    double dayJitter = 0.06;
    /** Relative sample noise (smoothed). */
    double noise = 0.02;
    /**
     * Amplitude scale applied on Saturdays and Sundays; 1.0
     * reproduces the paper's two weekdays, < 1.0 models the
     * interactive-traffic dip of a full week.
     */
    double weekendFactor = 1.0;
    /** Day of week at t = 0 (0 = Monday ... 6 = Sunday); the
     *  paper's trace starts Wednesday, Nov 17, 2010. */
    int startDayOfWeek = 2;
    /** RNG seed (deterministic). */
    std::uint64_t seed = 20101117;  // Nov 17, 2010.

    /** Interactive search: early-afternoon peak. */
    ClassShape search = {0.30, 1.10, 14.0, 3.5};
    /** Social networking: smaller evening peak. */
    ClassShape orkut = {0.28, 0.55, 19.5, 4.0};
    /** Batch MapReduce: flatter, mild mid-day tilt. */
    ClassShape mapreduce = {0.55, 0.35, 13.0, 1.2};
};

/**
 * Generate the synthetic two-day trace.
 *
 * @param params Generator parameters.
 * @return Normalized trace (mean == targetMean, peak == targetPeak).
 */
WorkloadTrace makeGoogleTrace(
    const GoogleTraceParams &params = GoogleTraceParams{});

} // namespace workload
} // namespace tts

#endif // TTS_WORKLOAD_GOOGLE_TRACE_HH
