#include "workload/trace.hh"

#include <cmath>

#include "util/error.hh"

namespace tts {
namespace workload {

namespace {

std::size_t
classIndex(JobClass c)
{
    for (std::size_t i = 0; i < jobClassCount; ++i) {
        if (allJobClasses[i] == c)
            return i;
    }
    panic("classIndex: bad job class");
}

} // namespace

WorkloadTrace::WorkloadTrace()
    : total_("Total")
{
    for (std::size_t i = 0; i < jobClassCount; ++i)
        by_class_[i].setName(toString(allJobClasses[i]));
}

void
WorkloadTrace::append(double t,
                      const std::array<double, jobClassCount> &by_class)
{
    double total = 0.0;
    for (std::size_t i = 0; i < jobClassCount; ++i) {
        require(by_class[i] >= 0.0,
                "WorkloadTrace::append: negative class load");
        by_class_[i].append(t, by_class[i]);
        total += by_class[i];
    }
    total_.append(t, total);
}

double
WorkloadTrace::classAt(JobClass c, double t) const
{
    return by_class_[classIndex(c)].at(t);
}

double
WorkloadTrace::classShareAt(JobClass c, double t) const
{
    double total = totalAt(t);
    if (total <= 0.0)
        return 0.0;
    return classAt(c, t) / total;
}

const TimeSeries &
WorkloadTrace::series(JobClass c) const
{
    return by_class_[classIndex(c)];
}

void
WorkloadTrace::normalize(double target_mean, double target_peak)
{
    require(target_peak > target_mean && target_mean > 0.0,
            "WorkloadTrace::normalize: need peak > mean > 0");
    require(total_.size() >= 2,
            "WorkloadTrace::normalize: trace too short");
    double mean = total_.mean();
    double peak = total_.max();
    require(peak > mean,
            "WorkloadTrace::normalize: degenerate trace");

    // Solve total' = a + b * total with mean' = target_mean and
    // peak' = target_peak.  Each class is rescaled by the same
    // per-instant factor total'(t) / total(t), which preserves the
    // class mix exactly and keeps every class non-negative as long
    // as the transformed total is.
    double b = (target_peak - target_mean) / (peak - mean);
    double a = target_mean - b * mean;
    require(a + b * total_.min() >= 0.0,
            "WorkloadTrace::normalize: transform pushes the total "
            "below zero; flatten the shape or lower the targets");

    std::array<TimeSeries, jobClassCount> new_class;
    TimeSeries new_total("Total");
    const auto &times = total_.times();
    for (std::size_t s = 0; s < times.size(); ++s) {
        double t = times[s];
        double old_total = total_.values()[s];
        double scaled_total = a + b * old_total;
        double factor = old_total > 0.0 ? scaled_total / old_total
                                        : 0.0;
        double total = 0.0;
        for (std::size_t i = 0; i < jobClassCount; ++i) {
            double v = factor * by_class_[i].values()[s];
            if (s == 0)
                new_class[i].setName(by_class_[i].name());
            new_class[i].append(t, v);
            total += v;
        }
        new_total.append(t, total);
    }
    by_class_ = std::move(new_class);
    total_ = std::move(new_total);
}

} // namespace workload
} // namespace tts
