#include "workload/google_trace.hh"

#include <array>
#include <cmath>

#include "util/error.hh"
#include "util/random.hh"

namespace tts {
namespace workload {

namespace {

/** Von Mises-style diurnal bump, 1.0 at the peak hour. */
double
diurnalBump(double hour_of_day, double peak_hour, double kappa)
{
    double phase = 2.0 * M_PI * (hour_of_day - peak_hour) / 24.0;
    return std::exp(kappa * (std::cos(phase) - 1.0));
}

} // namespace

WorkloadTrace
makeGoogleTrace(const GoogleTraceParams &params)
{
    require(params.durationS > 0.0 && params.sampleIntervalS > 0.0,
            "makeGoogleTrace: bad duration or interval");
    require(params.targetPeak > params.targetMean,
            "makeGoogleTrace: peak must exceed mean");
    require(params.weekendFactor > 0.0 &&
            params.weekendFactor <= 1.0,
            "makeGoogleTrace: weekend factor must be in (0, 1]");
    require(params.startDayOfWeek >= 0 &&
            params.startDayOfWeek <= 6,
            "makeGoogleTrace: start day of week must be 0-6");

    Rng rng(params.seed);

    // Per-day amplitude jitter (the two trace days differ slightly).
    std::size_t day_count = static_cast<std::size_t>(
        std::ceil(params.durationS / 86400.0));
    std::vector<std::array<double, jobClassCount>> day_scale(
        day_count);
    for (auto &day : day_scale) {
        for (auto &s : day)
            s = 1.0 + params.dayJitter * rng.normal();
    }

    const ClassShape shapes[jobClassCount] = {
        params.orkut, params.search, params.mapreduce};

    WorkloadTrace trace;
    // Smoothed noise: first-order low-pass over white samples.
    std::array<double, jobClassCount> noise_state{};
    for (double t = 0.0; t <= params.durationS;
         t += params.sampleIntervalS) {
        double hour = std::fmod(t / 3600.0, 24.0);
        std::size_t day = std::min(
            static_cast<std::size_t>(t / 86400.0), day_count - 1);
        int dow = (params.startDayOfWeek +
                   static_cast<int>(day)) % 7;
        bool weekend = dow >= 5;
        std::array<double, jobClassCount> sample{};
        for (std::size_t i = 0; i < jobClassCount; ++i) {
            const ClassShape &sh = shapes[i];
            double amp = sh.amplitude * day_scale[day][i];
            // Batch work (MapReduce) does not dip on weekends; the
            // interactive classes do.
            if (weekend && allJobClasses[i] != JobClass::MapReduce)
                amp *= params.weekendFactor;
            double v = sh.base + amp *
                diurnalBump(hour, sh.peakHour, sh.concentration);
            noise_state[i] = 0.8 * noise_state[i] +
                0.2 * rng.normal();
            v *= 1.0 + params.noise * noise_state[i];
            sample[i] = std::max(v, 0.0);
        }
        trace.append(t, sample);
    }
    trace.normalize(params.targetMean, params.targetPeak);
    return trace;
}

} // namespace workload
} // namespace tts
