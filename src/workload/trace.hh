/**
 * @file
 * Multi-class datacenter load trace.
 *
 * A WorkloadTrace carries one normalized utilization series per job
 * class plus their total, mirroring Figure 10 of the paper.  Values
 * are fractions of cluster capacity in [0, 1].
 */

#ifndef TTS_WORKLOAD_TRACE_HH
#define TTS_WORKLOAD_TRACE_HH

#include <array>

#include "util/time_series.hh"
#include "workload/job.hh"

namespace tts {
namespace workload {

/** Normalized per-class + total load trace. */
class WorkloadTrace
{
  public:
    WorkloadTrace();

    /** Append one sample (per-class utilizations sum to the total). */
    void append(double t, const std::array<double,
                jobClassCount> &by_class);

    /** @return Total utilization at time t (clamped ends). */
    double totalAt(double t) const { return total_.at(t); }

    /** @return Class utilization at time t. */
    double classAt(JobClass c, double t) const;

    /** @return Mix fraction of a class at time t (0 when idle). */
    double classShareAt(JobClass c, double t) const;

    /** @return Total-load series. */
    const TimeSeries &total() const { return total_; }

    /** @return Per-class series. */
    const TimeSeries &series(JobClass c) const;

    /** @return Start time (s). */
    double startTime() const { return total_.startTime(); }
    /** @return End time (s). */
    double endTime() const { return total_.endTime(); }
    /** @return Number of samples. */
    std::size_t size() const { return total_.size(); }

    /** @return Peak total utilization. */
    double peak() const { return total_.max(); }
    /** @return Time-weighted mean total utilization. */
    double mean() const { return total_.mean(); }

    /**
     * Affine-renormalize the trace so the total has the given mean
     * and peak (e.g. the paper's 50 % average / 95 % peak).  The
     * offset is distributed across classes pro-rata to their means
     * so the per-class series still sum to the total.
     *
     * @throws FatalError if the transform would push any sample
     * below zero or the trace is degenerate (peak == mean).
     */
    void normalize(double target_mean, double target_peak);

  private:
    std::array<TimeSeries, jobClassCount> by_class_;
    TimeSeries total_;
};

} // namespace workload
} // namespace tts

#endif // TTS_WORKLOAD_TRACE_HH
