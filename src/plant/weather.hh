/**
 * @file
 * Weather traces for ambient-driven cooling backends.
 *
 * The economizer and MPC backends price their COP off the outdoor
 * ambient.  A WeatherTrace replaces the stylized sinusoidal
 * datacenter::AmbientModel with measured data, read from the CSV
 *
 *     t_hours,ambient_c
 *     0,11.5
 *     1,10.9
 *     ...
 *
 * The reader is hardened exactly like workload::readTraceCsv: every
 * malformed input (missing column, truncated row, non-numeric or
 * non-finite cell, out-of-order timestamp, physically absurd
 * temperature) is a FatalError naming the offending line, never a
 * silent skip - a cooling model quietly fed garbage weather would
 * misprice a year of electricity.
 *
 * WeatherSource unifies the trace and the sinusoid behind one
 * lookup and implements the WeatherGapStart/End fault semantics:
 * while a gap is active the source holds the last reading it
 * delivered (the plant keeps running on stale weather), and the held
 * value is checkpointable so a resumed run replays bit-identically.
 */

#ifndef TTS_PLANT_WEATHER_HH
#define TTS_PLANT_WEATHER_HH

#include <iosfwd>
#include <string>

#include "datacenter/free_cooling.hh"
#include "util/time_series.hh"

namespace tts {
namespace plant {

/** An immutable measured ambient-temperature trace. */
class WeatherTrace
{
  public:
    /** Coldest credible screen temperature (C); colder is a typo. */
    static constexpr double minCredibleC = -90.0;
    /** Hottest credible screen temperature (C). */
    static constexpr double maxCredibleC = 60.0;

    /**
     * Parse the t_hours,ambient_c CSV.  @throws FatalError with the
     * offending line number on any malformed input (see file
     * comment).
     */
    static WeatherTrace read(std::istream &in);

    /** read() on a string. @throws FatalError */
    static WeatherTrace parse(const std::string &text);

    /** read() on a file. @throws FatalError (unreadable path too). */
    static WeatherTrace load(const std::string &path);

    /**
     * Ambient at time t (s), linearly interpolated; times outside
     * the trace span clamp to the end samples.
     */
    double at(double t_s) const { return series_.at(t_s); }

    /** @return Number of samples (>= 2). */
    std::size_t size() const { return series_.size(); }

    /** @return First sample time (s). */
    double startS() const { return series_.startTime(); }
    /** @return Last sample time (s). */
    double endS() const { return series_.endTime(); }

    /** @return The underlying (t s, ambient C) series. */
    const TimeSeries &series() const { return series_; }

  private:
    TimeSeries series_{"ambient_c"};
};

/**
 * One ambient lookup over either a WeatherTrace or the sinusoidal
 * AmbientModel, with hold-last semantics during weather-trace gaps.
 */
class WeatherSource
{
  public:
    /** Sinusoidal fallback source. */
    explicit WeatherSource(const datacenter::AmbientModel &model);

    /** Measured-trace source. */
    explicit WeatherSource(WeatherTrace trace);

    /**
     * Ambient at time t.  While @p gap_active the last delivered
     * reading is held (the WeatherGapStart fault); otherwise the
     * fresh value is read and becomes the new held reading.
     */
    double at(double t_s, bool gap_active = false);

    /** @return True when backed by a measured trace. */
    bool fromTrace() const { return from_trace_; }

    /** @return The held (last delivered) reading (checkpointing). */
    double heldC() const { return held_c_; }

    /** Restore the held reading from a checkpoint. */
    void setHeldC(double c) { held_c_ = c; }

  private:
    bool from_trace_;
    datacenter::AmbientModel model_;
    WeatherTrace trace_;
    double held_c_;
};

} // namespace plant
} // namespace tts

#endif // TTS_PLANT_WEATHER_HH
