/**
 * @file
 * Light cooling-plant backend selection (tts::plant).
 *
 * This header is the only piece of tts::plant that core::RunConfig
 * embeds, so it must stay dependency-free: a backend kind, the
 * weather-trace path the economizer/MPC backends consume, and the
 * name round-trip used by the CLI and the serve protocol.  The
 * heavyweight knobs (loop effectiveness, controller horizon, ...)
 * live in plant::PlantTuning (backend.hh) and never travel through
 * RunConfig.
 */

#ifndef TTS_PLANT_OPTIONS_HH
#define TTS_PLANT_OPTIONS_HH

#include <string>

namespace tts {
namespace plant {

/** The pluggable cooling-plant backends. */
enum class BackendKind
{
    Crac,       //!< Paper's CRAC plant (datacenter::CoolingSystem).
    HotWater,   //!< Hot-water loop with energy reuse (iDataCool).
    Economizer, //!< Free-air economizer under a weather trace.
    Mpc,        //!< Receding-horizon melt/fan/DVFS controller.
};

/** Number of distinct backend kinds. */
constexpr std::size_t backendKindCount = 4;

/** @return Stable text name ("crac", "hot_water", ...). */
const char *toString(BackendKind kind);

/** @return Kind parsed from its toString() name. @throws FatalError */
BackendKind backendKindFromString(const std::string &name);

/**
 * Backend selection, shared through core::RunConfig.  The default
 * (CRAC, no weather trace) reproduces every pre-plant study
 * bit-for-bit.
 */
struct PlantOptions
{
    /** Which plant backend removes the cluster's heat. */
    BackendKind kind = BackendKind::Crac;
    /**
     * Weather-trace CSV (t_hours,ambient_c) for the economizer and
     * MPC backends; empty falls back to the sinusoidal
     * datacenter::AmbientModel.
     */
    std::string weatherPath;

    /** @return True when the selection differs from the default. */
    bool isDefault() const
    {
        return kind == BackendKind::Crac && weatherPath.empty();
    }
};

} // namespace plant
} // namespace tts

#endif // TTS_PLANT_OPTIONS_HH
