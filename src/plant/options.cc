#include "plant/options.hh"

#include "util/error.hh"

namespace tts {
namespace plant {

namespace {

const char *const kindNames[backendKindCount] = {
    "crac",
    "hot_water",
    "economizer",
    "mpc",
};

} // namespace

const char *
toString(BackendKind kind)
{
    auto i = static_cast<std::size_t>(kind);
    invariant(i < backendKindCount, "toString: bad BackendKind");
    return kindNames[i];
}

BackendKind
backendKindFromString(const std::string &name)
{
    for (std::size_t i = 0; i < backendKindCount; ++i) {
        if (name == kindNames[i])
            return static_cast<BackendKind>(i);
    }
    fatal("plant: unknown backend '" + name +
          "' (want crac|hot_water|economizer|mpc)");
}

} // namespace plant
} // namespace tts
