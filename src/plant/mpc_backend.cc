/**
 * @file
 * Receding-horizon melt/fan/DVFS controller (arXiv 2604.16199
 * style, on the repo's deterministic arithmetic).
 *
 * The controller owns a PCM cold buffer (the "melt state"): charging
 * freezes wax with extra plant load now, discharging melts it to
 * absorb IT heat later.  Each step it runs an exact dynamic program
 * over the next `mpcHorizonSteps` forecast samples, with state =
 * discretized buffer level and joint action = (buffer delta, fan
 * level, DVFS cap), minimizing time-of-use electricity cost plus a
 * penalty for compute shed by the DVFS cap, then applies only the
 * first action (classic MPC).  The plant efficiency model is the
 * economizer COP at the forecast ambient scaled by a fan factor, so
 * the controller exploits both tariff arbitrage (charge off-peak)
 * and weather arbitrage (charge in the cold hours).
 *
 * Everything is single-threaded closed-form arithmetic over the
 * forecast: no RNG, no iteration-order freedom, so results are
 * bit-identical at any thread count, and the whole mutable state
 * (buffer fill + forecast cursor) serializes in two checkpoint
 * keys.
 *
 * The terminal value of stored buffer energy is zero, so with the
 * do-nothing action (delta 0, fan 1, cap 1) always available the
 * controller never pays for charge it cannot monetize inside the
 * window; in practice it beats the static backends whenever the
 * tariff spread or the diurnal COP swing is non-trivial
 * (bench/perf_plant gates the margin).
 *
 * Degraded-plant steps (capacityFraction < 1) pin the buffer (delta
 * forced to 0) and shed load proportionally like the other
 * backends: a tripped plant has no headroom for arbitrage.
 */

#include <algorithm>
#include <cmath>
#include <vector>

#include "plant/backend.hh"
#include "util/error.hh"
#include "util/units.hh"

namespace tts {
namespace plant {

namespace {

/** COP multiplier for a fan level (slower air, worse exchange). */
double
fanCopFactor(double fan)
{
    return 0.85 + 0.15 * fan;
}

class MpcBackend final : public CoolingBackend
{
  public:
    explicit MpcBackend(const PlantTuning &tuning) : tuning_(tuning)
    {
        require(tuning_.mpcHorizonSteps >= 1,
                "MpcBackend: horizon must be >= 1 step");
        require(tuning_.mpcBufferLevels >= 1,
                "MpcBackend: need >= 1 buffer level");
        require(tuning_.mpcRoundTripEff > 0.0 &&
                    tuning_.mpcRoundTripEff <= 1.0,
                "MpcBackend: round-trip efficiency must be in "
                "(0, 1]");
        require(tuning_.mpcFanFraction >= 0.0 &&
                    tuning_.mpcDvfsPenaltyPerKWh >= 0.0,
                "MpcBackend: overheads must be >= 0");
        // Validate the efficiency model up front.
        tuning_.economizer.copAt(tuning_.economizer.returnAirC);
    }

    const char *name() const override { return "mpc"; }

    void
    setForecast(const TimeSeries &load_w,
                const TimeSeries &ambient_c) override
    {
        require(load_w.size() >= 2,
                "MpcBackend: forecast needs >= 2 samples");
        require(load_w.size() == ambient_c.size(),
                "MpcBackend: load/ambient forecasts must share the "
                "sample grid");
        load_ = load_w;
        ambient_ = ambient_c;
        double mean = std::max(load_.mean(), 0.0);
        buffer_cap_j_ = tuning_.mpcBufferJ > 0.0
            ? tuning_.mpcBufferJ
            : tuning_.mpcBufferHoursOfMeanLoad * 3600.0 * mean;
        level_j_ = buffer_cap_j_ /
            static_cast<double>(tuning_.mpcBufferLevels);
    }

    void
    reset() override
    {
        buffer_j_ = 0.0;
        cursor_ = 0;
    }

    PlantStepResult
    step(const PlantStep &in) override
    {
        require(!load_.empty(),
                "MpcBackend: setForecast() must run before step()");
        double load = std::max(in.heatLoadW, 0.0);
        PlantStepResult out;
        out.bufferJ = buffer_j_;

        // Degraded plant or a zero-length tail step: no arbitrage,
        // serve what capacity survives at the do-nothing action.
        if (in.dtS <= 0.0 || in.capacityFraction < 1.0 ||
            level_j_ <= 0.0) {
            out.servedW = load * in.capacityFraction;
            out.electricW = staticElectric(out.servedW, in.ambientC);
            ++cursor_;
            return out;
        }

        Action act = plan(in);
        double eff_load = act.dvfs * load;
        double charge_w = 0.0, relief_w = 0.0;
        if (act.delta > 0)
            charge_w = level_j_ /
                (tuning_.mpcRoundTripEff * in.dtS);
        else if (act.delta < 0)
            relief_w = level_j_ / in.dtS;
        double plant_w = std::max(0.0, eff_load + charge_w -
                                           relief_w);
        double cop = tuning_.economizer.copAt(in.ambientC) *
            fanCopFactor(act.fan);
        out.electricW = plant_w / cop +
            tuning_.mpcFanFraction * plant_w * act.fan * act.fan *
                act.fan;
        out.servedW = eff_load;
        out.dvfsCap = act.dvfs;
        out.fanLevel = act.fan;
        if (act.delta < 0)
            out.dischargedJ = level_j_;
        buffer_j_ = std::clamp(buffer_j_ +
                                   static_cast<double>(act.delta) *
                                       level_j_,
                               0.0, buffer_cap_j_);
        out.bufferJ = buffer_j_;
        ++cursor_;
        return out;
    }

    void
    save(guard::CheckpointWriter &w) const override
    {
        w.section("plant.mpc");
        w.put("buffer_j", buffer_j_);
        w.putU64("cursor", cursor_);
    }

    void
    restore(guard::CheckpointReader &r) override
    {
        r.expectSection("plant.mpc");
        buffer_j_ = r.expect("buffer_j");
        cursor_ = r.expectU64("cursor");
    }

  private:
    struct Action
    {
        int delta = 0;     //!< Buffer level change.
        double fan = 1.0;  //!< Fan level.
        double dvfs = 1.0; //!< DVFS cap.
    };

    double
    staticElectric(double plant_w, double ambient_c) const
    {
        double cop = tuning_.economizer.copAt(ambient_c);
        return plant_w / cop + tuning_.mpcFanFraction * plant_w;
    }

    /**
     * Cost (USD) of one DP step at the given forecast sample under
     * one joint action, plus whether the action is feasible from
     * buffer level @p level.
     */
    double
    actionCost(double t_s, double dt_s, double load_w,
               double ambient_c, const Action &a) const
    {
        double eff_load = a.dvfs * load_w;
        double charge_w = 0.0, relief_w = 0.0;
        if (a.delta > 0)
            charge_w = level_j_ / (tuning_.mpcRoundTripEff * dt_s);
        else if (a.delta < 0)
            relief_w = level_j_ / dt_s;
        double plant_w = std::max(0.0, eff_load + charge_w -
                                           relief_w);
        double cop = tuning_.economizer.copAt(ambient_c) *
            fanCopFactor(a.fan);
        double electric_w = plant_w / cop +
            tuning_.mpcFanFraction * plant_w * a.fan * a.fan *
                a.fan;
        double cost = tuning_.tariff.priceAt(t_s) *
            units::toKWh(electric_w * dt_s);
        cost += tuning_.mpcDvfsPenaltyPerKWh *
            units::toKWh((1.0 - a.dvfs) * load_w * dt_s);
        return cost;
    }

    /** Receding-horizon DP; returns the first action to apply. */
    Action
    plan(const PlantStep &in) const
    {
        const auto &times = load_.times();
        const auto &loads = load_.values();
        const auto &ambients = ambient_.values();
        std::size_t n = times.size();
        std::size_t k0 = std::min<std::size_t>(cursor_, n - 1);
        std::size_t horizon = std::min<std::size_t>(
            tuning_.mpcHorizonSteps, n - 1 - k0);
        std::size_t levels = tuning_.mpcBufferLevels;
        int cur_level = static_cast<int>(
            std::lround(buffer_j_ / level_j_));
        cur_level = std::clamp(cur_level, 0,
                               static_cast<int>(levels));

        if (horizon == 0)
            return Action{};

        // value[s]: optimal cost-to-go from buffer level s at the
        // step currently being relaxed; terminal value is zero, so
        // unmonetized charge is never bought.
        std::vector<double> value(levels + 1, 0.0);
        std::vector<double> next = value;
        std::vector<Action> first(levels + 1);

        for (std::size_t back = horizon; back-- > 0;) {
            std::size_t k = k0 + back;
            double t = times[k];
            double dt = times[k + 1] - times[k];
            double load_f = back == 0 ? std::max(in.heatLoadW, 0.0)
                                      : std::max(loads[k], 0.0);
            double ambient_f = back == 0 ? in.ambientC
                                         : ambients[k];
            std::swap(next, value);
            for (std::size_t s = 0; s <= levels; ++s) {
                double best = 0.0;
                Action best_a;
                bool have = false;
                for (int delta = -1; delta <= 1; ++delta) {
                    int s2 = static_cast<int>(s) + delta;
                    if (s2 < 0 ||
                        s2 > static_cast<int>(levels))
                        continue;
                    for (double fan : tuning_.mpcFanLevels) {
                        for (double dvfs : tuning_.mpcDvfsCaps) {
                            Action a{delta, fan, dvfs};
                            double c =
                                actionCost(t, dt, load_f,
                                           ambient_f, a) +
                                next[static_cast<std::size_t>(s2)];
                            if (!have || c < best) {
                                have = true;
                                best = c;
                                best_a = a;
                            }
                        }
                    }
                }
                value[s] = best;
                first[s] = best_a;
            }
        }
        return first[static_cast<std::size_t>(cur_level)];
    }

    PlantTuning tuning_;
    TimeSeries load_;
    TimeSeries ambient_;
    double buffer_cap_j_ = 0.0;
    double level_j_ = 0.0;
    double buffer_j_ = 0.0;
    std::uint64_t cursor_ = 0;
};

} // namespace

std::unique_ptr<CoolingBackend>
makeMpcBackend(const PlantTuning &tuning)
{
    return std::make_unique<MpcBackend>(tuning);
}

} // namespace plant
} // namespace tts
