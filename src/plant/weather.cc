#include "plant/weather.hh"

#include <cmath>
#include <fstream>
#include <sstream>
#include <vector>

#include "util/error.hh"
#include "util/units.hh"

namespace tts {
namespace plant {

namespace {

std::vector<std::string>
splitCsvLine(const std::string &line)
{
    std::vector<std::string> cells;
    std::string cell;
    std::istringstream ss(line);
    while (std::getline(ss, cell, ','))
        cells.push_back(cell);
    return cells;
}

double
parseNumber(const std::string &cell, const char *what,
            std::size_t line_no)
{
    try {
        std::size_t used = 0;
        double v = std::stod(cell, &used);
        // Allow trailing whitespace / CR only.
        for (std::size_t i = used; i < cell.size(); ++i) {
            char c = cell[i];
            require(c == ' ' || c == '\t' || c == '\r',
                    std::string("readWeatherCsv: trailing garbage "
                                "in ") + what + " at line " +
                        std::to_string(line_no));
        }
        return v;
    } catch (const std::invalid_argument &) {
        fatal(std::string("readWeatherCsv: non-numeric ") + what +
              " '" + cell + "' at line " + std::to_string(line_no));
    } catch (const std::out_of_range &) {
        fatal(std::string("readWeatherCsv: out-of-range ") + what +
              " at line " + std::to_string(line_no));
    }
}

std::string
trimmedCell(std::string cell)
{
    while (!cell.empty() &&
           (cell.back() == '\r' || cell.back() == ' '))
        cell.pop_back();
    return cell;
}

} // namespace

WeatherTrace
WeatherTrace::read(std::istream &in)
{
    std::string header;
    require(static_cast<bool>(std::getline(in, header)),
            "readWeatherCsv: empty input");
    auto columns = splitCsvLine(header);
    require(!columns.empty() && columns[0].rfind("t_", 0) == 0,
            "readWeatherCsv: first column must be the time "
            "(t_hours)");
    int ambient_col = -1;
    for (std::size_t i = 1; i < columns.size(); ++i) {
        if (trimmedCell(columns[i]) == "ambient_c")
            ambient_col = static_cast<int>(i);
    }
    require(ambient_col >= 0,
            "readWeatherCsv: missing column 'ambient_c'");

    WeatherTrace trace;
    std::string line;
    std::size_t line_no = 1;
    bool have_last_t = false;
    double last_t = 0.0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty() || line == "\r")
            continue;
        auto cells = splitCsvLine(line);
        // Truncated rows (a cut-off download, a partial write) must
        // fail loudly, not index out of range.
        require(cells.size() >= columns.size(),
                "readWeatherCsv: short row at line " +
                    std::to_string(line_no));
        double t = units::hours(parseNumber(cells[0], "time",
                                            line_no));
        require(std::isfinite(t),
                "readWeatherCsv: non-finite time at line " +
                    std::to_string(line_no));
        require(!have_last_t || t > last_t,
                "readWeatherCsv: out-of-order timestamp at line " +
                    std::to_string(line_no) +
                    " (times must be strictly increasing)");
        last_t = t;
        have_last_t = true;
        double c = parseNumber(cells[ambient_col], "ambient",
                               line_no);
        require(std::isfinite(c),
                "readWeatherCsv: non-finite ambient at line " +
                    std::to_string(line_no));
        require(c >= minCredibleC && c <= maxCredibleC,
                "readWeatherCsv: implausible ambient at line " +
                    std::to_string(line_no) + " (want [" +
                    std::to_string(minCredibleC) + ", " +
                    std::to_string(maxCredibleC) + "] C)");
        trace.series_.append(t, c);
    }
    require(trace.size() >= 2, "readWeatherCsv: need >= 2 rows");
    return trace;
}

WeatherTrace
WeatherTrace::parse(const std::string &text)
{
    std::istringstream in(text);
    return read(in);
}

WeatherTrace
WeatherTrace::load(const std::string &path)
{
    std::ifstream in(path);
    require(in.good(),
            "WeatherTrace::load: cannot open '" + path + "'");
    return read(in);
}

WeatherSource::WeatherSource(const datacenter::AmbientModel &model)
    : from_trace_(false), model_(model), held_c_(model.at(0.0))
{
}

WeatherSource::WeatherSource(WeatherTrace trace)
    : from_trace_(true), trace_(std::move(trace)),
      held_c_(trace_.at(trace_.startS()))
{
}

double
WeatherSource::at(double t_s, bool gap_active)
{
    if (!gap_active)
        held_c_ = from_trace_ ? trace_.at(t_s) : model_.at(t_s);
    return held_c_;
}

} // namespace plant
} // namespace tts
