/**
 * @file
 * Golden values for the cooling-plant backends.
 *
 * Pins the `plant.*` keys: every backend run as an arm over the
 * same cluster-derived heat load (48 RD330 servers with the paper's
 * wax under the synthetic Google trace), a faulted hot-water arm
 * (pump failure + exchanger fouling), the CRAC-adapter equivalence
 * delta against datacenter::CoolingSystem (must be exactly zero),
 * and the MPC-vs-CRAC yearly saving the controller must sustain.
 * tools/tts_golden merges this map into tests/data/golden.json next
 * to core::computeGoldenValues() (plant sits above datacenter but
 * below core, so core cannot host these), and the integration test
 * recomputes both and diffs.
 */

#ifndef TTS_PLANT_GOLDEN_HH
#define TTS_PLANT_GOLDEN_HH

#include <map>
#include <string>

namespace tts {
namespace plant {

/** Recompute the pinned `plant.*` golden keys. */
std::map<std::string, double> computePlantGoldenValues();

} // namespace plant
} // namespace tts

#endif // TTS_PLANT_GOLDEN_HH
