#include "plant/backend.hh"

#include "util/error.hh"

namespace tts {
namespace plant {

std::unique_ptr<CoolingBackend>
makeBackend(BackendKind kind, const PlantTuning &tuning)
{
    switch (kind) {
      case BackendKind::Crac:
        return makeCracBackend(tuning);
      case BackendKind::HotWater:
        return makeHotWaterBackend(tuning);
      case BackendKind::Economizer:
        return makeEconomizerBackend(tuning);
      case BackendKind::Mpc:
        return makeMpcBackend(tuning);
    }
    fatal("makeBackend: bad BackendKind");
}

} // namespace plant
} // namespace tts
