/**
 * @file
 * The pluggable cooling-plant backend interface (tts::plant).
 *
 * A CoolingBackend turns one sample of plant heat load (plus the
 * ambient and the live fault state) into electric power, reused
 * heat, and - for the controlling backends - fan/DVFS/melt actions.
 * Four implementations ship:
 *
 *  - crac: the paper's plant, arithmetic bit-identical to
 *    datacenter::CoolingSystem so the default path repro every
 *    pre-plant golden key.
 *  - hot_water: iDataCool-style warm-water loop; a heat exchanger
 *    captures a fraction of the load into reusable hot water, the
 *    residue goes to a mechanical chiller, and a pump overhead is
 *    paid.  Pump failure falls back to a low-COP backup chiller;
 *    fouling erodes the exchanger effectiveness.
 *  - economizer: datacenter::EconomizerCoolingModel priced under a
 *    WeatherSource (measured trace or sinusoid).
 *  - mpc: a receding-horizon controller over a PCM cold buffer that
 *    co-schedules buffer charge/discharge (melt state), fan level,
 *    and a DVFS cap against a perfect load/weather forecast,
 *    minimizing time-of-use electricity cost plus a throughput
 *    penalty.  Pure arithmetic: bit-identical at any thread count.
 *
 * Backends are deliberately passive: all fault state arrives in the
 * PlantStep (the runner reads the fault::FaultInjector), so a
 * backend is a deterministic function of its inputs and its own
 * serialized controller state.
 */

#ifndef TTS_PLANT_BACKEND_HH
#define TTS_PLANT_BACKEND_HH

#include <memory>

#include "datacenter/cooling_system.hh"
#include "datacenter/free_cooling.hh"
#include "guard/checkpoint.hh"
#include "plant/options.hh"
#include "util/time_series.hh"

namespace tts {
namespace plant {

/** Numeric knobs for every backend (defaults match the paper). */
struct PlantTuning
{
    /** Time-of-use tariff: prices the study AND the MPC cost-to-go. */
    datacenter::ElectricityTariff tariff;

    /** CRAC coefficient of performance (paper: 3.5). */
    double cracCop = 3.5;

    /** Hot-water heat-exchanger capture effectiveness, in (0, 1]. */
    double hwEffectiveness = 0.75;
    /** COP of the chiller that removes the uncaptured residue. */
    double hwMechanicalCop = 3.5;
    /** COP of the backup chiller while the loop pump is failed. */
    double hwBackupCop = 2.0;
    /** Loop pump electric power as a fraction of the heat load. */
    double hwPumpFraction = 0.02;
    /** Price credit for captured reusable heat (USD/kWh thermal). */
    double hwReusePricePerKWh = 0.03;

    /** Economizer efficiency model (also the MPC plant model). */
    datacenter::EconomizerCoolingModel economizer;

    /** MPC lookahead window (forecast steps). */
    std::size_t mpcHorizonSteps = 36;
    /** PCM cold-buffer capacity (J of absorbable heat). */
    double mpcBufferJ = 0.0; //!< <= 0: sized from the forecast.
    /**
     * Buffer levels in the controller's value iteration.  One level
     * is the charge/discharge quantum per step, so keep a level
     * close to one control step of mean load - a coarse grid forces
     * discharges far larger than the instantaneous load, the excess
     * is clamped away, and the DP (correctly) never arbitrages.
     */
    std::size_t mpcBufferLevels = 24;
    /** Round-trip efficiency of buffer charge/discharge, in (0,1]. */
    double mpcRoundTripEff = 0.90;
    /** Fan electric overhead at full speed, fraction of heat load. */
    double mpcFanFraction = 0.005;
    /** Candidate fan levels (cube-law power, linear COP factor). */
    double mpcFanLevels[3] = {0.6, 0.8, 1.0};
    /** Candidate DVFS caps (fraction of nominal IT heat). */
    double mpcDvfsCaps[2] = {0.85, 1.0};
    /** Penalty for shed IT work (USD/kWh of lost compute). */
    double mpcDvfsPenaltyPerKWh = 0.60;

    /** Auto-sized buffer: hours of mean load it can absorb. */
    double mpcBufferHoursOfMeanLoad = 2.0;
};

/** One plant step: the runner fills this from sim + fault state. */
struct PlantStep
{
    /** Sample time (s since scenario start). */
    double timeS = 0.0;
    /** Forward interval to the next sample (s; 0 on the last). */
    double dtS = 0.0;
    /** IT heat arriving at the plant this sample (W, >= 0). */
    double heatLoadW = 0.0;
    /** Outdoor ambient (C), already gap-held by the runner. */
    double ambientC = 18.0;
    /** Surviving plant capacity fraction in [0, 1] (CoolingTrip). */
    double capacityFraction = 1.0;
    /** True while the loop pump is failed (hot-water backup mode). */
    bool pumpFailed = false;
    /** Heat-exchanger effectiveness fraction lost to fouling. */
    double hxFouling = 0.0;
};

/** What one step produced. */
struct PlantStepResult
{
    /** Plant electric power (W). */
    double electricW = 0.0;
    /** Heat actually removed (W); the rest is unserved. */
    double servedW = 0.0;
    /** Heat captured into the reuse loop (W). */
    double reusedW = 0.0;
    /** DVFS cap chosen (1 = uncapped; MPC only). */
    double dvfsCap = 1.0;
    /** Fan level chosen (MPC only; 1 otherwise). */
    double fanLevel = 1.0;
    /** Cold-buffer fill after the step (J; MPC only). */
    double bufferJ = 0.0;
    /** Buffer energy discharged this step (J; MPC only). */
    double dischargedJ = 0.0;
};

/** A pluggable cooling-plant backend (see file comment). */
class CoolingBackend
{
  public:
    virtual ~CoolingBackend() = default;

    /** @return The BackendKind name ("crac", ...). */
    virtual const char *name() const = 0;

    /** Advance one sample; called in strictly increasing time. */
    virtual PlantStepResult step(const PlantStep &in) = 0;

    /**
     * Perfect forecast for lookahead controllers (no-op for the
     * static backends).  @p load_w and @p ambient_c are sampled on
     * the runner's step grid.
     */
    virtual void setForecast(const TimeSeries &load_w,
                             const TimeSeries &ambient_c)
    {
        (void)load_w;
        (void)ambient_c;
    }

    /** Reset all mutable state to the initial (t = 0) condition. */
    virtual void reset() = 0;

    /** Serialize mutable controller state (a named section). */
    virtual void save(guard::CheckpointWriter &w) const = 0;

    /** Restore state written by save(). @throws FatalError */
    virtual void restore(guard::CheckpointReader &r) = 0;
};

/** @return A fresh backend of the given kind. @throws FatalError */
std::unique_ptr<CoolingBackend> makeBackend(BackendKind kind,
                                            const PlantTuning &tuning);

/** Internal per-kind factories (each lives in its own TU). */
std::unique_ptr<CoolingBackend>
makeCracBackend(const PlantTuning &tuning);
std::unique_ptr<CoolingBackend>
makeHotWaterBackend(const PlantTuning &tuning);
std::unique_ptr<CoolingBackend>
makeEconomizerBackend(const PlantTuning &tuning);
std::unique_ptr<CoolingBackend>
makeMpcBackend(const PlantTuning &tuning);

} // namespace plant
} // namespace tts

#endif // TTS_PLANT_BACKEND_HH
