/**
 * @file
 * Cooling-plant study runner (tts::plant).
 *
 * runPlant() drives one CoolingBackend over a plant heat-load
 * series sample by sample: it replays the fault schedule through a
 * fault::FaultInjector (cooling trips, pump failures, exchanger
 * fouling, weather gaps), resolves the ambient through a
 * WeatherSource (measured trace or sinusoid, hold-last during
 * gaps), prices the resulting electric series on the time-of-use
 * tariff, credits reused heat, and penalizes DVFS-shed compute.
 * The loop is checkpointable through tts::guard with the same
 * policy semantics as the resilience runner (restore-if-exists,
 * periodic writes, stop-after pause), and a resumed run is
 * bit-identical to an uninterrupted one.
 *
 * compareBackends() runs several backends as arms of one scenario
 * through exec::ThreadPool with index-keyed result slots, so the
 * comparison is bit-identical at any thread count.
 */

#ifndef TTS_PLANT_STUDY_HH
#define TTS_PLANT_STUDY_HH

#include <string>
#include <vector>

#include "datacenter/cluster.hh"
#include "datacenter/free_cooling.hh"
#include "exec/parallel.hh"
#include "fault/fault_schedule.hh"
#include "plant/backend.hh"
#include "plant/options.hh"
#include "util/time_series.hh"
#include "workload/trace.hh"

namespace tts {
namespace plant {

/** One plant scenario: the heat to remove and what goes wrong. */
struct PlantScenario
{
    /** Plant heat-load series (W); strictly increasing times. */
    TimeSeries loadW;
    /** Fault schedule replayed against the run. */
    fault::FaultSchedule faults;
    /** Servers addressable by per-server fault kinds. */
    std::size_t serverCount = 1;
    /** Span for yearly scaling (days); <= 0 derives from loadW. */
    double spanDays = 0.0;
};

/** Checkpoint policy (mirrors core::CheckpointPolicy semantics). */
struct PlantCheckpointPolicy
{
    /** Checkpoint file; empty disables.  Existing file restores. */
    std::string path;
    /** Simulated seconds between checkpoint writes. */
    double checkpointEveryS = 900.0;
    /** Pause after this much simulated time (< 0: run to end). */
    double stopAfterS = -1.0;
};

/** Full study configuration. */
struct PlantConfig
{
    /** Backend selection (kind + weather trace path). */
    PlantOptions options;
    /** Backend numeric knobs (tariff included). */
    PlantTuning tuning;
    /** Sinusoidal ambient used when no weather trace is given. */
    datacenter::AmbientModel ambient;
    /** Inline weather CSV text (serve requests, tests); takes
     *  precedence over options.weatherPath. */
    std::string weatherText;
    /** Checkpoint policy. */
    PlantCheckpointPolicy checkpoint;
    /** Keep the electric series in the result. */
    bool recordSeries = true;
};

/** Outputs of one plant run. */
struct PlantResult
{
    /** Backend name ("crac", ...). */
    std::string backend;
    /** True when the run reached the end of the load series. */
    bool finished = false;
    /** Samples stepped (including any resumed prefix). */
    std::size_t steps = 0;
    /** Fault events applied. */
    std::size_t faultEventsApplied = 0;

    /** Plant electric energy (J). */
    double electricEnergyJ = 0.0;
    /** Peak plant electric power (W). */
    double peakElectricW = 0.0;
    /** Tariff-priced electricity cost over the span (USD). */
    double energyCostUsd = 0.0;
    /** Heat captured for reuse (J). */
    double reusedEnergyJ = 0.0;
    /** Reuse credit (USD). */
    double reuseCreditUsd = 0.0;
    /** Compute shed by DVFS caps (J of IT heat equivalent). */
    double shedComputeJ = 0.0;
    /** DVFS shed penalty (USD). */
    double dvfsPenaltyUsd = 0.0;
    /** energyCost + dvfsPenalty - reuseCredit (USD). */
    double netCostUsd = 0.0;
    /** netCostUsd scaled to a year. */
    double yearlyNetCostUsd = 0.0;
    /** Heat left unserved by a degraded plant (J). */
    double unservedJ = 0.0;
    /** Served IT work fraction (1 unless DVFS caps engaged). */
    double throughputRetention = 1.0;
    /** Cold-buffer energy discharged over the run (J; MPC). */
    double bufferDischargeJ = 0.0;

    /** Electric power series (empty unless recordSeries). */
    TimeSeries electricW;
};

/**
 * Run one backend over the scenario (see file comment).
 *
 * @throws FatalError on a malformed scenario (short or non-finite
 * load series), an unreadable weather trace, or a corrupt
 * checkpoint.
 */
PlantResult runPlant(const PlantScenario &scenario,
                     const PlantConfig &config);

/** A multi-backend comparison over one scenario. */
struct PlantComparison
{
    /** One result per requested kind, in request order. */
    std::vector<PlantResult> arms;
    /**
     * (crac - mpc) / crac yearly net cost, when both arms ran;
     * positive means the controller beats the static plant.
     */
    double mpcVsCracSaving = 0.0;
};

/**
 * Run several backends as arms of one scenario, in parallel across
 * @p pool (nullptr: a default pool), bit-identical at any width.
 * Checkpointing is disabled inside the arms.
 */
PlantComparison compareBackends(const PlantScenario &scenario,
                                const PlantConfig &config,
                                const std::vector<BackendKind> &kinds,
                                exec::ThreadPool *pool = nullptr);

/**
 * Plant heat load of a homogeneous cluster run: a thin wrapper over
 * datacenter::Cluster, the bridge from the paper's studies into the
 * plant layer.
 */
TimeSeries clusterCoolingLoad(
    const server::ServerSpec &spec, const server::WaxConfig &wax,
    std::size_t server_count, const workload::WorkloadTrace &trace,
    const datacenter::ClusterRunOptions &options =
        datacenter::ClusterRunOptions{});

} // namespace plant
} // namespace tts

#endif // TTS_PLANT_STUDY_HH
