#include "plant/golden.hh"

#include <cmath>

#include "datacenter/cooling_system.hh"
#include "plant/study.hh"
#include "server/server_model.hh"
#include "server/server_spec.hh"
#include "workload/google_trace.hh"

namespace tts {
namespace plant {

namespace {

/** The pinned scenario: a 48-server RD330 pod, paper wax. */
PlantScenario
goldenScenario()
{
    PlantScenario scenario;
    scenario.loadW = clusterCoolingLoad(
        server::rd330Spec(), server::WaxConfig::paper(), 48,
        workload::makeGoogleTrace());
    return scenario;
}

void
putArm(std::map<std::string, double> &g, const PlantResult &r)
{
    const std::string p = "plant." + r.backend;
    g[p + ".electric_energy_kwh"] = r.electricEnergyJ / 3.6e6;
    g[p + ".peak_electric_w"] = r.peakElectricW;
    g[p + ".yearly_net_cost_usd"] = r.yearlyNetCostUsd;
}

} // namespace

std::map<std::string, double>
computePlantGoldenValues()
{
    std::map<std::string, double> g;
    PlantScenario scenario = goldenScenario();
    PlantConfig config;
    config.recordSeries = true;

    auto cmp = compareBackends(
        scenario, config,
        {BackendKind::Crac, BackendKind::HotWater,
         BackendKind::Economizer, BackendKind::Mpc});

    for (const auto &arm : cmp.arms)
        putArm(g, arm);
    g["plant.hot_water.reuse_credit_usd_year"] =
        cmp.arms[1].reuseCreditUsd * 365.25 /
        ((scenario.loadW.endTime() - scenario.loadW.startTime()) /
         86400.0);
    g["plant.mpc.buffer_discharge_kwh"] =
        cmp.arms[3].bufferDischargeJ / 3.6e6;
    g["plant.mpc.throughput_retention"] =
        cmp.arms[3].throughputRetention;
    g["plant.mpc_vs_crac.saving_fraction"] = cmp.mpcVsCracSaving;

    // CRAC adapter equivalence: the default backend must price
    // exactly like the paper's datacenter::CoolingSystem.
    datacenter::CoolingSystem legacy(
        std::max(scenario.loadW.max(), 1.0), config.tuning.cracCop);
    double legacy_cost = legacy.energyCost(scenario.loadW,
                                           config.tuning.tariff);
    double span_days =
        (scenario.loadW.endTime() - scenario.loadW.startTime()) /
        86400.0;
    double legacy_yearly = legacy_cost * 365.25 / span_days;
    g["plant.adapter.cost_delta_usd"] =
        std::abs(cmp.arms[0].yearlyNetCostUsd - legacy_yearly);

    // A faulted hot-water arm: pump failure then exchanger fouling.
    PlantScenario faulted = scenario;
    faulted.faults.add(6.0 * 3600.0, fault::FaultKind::PumpFailure);
    faulted.faults.add(10.0 * 3600.0, fault::FaultKind::PumpRepair);
    faulted.faults.add(20.0 * 3600.0, fault::FaultKind::HxFouling,
                       fault::FaultEvent::noTarget, 0.3);
    PlantConfig hw = config;
    hw.options.kind = BackendKind::HotWater;
    PlantResult fr = runPlant(faulted, hw);
    g["plant.hot_water.faulted_yearly_net_cost_usd"] =
        fr.yearlyNetCostUsd;
    g["plant.hot_water.faulted_events"] =
        static_cast<double>(fr.faultEventsApplied);

    return g;
}

} // namespace plant
} // namespace tts
