#include "plant/study.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "fault/fault_injector.hh"
#include "guard/checkpoint.hh"
#include "obs/obs.hh"
#include "obs/trace.hh"
#include "plant/weather.hh"
#include "util/error.hh"
#include "util/units.hh"

namespace tts {
namespace plant {

namespace {

/** Checkpoint exists <=> restorable. */
bool
fileExists(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f)
        std::fclose(f);
    return f != nullptr;
}

WeatherSource
makeWeather(const PlantConfig &config)
{
    if (!config.weatherText.empty())
        return WeatherSource(
            WeatherTrace::parse(config.weatherText));
    if (!config.options.weatherPath.empty())
        return WeatherSource(
            WeatherTrace::load(config.options.weatherPath));
    return WeatherSource(config.ambient);
}

/** Gap-free ambient forecast on the load sample grid. */
TimeSeries
ambientForecast(const PlantConfig &config, const TimeSeries &load_w)
{
    WeatherSource src = makeWeather(config);
    TimeSeries out("ambient_c");
    for (std::size_t i = 0; i < load_w.size(); ++i) {
        double t = load_w.times()[i];
        out.append(t, src.at(t));
    }
    return out;
}

/** Mutable loop state: everything a checkpoint must capture. */
struct RunState
{
    std::size_t next = 0; //!< Next load-series sample index.
    TimeSeries electric{"plant_electric_w"};
    double reusedJ = 0.0;
    double unservedJ = 0.0;
    double shedComputeJ = 0.0;
    double servedComputeJ = 0.0;
    double nominalComputeJ = 0.0;
    double dischargeJ = 0.0;
};

void
saveRun(guard::CheckpointWriter &w, const RunState &st,
        const std::string &backend, const WeatherSource &weather,
        const fault::FaultInjector &inj)
{
    w.section("plant.run");
    w.putToken("backend", backend);
    w.putU64("next", st.next);
    w.putVector("electric.t", st.electric.times());
    w.putVector("electric.v", st.electric.values());
    w.put("reused_j", st.reusedJ);
    w.put("unserved_j", st.unservedJ);
    w.put("shed_j", st.shedComputeJ);
    w.put("served_work_j", st.servedComputeJ);
    w.put("nominal_work_j", st.nominalComputeJ);
    w.put("discharge_j", st.dischargeJ);
    w.put("weather.held_c", weather.heldC());
    fault::FaultInjector::State is = inj.state();
    w.putU64("inj.next", is.next);
    w.put("inj.now", is.now);
    w.put("inj.cooling_lost", is.coolingLostFraction);
    w.putBool("inj.pump_failed", is.pumpFailed);
    w.put("inj.hx_fouling", is.hxFoulingFraction);
    w.putI64("inj.weather_gap_depth", is.weatherGapDepth);
}

void
restoreRun(guard::CheckpointReader &r, RunState &st,
           const std::string &backend, WeatherSource &weather,
           fault::FaultInjector &inj)
{
    r.expectSection("plant.run");
    std::string got = r.expectToken("backend");
    require(got == backend,
            "plant checkpoint: backend mismatch (checkpoint has '" +
                got + "', run wants '" + backend + "')");
    st.next = static_cast<std::size_t>(r.expectU64("next"));
    std::vector<double> ts = r.expectVector("electric.t");
    std::vector<double> vs = r.expectVector("electric.v");
    require(ts.size() == vs.size(),
            "plant checkpoint: electric series length mismatch");
    st.electric = TimeSeries("plant_electric_w");
    for (std::size_t i = 0; i < ts.size(); ++i)
        st.electric.append(ts[i], vs[i]);
    st.reusedJ = r.expect("reused_j");
    st.unservedJ = r.expect("unserved_j");
    st.shedComputeJ = r.expect("shed_j");
    st.servedComputeJ = r.expect("served_work_j");
    st.nominalComputeJ = r.expect("nominal_work_j");
    st.dischargeJ = r.expect("discharge_j");
    weather.setHeldC(r.expect("weather.held_c"));
    fault::FaultInjector::State is = inj.state();
    is.next = static_cast<std::size_t>(r.expectU64("inj.next"));
    is.now = r.expect("inj.now");
    is.coolingLostFraction = r.expect("inj.cooling_lost");
    is.pumpFailed = r.expectBool("inj.pump_failed");
    is.hxFoulingFraction = r.expect("inj.hx_fouling");
    is.weatherGapDepth = static_cast<int>(
        r.expectI64("inj.weather_gap_depth"));
    inj.restoreState(is);
}

} // namespace

PlantResult
runPlant(const PlantScenario &scenario, const PlantConfig &config)
{
    const TimeSeries &load = scenario.loadW;
    require(load.size() >= 2,
            "runPlant: load series needs >= 2 samples");
    for (double v : load.values())
        require(std::isfinite(v),
                "runPlant: non-finite load sample");
    require(scenario.serverCount >= 1,
            "runPlant: need at least one server");

    auto backend = makeBackend(config.options.kind, config.tuning);
    WeatherSource weather = makeWeather(config);
    backend->setForecast(load, ambientForecast(config, load));
    backend->reset();
    fault::FaultInjector inj(scenario.faults, scenario.serverCount);

    RunState st;
    const PlantCheckpointPolicy &ckpt = config.checkpoint;
    if (!ckpt.path.empty() && fileExists(ckpt.path)) {
        guard::CheckpointReader r(
            guard::readCheckpointFile(ckpt.path), ckpt.path);
        restoreRun(r, st, backend->name(), weather, inj);
        backend->restore(r);
        r.expectEnd();
        TTS_OBS_EVENT(obs::EventKind::CheckpointRestore,
                      st.next ? load.times()[st.next - 1] : 0.0,
                      "plant", static_cast<double>(st.next), -1);
    }

    const auto &times = load.times();
    const auto &values = load.values();
    const std::size_t n = times.size();
    const double start_t = st.next < n ? times[st.next]
                                       : times[n - 1];
    double last_ckpt_t = start_t;
    bool paused = false;

    auto writeCheckpoint = [&](double now) {
        guard::CheckpointWriter w;
        saveRun(w, st, backend->name(), weather, inj);
        backend->save(w);
        guard::writeCheckpointFile(ckpt.path, w.finish());
        TTS_OBS_EVENT(obs::EventKind::CheckpointSave, now, "plant",
                      static_cast<double>(st.next), -1);
        last_ckpt_t = now;
    };

    while (st.next < n) {
        std::size_t i = st.next;
        double t = times[i];
        double dt = i + 1 < n ? times[i + 1] - t : 0.0;
        inj.advanceTo(t);
        double ambient = weather.at(t, inj.weatherGapActive());

        PlantStep in;
        in.timeS = t;
        in.dtS = dt;
        in.heatLoadW = std::max(values[i], 0.0);
        in.ambientC = ambient;
        in.capacityFraction = inj.coolingCapacityFraction();
        in.pumpFailed = inj.pumpFailed();
        in.hxFouling = inj.hxFoulingFraction();
        PlantStepResult out = backend->step(in);

        st.electric.append(t, out.electricW);
        st.reusedJ += out.reusedW * dt;
        st.unservedJ +=
            std::max(in.heatLoadW - out.servedW, 0.0) * dt;
        st.shedComputeJ += (1.0 - out.dvfsCap) * in.heatLoadW * dt;
        st.servedComputeJ += out.dvfsCap * in.heatLoadW * dt;
        st.nominalComputeJ += in.heatLoadW * dt;
        st.dischargeJ += out.dischargedJ;
        st.next = i + 1;

        if (obs::enabled()) {
            static obs::Counter &steps =
                obs::registry().counter("plant.steps.total");
            steps.add(1);
            if (out.dvfsCap < 1.0 || out.fanLevel < 1.0 ||
                out.dischargedJ > 0.0 || out.bufferJ > 0.0)
                obs::emitEvent(obs::EventKind::PlantControl, t,
                               std::string("plant.") +
                                   backend->name(),
                               out.bufferJ,
                               static_cast<std::int64_t>(
                                   100.0 * out.dvfsCap));
        }

        if (!ckpt.path.empty()) {
            if (t - last_ckpt_t >= ckpt.checkpointEveryS)
                writeCheckpoint(t);
            if (ckpt.stopAfterS >= 0.0 && st.next < n &&
                t - start_t >= ckpt.stopAfterS) {
                writeCheckpoint(t);
                paused = true;
                break;
            }
        }
    }

    PlantResult result;
    result.backend = backend->name();
    result.finished = !paused && st.next >= n;
    result.steps = st.next;
    result.faultEventsApplied = inj.eventsApplied();
    result.reusedEnergyJ = st.reusedJ;
    result.unservedJ = st.unservedJ;
    result.shedComputeJ = st.shedComputeJ;
    result.bufferDischargeJ = st.dischargeJ;
    result.throughputRetention = st.nominalComputeJ > 0.0
        ? st.servedComputeJ / st.nominalComputeJ
        : 1.0;

    if (result.finished) {
        result.electricEnergyJ = st.electric.integral(
            st.electric.startTime(), st.electric.endTime());
        result.peakElectricW = st.electric.max();
        result.energyCostUsd =
            config.tuning.tariff.costOf(st.electric);
        result.reuseCreditUsd = config.tuning.hwReusePricePerKWh *
            units::toKWh(st.reusedJ);
        result.dvfsPenaltyUsd =
            config.tuning.mpcDvfsPenaltyPerKWh *
            units::toKWh(st.shedComputeJ);
        result.netCostUsd = result.energyCostUsd +
            result.dvfsPenaltyUsd - result.reuseCreditUsd;
        double span_days = scenario.spanDays > 0.0
            ? scenario.spanDays
            : (load.endTime() - load.startTime()) / 86400.0;
        require(span_days > 0.0, "runPlant: zero-length span");
        result.yearlyNetCostUsd =
            result.netCostUsd * 365.25 / span_days;
        if (obs::enabled()) {
            static obs::Counter &runs =
                obs::registry().counter("plant.runs.total");
            runs.add(1);
        }
    }
    if (config.recordSeries)
        result.electricW = std::move(st.electric);
    return result;
}

PlantComparison
compareBackends(const PlantScenario &scenario,
                const PlantConfig &config,
                const std::vector<BackendKind> &kinds,
                exec::ThreadPool *pool)
{
    require(!kinds.empty(), "compareBackends: no backends");
    PlantComparison cmp;
    cmp.arms.resize(kinds.size());
    auto runArm = [&](std::size_t i) {
        PlantConfig arm = config;
        arm.options.kind = kinds[i];
        arm.checkpoint = PlantCheckpointPolicy{};
        cmp.arms[i] = runPlant(scenario, arm);
    };
    if (pool) {
        pool->forIndex(kinds.size(), runArm);
    } else {
        exec::ThreadPool local;
        local.forIndex(kinds.size(), runArm);
    }

    double crac = 0.0, mpc = 0.0;
    bool have_crac = false, have_mpc = false;
    for (std::size_t i = 0; i < kinds.size(); ++i) {
        if (kinds[i] == BackendKind::Crac) {
            crac = cmp.arms[i].yearlyNetCostUsd;
            have_crac = true;
        }
        if (kinds[i] == BackendKind::Mpc) {
            mpc = cmp.arms[i].yearlyNetCostUsd;
            have_mpc = true;
        }
    }
    if (have_crac && have_mpc && crac > 0.0)
        cmp.mpcVsCracSaving = (crac - mpc) / crac;
    return cmp;
}

TimeSeries
clusterCoolingLoad(const server::ServerSpec &spec,
                   const server::WaxConfig &wax,
                   std::size_t server_count,
                   const workload::WorkloadTrace &trace,
                   const datacenter::ClusterRunOptions &options)
{
    datacenter::Cluster cluster(spec, wax, server_count);
    return cluster.run(trace, options).coolingLoadW;
}

} // namespace plant
} // namespace tts
