/**
 * @file
 * Free-air economizer backend.
 *
 * Prices the heat load with datacenter::EconomizerCoolingModel at
 * the ambient the runner supplies - a measured WeatherTrace when
 * one is configured, the sinusoidal AmbientModel otherwise.  Weather
 * gaps are already folded into step.ambientC (hold-last in the
 * runner's WeatherSource), so this backend stays stateless.
 */

#include <algorithm>

#include "plant/backend.hh"

namespace tts {
namespace plant {

namespace {

class EconomizerBackend final : public CoolingBackend
{
  public:
    explicit EconomizerBackend(const PlantTuning &tuning)
        : model_(tuning.economizer)
    {
        // Validate the model up front, not on the first step.
        model_.copAt(model_.returnAirC);
    }

    const char *name() const override { return "economizer"; }

    PlantStepResult
    step(const PlantStep &in) override
    {
        double load = std::max(in.heatLoadW, 0.0);
        PlantStepResult out;
        out.servedW = load * in.capacityFraction;
        out.electricW = model_.electricPower(out.servedW,
                                             in.ambientC);
        return out;
    }

    void reset() override {}

    void
    save(guard::CheckpointWriter &w) const override
    {
        w.section("plant.economizer");
    }

    void
    restore(guard::CheckpointReader &r) override
    {
        r.expectSection("plant.economizer");
    }

  private:
    datacenter::EconomizerCoolingModel model_;
};

} // namespace

std::unique_ptr<CoolingBackend>
makeEconomizerBackend(const PlantTuning &tuning)
{
    return std::make_unique<EconomizerBackend>(tuning);
}

} // namespace plant
} // namespace tts
