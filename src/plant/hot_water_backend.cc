/**
 * @file
 * Hot-water cooling with energy reuse (iDataCool, arXiv 1309.4887).
 *
 * Server heat is carried off on a warm-water loop; a heat exchanger
 * captures an effectiveness fraction of it as reusable hot water
 * (credited at a thermal price by the study), and a mechanical
 * chiller removes the residue.  Running the loop costs a pump
 * overhead proportional to the heat load.  Faults:
 *
 *  - PumpFailure: the loop is down; the whole load falls back to a
 *    low-COP backup chiller and nothing is captured.
 *  - HxFouling: the exchanger loses a cumulative effectiveness
 *    fraction (step.hxFouling), shrinking both the reuse credit and
 *    the capture; the chiller picks up the difference.
 *  - CoolingTrip (capacityFraction < 1): load is shed
 *    proportionally, as in the CRAC adapter.
 */

#include <algorithm>

#include "plant/backend.hh"
#include "util/error.hh"

namespace tts {
namespace plant {

namespace {

class HotWaterBackend final : public CoolingBackend
{
  public:
    explicit HotWaterBackend(const PlantTuning &tuning)
        : effectiveness_(tuning.hwEffectiveness),
          mech_cop_(tuning.hwMechanicalCop),
          backup_cop_(tuning.hwBackupCop),
          pump_fraction_(tuning.hwPumpFraction)
    {
        require(effectiveness_ > 0.0 && effectiveness_ <= 1.0,
                "HotWaterBackend: effectiveness must be in (0, 1]");
        require(mech_cop_ > 0.0 && backup_cop_ > 0.0,
                "HotWaterBackend: COPs must be > 0");
        require(pump_fraction_ >= 0.0,
                "HotWaterBackend: pump fraction must be >= 0");
    }

    const char *name() const override { return "hot_water"; }

    PlantStepResult
    step(const PlantStep &in) override
    {
        double load = std::max(in.heatLoadW, 0.0);
        PlantStepResult out;
        out.servedW = load * in.capacityFraction;
        if (in.pumpFailed) {
            // Loop down: everything through the backup chiller.
            out.electricW = out.servedW / backup_cop_;
            return out;
        }
        double eff = effectiveness_ *
            std::clamp(1.0 - in.hxFouling, 0.0, 1.0);
        out.reusedW = out.servedW * eff;
        double residual = out.servedW - out.reusedW;
        out.electricW = residual / mech_cop_ +
            pump_fraction_ * out.servedW;
        return out;
    }

    void reset() override {}

    void
    save(guard::CheckpointWriter &w) const override
    {
        w.section("plant.hot_water");
    }

    void
    restore(guard::CheckpointReader &r) override
    {
        r.expectSection("plant.hot_water");
    }

  private:
    double effectiveness_;
    double mech_cop_;
    double backup_cop_;
    double pump_fraction_;
};

} // namespace

std::unique_ptr<CoolingBackend>
makeHotWaterBackend(const PlantTuning &tuning)
{
    return std::make_unique<HotWaterBackend>(tuning);
}

} // namespace plant
} // namespace tts
