/**
 * @file
 * CRAC adapter backend.
 *
 * Wraps the paper's datacenter::CoolingSystem arithmetic exactly:
 * with full capacity the electric power is max(load, 0) / COP, the
 * very expression CoolingSystem::electricSeries() appends, so a
 * plant run under the default backend prices bit-identically to
 * every pre-plant golden.  A CoolingTrip fault sheds load
 * proportionally: only the surviving capacity fraction of the heat
 * is removed (and paid for); the rest is reported unserved.
 */

#include <algorithm>

#include "plant/backend.hh"
#include "util/error.hh"

namespace tts {
namespace plant {

namespace {

class CracBackend final : public CoolingBackend
{
  public:
    explicit CracBackend(const PlantTuning &tuning)
        : cop_(tuning.cracCop)
    {
        require(cop_ > 0.0, "CracBackend: COP must be > 0");
    }

    const char *name() const override { return "crac"; }

    PlantStepResult
    step(const PlantStep &in) override
    {
        double load = std::max(in.heatLoadW, 0.0);
        PlantStepResult out;
        out.servedW = load * in.capacityFraction;
        out.electricW = out.servedW / cop_;
        return out;
    }

    void reset() override {}

    void
    save(guard::CheckpointWriter &w) const override
    {
        w.section("plant.crac");
    }

    void
    restore(guard::CheckpointReader &r) override
    {
        r.expectSection("plant.crac");
    }

  private:
    double cop_;
};

} // namespace

std::unique_ptr<CoolingBackend>
makeCracBackend(const PlantTuning &tuning)
{
    return std::make_unique<CracBackend>(tuning);
}

} // namespace plant
} // namespace tts
