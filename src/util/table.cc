#include "util/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/error.hh"

namespace tts {

AsciiTable::AsciiTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    require(!headers_.empty(), "AsciiTable: need at least one column");
}

void
AsciiTable::addRow(std::vector<std::string> row)
{
    require(row.size() == headers_.size(),
            "AsciiTable::addRow: column count mismatch");
    rows_.push_back(std::move(row));
}

void
AsciiTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }
    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]))
               << row[c];
            os << (c + 1 == row.size() ? "\n" : "  ");
        }
    };
    print_row(headers_);
    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 2;
    os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
    for (const auto &row : rows_)
        print_row(row);
}

CsvWriter::CsvWriter(std::ostream &os, std::vector<std::string> columns)
    : os_(os), columns_(columns.size())
{
    require(columns_ > 0, "CsvWriter: need at least one column");
    for (std::size_t i = 0; i < columns.size(); ++i)
        os_ << columns[i] << (i + 1 == columns.size() ? "\n" : ",");
}

void
CsvWriter::writeRow(const std::vector<double> &cells)
{
    require(cells.size() == columns_,
            "CsvWriter::writeRow: column count mismatch");
    for (std::size_t i = 0; i < cells.size(); ++i)
        os_ << cells[i] << (i + 1 == cells.size() ? "\n" : ",");
}

void
CsvWriter::writeRow(const std::vector<std::string> &cells)
{
    require(cells.size() == columns_,
            "CsvWriter::writeRow: column count mismatch");
    for (std::size_t i = 0; i < cells.size(); ++i)
        os_ << cells[i] << (i + 1 == cells.size() ? "\n" : ",");
}

std::string
formatFixed(double v, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << v;
    return oss.str();
}

} // namespace tts
