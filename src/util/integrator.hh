/**
 * @file
 * Explicit ODE steppers over flat state vectors.
 *
 * The thermal solver integrates node enthalpies dH/dt = f(t, H).  The
 * steppers here are deliberately simple and allocation-free in the
 * inner loop; the state is a std::vector<double> reused across steps.
 */

#ifndef TTS_UTIL_INTEGRATOR_HH
#define TTS_UTIL_INTEGRATOR_HH

#include <functional>
#include <vector>

namespace tts {

/**
 * Right-hand side of an ODE system.
 *
 * @param t     Current time (s).
 * @param state Current state vector.
 * @param deriv Output: time derivative of each state entry.
 */
using OdeRhs = std::function<void(double t,
                                  const std::vector<double> &state,
                                  std::vector<double> &deriv)>;

/** Abstract single-step integrator. */
class Integrator
{
  public:
    virtual ~Integrator() = default;

    /**
     * Advance the state in place by one step.
     *
     * @param rhs   Derivative function.
     * @param t     Current time (s).
     * @param dt    Step size (s), must be > 0.
     * @param state State vector, updated in place.
     */
    virtual void step(const OdeRhs &rhs, double t, double dt,
                      std::vector<double> &state) = 0;

    /** @return Human-readable stepper name. */
    virtual const char *name() const = 0;
};

/** First-order explicit (forward) Euler stepper. */
class ForwardEuler : public Integrator
{
  public:
    void step(const OdeRhs &rhs, double t, double dt,
              std::vector<double> &state) override;
    const char *name() const override { return "ForwardEuler"; }

  private:
    std::vector<double> k1_;
};

/** Second-order explicit midpoint (RK2) stepper. */
class Midpoint : public Integrator
{
  public:
    void step(const OdeRhs &rhs, double t, double dt,
              std::vector<double> &state) override;
    const char *name() const override { return "Midpoint"; }

  private:
    std::vector<double> k1_, tmp_, k2_;
};

/** Classic fourth-order Runge-Kutta stepper. */
class RungeKutta4 : public Integrator
{
  public:
    void step(const OdeRhs &rhs, double t, double dt,
              std::vector<double> &state) override;
    const char *name() const override { return "RungeKutta4"; }

  private:
    std::vector<double> k1_, k2_, k3_, k4_, tmp_;
};

/**
 * Embedded Bogacki-Shampine 3(2) pair with adaptive step control.
 *
 * Used for stiff-ish or long integrations where a fixed step wastes
 * work: the step grows where the solution is smooth and shrinks at
 * transients (e.g. a PCM melt onset).  The local error of the
 * third-order solution is estimated against the embedded
 * second-order one and kept below atol + rtol * |y|.
 */
class AdaptiveRk23
{
  public:
    /**
     * @param rtol Relative tolerance.
     * @param atol Absolute tolerance.
     */
    explicit AdaptiveRk23(double rtol = 1e-6, double atol = 1e-9);

    /**
     * Integrate from t0 to t1, adapting the step.
     *
     * @param rhs      Derivative function.
     * @param t0       Start time (s).
     * @param t1       End time (s), >= t0.
     * @param state    State vector, updated in place.
     * @param h0       Initial step guess (s); <= 0 picks
     *                 (t1 - t0) / 100.
     * @param observer Optional observer(t, state) at t0 and after
     *                 every accepted step.
     * @return Number of accepted steps.
     * @throws guard::NumericsError if a stage result is non-finite
     *         and shrinking the step to the minimum does not cure
     *         it; a non-finite result at larger steps is treated as
     *         a rejection and retried at a smaller step.
     */
    std::size_t integrate(
        const OdeRhs &rhs, double t0, double t1,
        std::vector<double> &state, double h0 = 0.0,
        const std::function<void(double,
            const std::vector<double> &)> &observer = nullptr);

    /** @return Steps rejected during the last integrate() call. */
    std::size_t rejectedSteps() const { return rejected_; }

  private:
    double rtol_;
    double atol_;
    std::size_t rejected_ = 0;
    std::vector<double> k1_, k2_, k3_, k4_, tmp_, y3_;
};

/**
 * Integrate from t0 to t1 with fixed steps, invoking an observer after
 * every step.
 *
 * @param stepper  Stepper to use.
 * @param rhs      Derivative function.
 * @param t0       Start time (s).
 * @param t1       End time (s); must be >= t0.
 * @param dt       Nominal step (s); the final step is shortened to
 *                 land exactly on t1, and accumulated floating-point
 *                 drift within 1e-12*dt of t1 is snapped to t1 so no
 *                 spurious ~1-ulp final step is taken.
 * @param state    State vector, updated in place.
 * @param observer Optional callback observer(t, state) called at t0
 *                 and after every step.
 * @throws guard::NumericsError naming the first non-finite state
 *         entry if a step produces NaN/Inf.
 */
void integrate(Integrator &stepper, const OdeRhs &rhs, double t0,
               double t1, double dt, std::vector<double> &state,
               const std::function<void(double,
                   const std::vector<double> &)> &observer = nullptr);

} // namespace tts

#endif // TTS_UTIL_INTEGRATOR_HH
