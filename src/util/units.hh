/**
 * @file
 * Unit conventions, conversion helpers, and physical constants.
 *
 * The library stores all quantities as doubles in SI base units unless
 * a name says otherwise:
 *
 *   - time        seconds            (variables named *_s or t)
 *   - temperature degrees Celsius    (thermal networks are affine in T,
 *                                     so Celsius is safe and readable)
 *   - power       watts
 *   - energy      joules
 *   - mass        kilograms
 *   - volume      cubic meters
 *   - money       US dollars
 *
 * The helpers below exist so call sites can say `hours(12)` instead of
 * `12.0 * 3600.0` and stay greppable.
 */

#ifndef TTS_UTIL_UNITS_HH
#define TTS_UTIL_UNITS_HH

namespace tts {
namespace units {

/** @name Time conversions (to seconds) */
/// @{
constexpr double secondsPerMinute = 60.0;
constexpr double secondsPerHour = 3600.0;
constexpr double secondsPerDay = 86400.0;

/** Convert minutes to seconds. */
constexpr double minutes(double m) { return m * secondsPerMinute; }
/** Convert hours to seconds. */
constexpr double hours(double h) { return h * secondsPerHour; }
/** Convert days to seconds. */
constexpr double days(double d) { return d * secondsPerDay; }
/** Convert seconds to hours. */
constexpr double toHours(double s) { return s / secondsPerHour; }
/// @}

/** @name Energy conversions (to joules) */
/// @{
/** Convert kilowatt-hours to joules. */
constexpr double kWh(double e) { return e * 3.6e6; }
/** Convert joules to kilowatt-hours. */
constexpr double toKWh(double j) { return j / 3.6e6; }
/** Convert kilojoules to joules. */
constexpr double kJ(double e) { return e * 1e3; }
/// @}

/** @name Power conversions (to watts) */
/// @{
/** Convert kilowatts to watts. */
constexpr double kW(double p) { return p * 1e3; }
/** Convert megawatts to watts. */
constexpr double MW(double p) { return p * 1e6; }
/** Convert watts to kilowatts. */
constexpr double toKW(double w) { return w / 1e3; }
/// @}

/** @name Mass conversions (to kilograms) */
/// @{
/** Convert grams to kilograms. */
constexpr double grams(double m) { return m * 1e-3; }
/** Convert metric tons to kilograms. */
constexpr double tons(double m) { return m * 1e3; }
/// @}

/** @name Volume conversions (to cubic meters) */
/// @{
/** Convert liters to cubic meters. */
constexpr double liters(double v) { return v * 1e-3; }
/** Convert milliliters to cubic meters. */
constexpr double milliliters(double v) { return v * 1e-6; }
/** Convert cubic meters to liters. */
constexpr double toLiters(double v) { return v * 1e3; }
/** Convert cubic feet per minute to cubic meters per second. */
constexpr double cfm(double q) { return q * 4.719474e-4; }
/// @}

/** @name Temperature conversions */
/// @{
/** Convert Celsius to Kelvin. */
constexpr double toKelvin(double c) { return c + 273.15; }
/** Convert Kelvin to Celsius. */
constexpr double toCelsius(double k) { return k - 273.15; }
/// @}

/** @name Physical constants */
/// @{
/** Density of air at ~35 C, sea level (kg/m^3). */
constexpr double airDensity = 1.145;
/** Specific heat of air at constant pressure (J/(kg K)). */
constexpr double airSpecificHeat = 1006.0;
/** Density of solid commercial paraffin wax (kg/m^3). */
constexpr double paraffinDensitySolid = 800.0;
/** Density of liquid commercial paraffin wax (kg/m^3). */
constexpr double paraffinDensityLiquid = 750.0;
/** Specific heat of solid paraffin (J/(kg K)). */
constexpr double paraffinSpecificHeatSolid = 2100.0;
/** Specific heat of liquid paraffin (J/(kg K)). */
constexpr double paraffinSpecificHeatLiquid = 2400.0;
/** Specific heat of aluminum (J/(kg K)), for wax containers. */
constexpr double aluminumSpecificHeat = 897.0;
/// @}

} // namespace units
} // namespace tts

#endif // TTS_UTIL_UNITS_HH
