/**
 * @file
 * Flat key/value JSON for the golden-value regression harness and
 * the tts_serve wire protocol.
 *
 * The golden file is deliberately the simplest JSON dialect that can
 * hold a `{"key": number, ...}` object: string keys, double values,
 * no nesting.  Writing uses 17 significant digits so a value survives
 * a write/parse round trip bit-for-bit; parsing accepts exactly the
 * subset this writer emits (plus arbitrary whitespace), and fails
 * loudly on anything else rather than guessing.
 *
 * Since the serving daemon started parsing *hostile* input with this
 * module, the parsers are hardened for that duty: every input is
 * bounded by an explicit byte budget (a frame that lies about its
 * length cannot balloon memory), and every rejection carries the
 * byte offset of the offending construct so a client can be told
 * exactly where its request went wrong.  The KvValue overloads add
 * the one extension the request protocol needs - string values
 * beside numbers - still flat, still escape-free.
 */

#ifndef TTS_UTIL_KV_JSON_HH
#define TTS_UTIL_KV_JSON_HH

#include <cstddef>
#include <map>
#include <string>

namespace tts {

/**
 * Hard upper bound on parser input (bytes).  Large enough for every
 * golden/bench/metrics file in the tree by orders of magnitude;
 * small enough that a malicious request cannot make the parser
 * allocate unboundedly.
 */
inline constexpr std::size_t kKvJsonMaxBytes = 1u << 20;

/** A flat JSON scalar: a finite number or an escape-free string. */
struct KvValue
{
    enum class Kind
    {
        Number,
        String,
    };

    Kind kind = Kind::Number;
    double num = 0.0;
    std::string str;

    static KvValue number(double v)
    {
        KvValue k;
        k.kind = Kind::Number;
        k.num = v;
        return k;
    }

    static KvValue string(std::string s)
    {
        KvValue k;
        k.kind = Kind::String;
        k.str = std::move(s);
        return k;
    }

    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }

    bool operator==(const KvValue &o) const
    {
        return kind == o.kind && num == o.num && str == o.str;
    }
};

/** String-or-number object, the request/reply payload shape. */
using KvAnyMap = std::map<std::string, KvValue>;

/**
 * Serialize a flat string->double map as a JSON object, one key per
 * line, keys in map (lexicographic) order.
 *
 * @throws FatalError naming the offending key if a value is NaN or
 *         infinite (JSON has no literal for either).
 */
std::string writeKvJson(const std::map<std::string, double> &kv);

/**
 * Parse a flat JSON object of string keys and numeric values.
 *
 * @param text      The document.
 * @param max_bytes Reject inputs larger than this up front.
 * @throws FatalError on malformed input, non-numeric values,
 *         nesting, duplicate keys, or an oversized input; the
 *         message names the byte offset of the offense.
 */
std::map<std::string, double>
parseKvJson(const std::string &text,
            std::size_t max_bytes = kKvJsonMaxBytes);

/**
 * Serialize a flat string->KvValue map (numbers and strings).
 * String values must be escape-free (no '"', '\\', or control
 * characters); @throws FatalError naming the key otherwise, and for
 * non-finite numbers as in writeKvJson().
 */
std::string writeKvAnyJson(const KvAnyMap &kv);

/**
 * Parse a flat JSON object whose values are numbers or strings.
 * Same strictness and diagnostics as parseKvJson().
 */
KvAnyMap parseKvAnyJson(const std::string &text,
                        std::size_t max_bytes = kKvJsonMaxBytes);

/** Write the map to a file (see writeKvJson). @throws FatalError. */
void writeKvJsonFile(const std::string &path,
                     const std::map<std::string, double> &kv);

/** Read and parse a flat JSON file. @throws FatalError. */
std::map<std::string, double> readKvJsonFile(const std::string &path);

} // namespace tts

#endif // TTS_UTIL_KV_JSON_HH
