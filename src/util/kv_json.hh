/**
 * @file
 * Flat key/value JSON for the golden-value regression harness.
 *
 * The golden file is deliberately the simplest JSON dialect that can
 * hold a `{"key": number, ...}` object: string keys, double values,
 * no nesting.  Writing uses 17 significant digits so a value survives
 * a write/parse round trip bit-for-bit; parsing accepts exactly the
 * subset this writer emits (plus arbitrary whitespace), and fails
 * loudly on anything else rather than guessing.
 */

#ifndef TTS_UTIL_KV_JSON_HH
#define TTS_UTIL_KV_JSON_HH

#include <map>
#include <string>

namespace tts {

/**
 * Serialize a flat string->double map as a JSON object, one key per
 * line, keys in map (lexicographic) order.
 *
 * @throws FatalError naming the offending key if a value is NaN or
 *         infinite (JSON has no literal for either).
 */
std::string writeKvJson(const std::map<std::string, double> &kv);

/**
 * Parse a flat JSON object of string keys and numeric values.
 *
 * @throws FatalError on malformed input, non-numeric values, nesting,
 *         or duplicate keys.
 */
std::map<std::string, double> parseKvJson(const std::string &text);

/** Write the map to a file (see writeKvJson). @throws FatalError. */
void writeKvJsonFile(const std::string &path,
                     const std::map<std::string, double> &kv);

/** Read and parse a flat JSON file. @throws FatalError. */
std::map<std::string, double> readKvJsonFile(const std::string &path);

} // namespace tts

#endif // TTS_UTIL_KV_JSON_HH
