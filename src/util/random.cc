#include "util/random.hh"

#include <cmath>

#include "util/error.hh"

namespace tts {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

double
Rng::normal()
{
    if (have_spare_) {
        have_spare_ = false;
        return spare_;
    }
    // Box-Muller; reject u == 0 so log() stays finite.
    double u = 0.0;
    do {
        u = uniform();
    } while (u <= 0.0);
    double v = uniform();
    double r = std::sqrt(-2.0 * std::log(u));
    double theta = 2.0 * M_PI * v;
    spare_ = r * std::sin(theta);
    have_spare_ = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::exponential(double rate)
{
    require(rate > 0.0, "Rng::exponential: rate must be positive");
    double u = 0.0;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -std::log(u) / rate;
}

std::uint64_t
Rng::poisson(double mean)
{
    require(mean >= 0.0, "Rng::poisson: mean must be non-negative");
    if (mean == 0.0)
        return 0;
    if (mean < 30.0) {
        // Knuth's product-of-uniforms method.
        double l = std::exp(-mean);
        std::uint64_t k = 0;
        double p = 1.0;
        do {
            ++k;
            p *= uniform();
        } while (p > l);
        return k - 1;
    }
    // Normal approximation for large means.
    double x = normal(mean, std::sqrt(mean));
    return x < 0.0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
}

Rng
Rng::forStream(std::uint64_t seed, std::uint64_t stream)
{
    // Whiten the stream id so ids 0, 1, 2, ... land far apart in
    // seed space; the constant keeps stream 0 distinct from the
    // plain Rng(seed) generator.
    std::uint64_t x = stream + 0x632be59bd9b4e019ULL;
    return Rng(seed ^ splitmix64(x));
}

Rng::State
Rng::state() const
{
    State st;
    for (int i = 0; i < 4; ++i)
        st.s[i] = s_[i];
    st.haveSpare = have_spare_;
    st.spare = spare_;
    return st;
}

void
Rng::setState(const State &st)
{
    for (int i = 0; i < 4; ++i)
        s_[i] = st.s[i];
    have_spare_ = st.haveSpare;
    spare_ = st.spare;
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    require(n > 0, "Rng::uniformInt: n must be positive");
    // Rejection sampling to avoid modulo bias.
    std::uint64_t limit = ~0ULL - (~0ULL % n);
    std::uint64_t x = 0;
    do {
        x = next();
    } while (x >= limit);
    return x % n;
}

} // namespace tts
