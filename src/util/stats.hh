/**
 * @file
 * Small statistics helpers: running moments and vector summaries.
 */

#ifndef TTS_UTIL_STATS_HH
#define TTS_UTIL_STATS_HH

#include <cstddef>
#include <vector>

namespace tts {

/**
 * Online accumulator of count/mean/variance/min/max using Welford's
 * algorithm; numerically stable for long runs.
 */
class RunningStats
{
  public:
    /** Add one observation. */
    void add(double x);

    /** @return Number of observations. */
    std::size_t count() const { return n_; }
    /** @return Sample mean (0 when empty). */
    double mean() const { return n_ ? mean_ : 0.0; }
    /** @return Unbiased sample variance (0 when n < 2). */
    double variance() const;
    /** @return Sample standard deviation. */
    double stddev() const;
    /** @return Minimum observation. */
    double min() const { return min_; }
    /** @return Maximum observation. */
    double max() const { return max_; }
    /** @return Sum of observations. */
    double sum() const { return sum_; }

    /** Reset to the empty state. */
    void reset();

    /**
     * Raw accumulator state for checkpointing; restoring it
     * reproduces the accumulator bit-for-bit mid-stream.
     */
    struct Snapshot
    {
        std::size_t n;
        double mean;
        double m2;
        double min;
        double max;
        double sum;
    };

    /** @return The raw accumulator state. */
    Snapshot snapshot() const
    {
        return Snapshot{n_, mean_, m2_, min_, max_, sum_};
    }

    /** Restore a snapshot taken with snapshot(). */
    void restore(const Snapshot &s)
    {
        n_ = s.n;
        mean_ = s.mean;
        m2_ = s.m2;
        min_ = s.min;
        max_ = s.max;
        sum_ = s.sum;
    }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/**
 * Fixed-bucket histogram with cumulative-style upper bounds.
 *
 * Buckets are defined by a strictly increasing vector of finite
 * upper bounds; an observation lands in the first bucket whose bound
 * is >= the value, and an implicit overflow bucket catches anything
 * above the last bound.  Alongside the buckets the histogram tracks
 * count/sum/min/max, so a snapshot can be flattened to scalar keys
 * (the obs metrics registry does exactly that).
 */
class Histogram
{
  public:
    /**
     * @param upper_bounds Strictly increasing, finite bucket upper
     *     bounds; must be non-empty.
     */
    explicit Histogram(std::vector<double> upper_bounds);

    /** Add one observation (must be finite). */
    void add(double x);

    /**
     * Fold another histogram into this one.  Both must have been
     * built with identical upper bounds.
     */
    void merge(const Histogram &o);

    /** @return Number of observations. */
    std::size_t count() const { return n_; }
    /** @return Sum of observations (0 when empty). */
    double sum() const { return sum_; }
    /** @return Minimum observation (0 when empty). */
    double min() const { return n_ ? min_ : 0.0; }
    /** @return Maximum observation (0 when empty). */
    double max() const { return n_ ? max_ : 0.0; }
    /** @return Sample mean (0 when empty). */
    double mean() const
    {
        return n_ ? sum_ / static_cast<double>(n_) : 0.0;
    }

    /** @return Number of buckets, including the overflow bucket. */
    std::size_t bucketCount() const { return counts_.size(); }
    /**
     * @return Upper bound of bucket `i`; +infinity for the final
     *     (overflow) bucket.
     */
    double upperBound(std::size_t i) const;
    /** @return Observations that landed in bucket `i`. */
    std::size_t countInBucket(std::size_t i) const;
    /** @return The configured finite upper bounds. */
    const std::vector<double> &upperBounds() const { return bounds_; }

    /** Drop every observation, keeping the bucket layout. */
    void reset();

  private:
    std::vector<double> bounds_;
    std::vector<std::size_t> counts_; //!< bounds_.size() + 1 cells.
    std::size_t n_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Linear-interpolated percentile of a data vector.
 *
 * @param data Observations (copied and sorted internally).
 * @param p    Percentile in [0, 100].
 */
double percentile(std::vector<double> data, double p);

/**
 * Mean absolute difference between two equally-sized vectors; used by
 * the model validation harness (Fig 4c's 0.22 C metric).
 */
double meanAbsoluteDifference(const std::vector<double> &a,
                              const std::vector<double> &b);

/**
 * Pearson correlation coefficient between two equally-sized vectors.
 */
double pearsonCorrelation(const std::vector<double> &a,
                          const std::vector<double> &b);

} // namespace tts

#endif // TTS_UTIL_STATS_HH
