/**
 * @file
 * Small statistics helpers: running moments and vector summaries.
 */

#ifndef TTS_UTIL_STATS_HH
#define TTS_UTIL_STATS_HH

#include <cstddef>
#include <vector>

namespace tts {

/**
 * Online accumulator of count/mean/variance/min/max using Welford's
 * algorithm; numerically stable for long runs.
 */
class RunningStats
{
  public:
    /** Add one observation. */
    void add(double x);

    /** @return Number of observations. */
    std::size_t count() const { return n_; }
    /** @return Sample mean (0 when empty). */
    double mean() const { return n_ ? mean_ : 0.0; }
    /** @return Unbiased sample variance (0 when n < 2). */
    double variance() const;
    /** @return Sample standard deviation. */
    double stddev() const;
    /** @return Minimum observation. */
    double min() const { return min_; }
    /** @return Maximum observation. */
    double max() const { return max_; }
    /** @return Sum of observations. */
    double sum() const { return sum_; }

    /** Reset to the empty state. */
    void reset();

    /**
     * Raw accumulator state for checkpointing; restoring it
     * reproduces the accumulator bit-for-bit mid-stream.
     */
    struct Snapshot
    {
        std::size_t n;
        double mean;
        double m2;
        double min;
        double max;
        double sum;
    };

    /** @return The raw accumulator state. */
    Snapshot snapshot() const
    {
        return Snapshot{n_, mean_, m2_, min_, max_, sum_};
    }

    /** Restore a snapshot taken with snapshot(). */
    void restore(const Snapshot &s)
    {
        n_ = s.n;
        mean_ = s.mean;
        m2_ = s.m2;
        min_ = s.min;
        max_ = s.max;
        sum_ = s.sum;
    }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/**
 * Linear-interpolated percentile of a data vector.
 *
 * @param data Observations (copied and sorted internally).
 * @param p    Percentile in [0, 100].
 */
double percentile(std::vector<double> data, double p);

/**
 * Mean absolute difference between two equally-sized vectors; used by
 * the model validation harness (Fig 4c's 0.22 C metric).
 */
double meanAbsoluteDifference(const std::vector<double> &a,
                              const std::vector<double> &b);

/**
 * Pearson correlation coefficient between two equally-sized vectors.
 */
double pearsonCorrelation(const std::vector<double> &a,
                          const std::vector<double> &b);

} // namespace tts

#endif // TTS_UTIL_STATS_HH
