#include "util/integrator.hh"

#include <algorithm>
#include <cmath>

#include "guard/numerics.hh"
#include "util/error.hh"

namespace tts {

void
ForwardEuler::step(const OdeRhs &rhs, double t, double dt,
                   std::vector<double> &state)
{
    k1_.resize(state.size());
    rhs(t, state, k1_);
    for (std::size_t i = 0; i < state.size(); ++i)
        state[i] += dt * k1_[i];
}

void
Midpoint::step(const OdeRhs &rhs, double t, double dt,
               std::vector<double> &state)
{
    k1_.resize(state.size());
    tmp_.resize(state.size());
    k2_.resize(state.size());
    rhs(t, state, k1_);
    for (std::size_t i = 0; i < state.size(); ++i)
        tmp_[i] = state[i] + 0.5 * dt * k1_[i];
    rhs(t + 0.5 * dt, tmp_, k2_);
    for (std::size_t i = 0; i < state.size(); ++i)
        state[i] += dt * k2_[i];
}

void
RungeKutta4::step(const OdeRhs &rhs, double t, double dt,
                  std::vector<double> &state)
{
    const std::size_t n = state.size();
    k1_.resize(n);
    k2_.resize(n);
    k3_.resize(n);
    k4_.resize(n);
    tmp_.resize(n);

    rhs(t, state, k1_);
    for (std::size_t i = 0; i < n; ++i)
        tmp_[i] = state[i] + 0.5 * dt * k1_[i];
    rhs(t + 0.5 * dt, tmp_, k2_);
    for (std::size_t i = 0; i < n; ++i)
        tmp_[i] = state[i] + 0.5 * dt * k2_[i];
    rhs(t + 0.5 * dt, tmp_, k3_);
    for (std::size_t i = 0; i < n; ++i)
        tmp_[i] = state[i] + dt * k3_[i];
    rhs(t + dt, tmp_, k4_);
    for (std::size_t i = 0; i < n; ++i) {
        state[i] += dt / 6.0 *
            (k1_[i] + 2.0 * k2_[i] + 2.0 * k3_[i] + k4_[i]);
    }
}

AdaptiveRk23::AdaptiveRk23(double rtol, double atol)
    : rtol_(rtol), atol_(atol)
{
    require(rtol > 0.0 && atol > 0.0,
            "AdaptiveRk23: tolerances must be positive");
}

std::size_t
AdaptiveRk23::integrate(
    const OdeRhs &rhs, double t0, double t1,
    std::vector<double> &state, double h0,
    const std::function<void(double,
        const std::vector<double> &)> &observer)
{
    require(t1 >= t0, "AdaptiveRk23: t1 must be >= t0");
    rejected_ = 0;
    if (t1 == t0)
        return 0;

    const std::size_t n = state.size();
    k1_.resize(n);
    k2_.resize(n);
    k3_.resize(n);
    k4_.resize(n);
    tmp_.resize(n);
    y3_.resize(n);

    double t = t0;
    double h = h0 > 0.0 ? h0 : (t1 - t0) / 100.0;
    const double h_min = (t1 - t0) * 1e-12;
    std::size_t accepted = 0;

    if (observer)
        observer(t, state);
    rhs(t, state, k1_);  // FSAL seed.
    while (t < t1) {
        h = std::min(h, t1 - t);
        // Bogacki-Shampine stages.
        for (std::size_t i = 0; i < n; ++i)
            tmp_[i] = state[i] + 0.5 * h * k1_[i];
        rhs(t + 0.5 * h, tmp_, k2_);
        for (std::size_t i = 0; i < n; ++i)
            tmp_[i] = state[i] + 0.75 * h * k2_[i];
        rhs(t + 0.75 * h, tmp_, k3_);
        for (std::size_t i = 0; i < n; ++i) {
            y3_[i] = state[i] + h * (2.0 / 9.0 * k1_[i] +
                                     1.0 / 3.0 * k2_[i] +
                                     4.0 / 9.0 * k3_[i]);
        }
        rhs(t + h, y3_, k4_);

        // Sentinel: a non-finite stage result means the step blew up
        // or the rhs itself produced a NaN.  The state must be
        // checked directly - a NaN error norm would be masked by the
        // std::max() accumulation below.  Shrink and retry; at the
        // minimum step the problem is not step-size-related, so name
        // the offending entry instead of accepting garbage.
        std::ptrdiff_t bad = guard::firstNonFinite(y3_);
        if (bad >= 0) {
            if (h <= h_min) {
                throw guard::NumericsError(
                    "AdaptiveRk23: non-finite state entry " +
                        std::to_string(bad) + " at minimum step (t=" +
                        std::to_string(t) + ")",
                    std::string(), -1, t, 0.0, bad);
            }
            ++rejected_;
            h = std::max(h * 0.2, h_min);
            continue;
        }

        // Error: difference to the embedded 2nd-order solution.
        double err = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            double y2 = state[i] + h * (7.0 / 24.0 * k1_[i] +
                                        0.25 * k2_[i] +
                                        1.0 / 3.0 * k3_[i] +
                                        0.125 * k4_[i]);
            double scale =
                atol_ + rtol_ * std::max(std::abs(state[i]),
                                         std::abs(y3_[i]));
            double e = (y3_[i] - y2) / scale;
            err = std::max(err, std::abs(e));
        }

        if (err <= 1.0 || h <= h_min) {
            t += h;
            state = y3_;
            k1_ = k4_;  // FSAL.
            ++accepted;
            if (observer)
                observer(t, state);
        } else {
            ++rejected_;
        }
        double factor = err > 0.0
            ? 0.9 * std::pow(err, -1.0 / 3.0)
            : 5.0;
        h *= std::clamp(factor, 0.2, 5.0);
        h = std::max(h, h_min);
    }
    return accepted;
}

void
integrate(Integrator &stepper, const OdeRhs &rhs, double t0, double t1,
          double dt, std::vector<double> &state,
          const std::function<void(double,
              const std::vector<double> &)> &observer)
{
    require(dt > 0.0, "integrate: dt must be positive");
    require(t1 >= t0, "integrate: t1 must be >= t0");
    double t = t0;
    if (observer)
        observer(t, state);
    while (t < t1) {
        double h = std::min(dt, t1 - t);
        // Guard against a shortened final step so small that t stops
        // advancing (t0 far from zero, or accumulated drift).
        require(t + h > t, "integrate: step underflow (dt too small "
                           "relative to t)");
        stepper.step(rhs, t, h, state);

        std::ptrdiff_t bad = guard::firstNonFinite(state);
        if (bad >= 0) {
            throw guard::NumericsError(
                "integrate: non-finite state entry " +
                    std::to_string(bad) + " after " +
                    std::string(stepper.name()) + " step at t=" +
                    std::to_string(t + h),
                std::string(), -1, t + h, 0.0, bad);
        }

        t += h;
        // Accumulated floating-point drift can leave t just shy of
        // t1, producing a spurious ~1e-16 s final step; snap within
        // a 1e-12*dt tolerance so the loop terminates exactly at t1.
        if (t1 - t <= dt * 1e-12)
            t = t1;
        if (observer)
            observer(t, state);
    }
}

} // namespace tts
