/**
 * @file
 * Piecewise-linear interpolation over (x, y) breakpoints.
 *
 * Used for enthalpy-temperature curves, fan curves, trace lookup, and
 * calibration tables throughout the library.
 */

#ifndef TTS_UTIL_INTERPOLATION_HH
#define TTS_UTIL_INTERPOLATION_HH

#include <cstddef>
#include <utility>
#include <vector>

namespace tts {

/**
 * A piecewise-linear function y = f(x) defined by sorted breakpoints.
 *
 * Evaluation outside the breakpoint range clamps to the end values
 * (flat extrapolation), which is the safe behavior for physical
 * property tables.
 */
class PiecewiseLinear
{
  public:
    /** Construct an empty curve; add points before evaluating. */
    PiecewiseLinear() = default;

    /**
     * Construct from a list of (x, y) points.
     *
     * @param points Breakpoints; sorted internally by x.
     */
    explicit PiecewiseLinear(
        std::vector<std::pair<double, double>> points);

    /**
     * Add one breakpoint.  X values must be unique.
     *
     * @param x Abscissa.
     * @param y Ordinate.
     */
    void addPoint(double x, double y);

    /**
     * Evaluate the curve at x with clamped extrapolation.
     *
     * @param x Point of evaluation.
     * @return Interpolated value.
     */
    double operator()(double x) const;

    /**
     * Evaluate the inverse x = f^-1(y).  Requires the curve to be
     * strictly monotone in y.
     *
     * @param y Target ordinate.
     * @return The x with f(x) == y, clamped to the domain.
     */
    double inverse(double y) const;

    /**
     * Definite integral of the curve between a and b (trapezoidal,
     * exact for piecewise-linear).
     *
     * @param a Lower limit.
     * @param b Upper limit (may be < a; sign follows convention).
     * @return Integral value.
     */
    double integral(double a, double b) const;

    /** @return Number of breakpoints. */
    std::size_t size() const { return xs_.size(); }

    /** @return True if no breakpoints have been added. */
    bool empty() const { return xs_.empty(); }

    /** @return Smallest breakpoint x. */
    double minX() const;
    /** @return Largest breakpoint x. */
    double maxX() const;

    /** @return True if y values are strictly increasing in x. */
    bool strictlyIncreasing() const;

  private:
    /** Sorted breakpoint abscissae. */
    std::vector<double> xs_;
    /** Ordinates matching xs_. */
    std::vector<double> ys_;
};

} // namespace tts

#endif // TTS_UTIL_INTERPOLATION_HH
