/**
 * @file
 * Error handling primitives for the tts library.
 *
 * Follows the gem5 convention: fatal() is for user error (bad
 * configuration, invalid arguments) and panic() is for internal
 * invariant violations (a library bug).  Both throw exceptions rather
 * than aborting so that embedding applications and tests can recover.
 */

#ifndef TTS_UTIL_ERROR_HH
#define TTS_UTIL_ERROR_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace tts {

/** Base class for all errors raised by the tts library. */
class Error : public std::runtime_error
{
  public:
    explicit Error(const std::string &what) : std::runtime_error(what) {}
};

/** Raised by fatal(): the caller supplied an invalid configuration. */
class FatalError : public Error
{
  public:
    explicit FatalError(const std::string &what) : Error(what) {}
};

/** Raised by panic(): an internal invariant was violated. */
class PanicError : public Error
{
  public:
    explicit PanicError(const std::string &what) : Error(what) {}
};

/**
 * Report an unrecoverable user/configuration error.
 *
 * @param msg Description of the bad input.
 * @throws FatalError always.
 */
[[noreturn]] void fatal(const std::string &msg);

/**
 * Report an internal library bug (invariant violation).
 *
 * @param msg Description of the violated invariant.
 * @throws PanicError always.
 */
[[noreturn]] void panic(const std::string &msg);

/**
 * Validate a user-supplied condition; calls fatal() on failure.
 *
 * @param cond Condition that must hold.
 * @param msg Message used when the condition is false.
 */
inline void
require(bool cond, const std::string &msg)
{
    if (!cond)
        fatal(msg);
}

/**
 * Validate an internal invariant; calls panic() on failure.
 *
 * @param cond Condition that must hold.
 * @param msg Message used when the condition is false.
 */
inline void
invariant(bool cond, const std::string &msg)
{
    if (!cond)
        panic(msg);
}

} // namespace tts

#endif // TTS_UTIL_ERROR_HH
