#include "util/interpolation.hh"

#include <algorithm>
#include <cmath>

#include "util/error.hh"

namespace tts {

PiecewiseLinear::PiecewiseLinear(
    std::vector<std::pair<double, double>> points)
{
    std::sort(points.begin(), points.end());
    xs_.reserve(points.size());
    ys_.reserve(points.size());
    for (const auto &[x, y] : points) {
        if (!xs_.empty() && x == xs_.back())
            fatal("PiecewiseLinear: duplicate x breakpoint");
        xs_.push_back(x);
        ys_.push_back(y);
    }
}

void
PiecewiseLinear::addPoint(double x, double y)
{
    auto it = std::lower_bound(xs_.begin(), xs_.end(), x);
    if (it != xs_.end() && *it == x)
        fatal("PiecewiseLinear: duplicate x breakpoint");
    std::size_t idx = it - xs_.begin();
    xs_.insert(xs_.begin() + idx, x);
    ys_.insert(ys_.begin() + idx, y);
}

double
PiecewiseLinear::operator()(double x) const
{
    require(!xs_.empty(), "PiecewiseLinear: evaluating empty curve");
    if (x <= xs_.front())
        return ys_.front();
    if (x >= xs_.back())
        return ys_.back();
    auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
    std::size_t i = (it - xs_.begin()) - 1;
    double t = (x - xs_[i]) / (xs_[i + 1] - xs_[i]);
    return ys_[i] + t * (ys_[i + 1] - ys_[i]);
}

double
PiecewiseLinear::inverse(double y) const
{
    require(xs_.size() >= 2,
            "PiecewiseLinear::inverse needs at least two points");
    require(strictlyIncreasing(),
            "PiecewiseLinear::inverse requires strictly increasing y");
    if (y <= ys_.front())
        return xs_.front();
    if (y >= ys_.back())
        return xs_.back();
    auto it = std::upper_bound(ys_.begin(), ys_.end(), y);
    std::size_t i = (it - ys_.begin()) - 1;
    double t = (y - ys_[i]) / (ys_[i + 1] - ys_[i]);
    return xs_[i] + t * (xs_[i + 1] - xs_[i]);
}

double
PiecewiseLinear::integral(double a, double b) const
{
    require(!xs_.empty(), "PiecewiseLinear: integrating empty curve");
    if (a > b)
        return -integral(b, a);
    // Integrate by walking segments, treating extrapolated regions as
    // constant at the end values.
    double total = 0.0;
    auto segment = [this](double lo, double hi) {
        return 0.5 * ((*this)(lo) + (*this)(hi)) * (hi - lo);
    };
    // Collect the interior breakpoints between a and b.
    double prev = a;
    for (std::size_t i = 0; i < xs_.size(); ++i) {
        if (xs_[i] <= a)
            continue;
        if (xs_[i] >= b)
            break;
        total += segment(prev, xs_[i]);
        prev = xs_[i];
    }
    total += segment(prev, b);
    return total;
}

double
PiecewiseLinear::minX() const
{
    require(!xs_.empty(), "PiecewiseLinear: minX of empty curve");
    return xs_.front();
}

double
PiecewiseLinear::maxX() const
{
    require(!xs_.empty(), "PiecewiseLinear: maxX of empty curve");
    return xs_.back();
}

bool
PiecewiseLinear::strictlyIncreasing() const
{
    for (std::size_t i = 1; i < ys_.size(); ++i) {
        if (ys_[i] <= ys_[i - 1])
            return false;
    }
    return true;
}

} // namespace tts
