/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * The workload generator and validation-noise models must be exactly
 * reproducible across platforms, so we ship our own xoshiro256**
 * generator instead of relying on std:: distribution implementations
 * (which are unspecified across standard libraries).
 */

#ifndef TTS_UTIL_RANDOM_HH
#define TTS_UTIL_RANDOM_HH

#include <cstdint>

namespace tts {

/** xoshiro256** PRNG with SplitMix64 seeding. */
class Rng
{
  public:
    /**
     * Construct from a 64-bit seed; the full 256-bit state is derived
     * via SplitMix64.
     */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** @return Next raw 64-bit value. */
    std::uint64_t next();

    /** @return Uniform double in [0, 1). */
    double uniform();

    /** @return Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** @return Standard normal variate (Box-Muller, deterministic). */
    double normal();

    /** @return Normal variate with the given mean and stddev. */
    double normal(double mean, double stddev);

    /**
     * @return Exponential variate with the given rate (events per
     * unit time); used for Poisson arrival gaps.
     */
    double exponential(double rate);

    /** @return Poisson-distributed count with the given mean. */
    std::uint64_t poisson(double mean);

    /** @return Uniform integer in [0, n). */
    std::uint64_t uniformInt(std::uint64_t n);

    /**
     * @return An independent generator for sub-stream `stream` of
     * `seed`.
     *
     * Parallel studies give every task its own stream keyed by the
     * task's input index, so a seeded run draws identical numbers at
     * any thread count (tts::exec determinism contract).  The stream
     * id is whitened through SplitMix64 before being folded into the
     * seed, so adjacent ids yield uncorrelated states.
     */
    static Rng forStream(std::uint64_t seed, std::uint64_t stream);

    /**
     * Full generator state for checkpointing: the four xoshiro256**
     * words plus the Box-Muller spare, so a restored generator
     * continues the stream bit-identically.
     */
    struct State
    {
        std::uint64_t s[4];
        bool haveSpare;
        double spare;
    };

    /** @return A snapshot of the current stream position. */
    State state() const;

    /** Restore a snapshot taken with state(). */
    void setState(const State &st);

  private:
    std::uint64_t s_[4];
    bool have_spare_ = false;
    double spare_ = 0.0;
};

} // namespace tts

#endif // TTS_UTIL_RANDOM_HH
