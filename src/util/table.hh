/**
 * @file
 * ASCII table and CSV emission for bench harnesses and reports.
 *
 * Every bench binary regenerates one of the paper's tables or figures
 * as rows of text; these helpers keep the output format consistent.
 */

#ifndef TTS_UTIL_TABLE_HH
#define TTS_UTIL_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace tts {

/**
 * A simple column-aligned ASCII table.
 *
 * Usage:
 * @code
 *   AsciiTable t({"PCM", "Melting Temp (C)"});
 *   t.addRow({"n-Paraffins", "6-65"});
 *   t.print(std::cout);
 * @endcode
 */
class AsciiTable
{
  public:
    /** Construct with column headers. */
    explicit AsciiTable(std::vector<std::string> headers);

    /** Append a row; must match the header count. */
    void addRow(std::vector<std::string> row);

    /** Render the table with aligned columns and a header rule. */
    void print(std::ostream &os) const;

    /** @return Number of data rows. */
    std::size_t rowCount() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/**
 * Streaming CSV writer.
 *
 * Writes the header on construction, then one row per writeRow call.
 * Values are not quoted: the library only emits numeric and simple
 * identifier cells.
 */
class CsvWriter
{
  public:
    /**
     * @param os      Output stream (kept by reference; must outlive).
     * @param columns Column names.
     */
    CsvWriter(std::ostream &os, std::vector<std::string> columns);

    /** Write one row of numeric cells. */
    void writeRow(const std::vector<double> &cells);

    /** Write one row of preformatted string cells. */
    void writeRow(const std::vector<std::string> &cells);

  private:
    std::ostream &os_;
    std::size_t columns_;
};

/** Format a double with the given precision (fixed notation). */
std::string formatFixed(double v, int precision);

} // namespace tts

#endif // TTS_UTIL_TABLE_HH
