#include "util/time_series.hh"

#include <algorithm>
#include <cmath>

#include "util/error.hh"

namespace tts {

void
TimeSeries::append(double t, double v)
{
    if (!times_.empty())
        require(t > times_.back(),
                "TimeSeries::append: times must be strictly increasing");
    times_.push_back(t);
    values_.push_back(v);
}

double
TimeSeries::at(double t) const
{
    require(!times_.empty(), "TimeSeries::at: empty series");
    if (t <= times_.front())
        return values_.front();
    if (t >= times_.back())
        return values_.back();
    auto it = std::upper_bound(times_.begin(), times_.end(), t);
    std::size_t i = (it - times_.begin()) - 1;
    double u = (t - times_[i]) / (times_[i + 1] - times_[i]);
    return values_[i] + u * (values_[i + 1] - values_[i]);
}

double
TimeSeries::startTime() const
{
    require(!times_.empty(), "TimeSeries::startTime: empty series");
    return times_.front();
}

double
TimeSeries::endTime() const
{
    require(!times_.empty(), "TimeSeries::endTime: empty series");
    return times_.back();
}

double
TimeSeries::max() const
{
    require(!values_.empty(), "TimeSeries::max: empty series");
    return *std::max_element(values_.begin(), values_.end());
}

double
TimeSeries::min() const
{
    require(!values_.empty(), "TimeSeries::min: empty series");
    return *std::min_element(values_.begin(), values_.end());
}

double
TimeSeries::argMax() const
{
    require(!values_.empty(), "TimeSeries::argMax: empty series");
    auto it = std::max_element(values_.begin(), values_.end());
    return times_[it - values_.begin()];
}

double
TimeSeries::mean() const
{
    require(times_.size() >= 2, "TimeSeries::mean: need >= 2 samples");
    double span = times_.back() - times_.front();
    return integral(times_.front(), times_.back()) / span;
}

double
TimeSeries::integral(double a, double b) const
{
    require(!times_.empty(), "TimeSeries::integral: empty series");
    if (a > b)
        return -integral(b, a);
    double total = 0.0;
    double prev_t = a;
    double prev_v = at(a);
    for (std::size_t i = 0; i < times_.size(); ++i) {
        if (times_[i] <= a)
            continue;
        if (times_[i] >= b)
            break;
        total += 0.5 * (prev_v + values_[i]) * (times_[i] - prev_t);
        prev_t = times_[i];
        prev_v = values_[i];
    }
    total += 0.5 * (prev_v + at(b)) * (b - prev_t);
    return total;
}

double
TimeSeries::firstCrossingAbove(double level) const
{
    require(!times_.empty(),
            "TimeSeries::firstCrossingAbove: empty series");
    if (values_.front() >= level)
        return times_.front();
    for (std::size_t i = 1; i < times_.size(); ++i) {
        if (values_[i] >= level) {
            // Linear crossing within segment [i-1, i].
            double dv = values_[i] - values_[i - 1];
            if (dv <= 0.0)
                return times_[i];
            double u = (level - values_[i - 1]) / dv;
            return times_[i - 1] + u * (times_[i] - times_[i - 1]);
        }
    }
    return -1.0;
}

double
TimeSeries::timeAbove(double level) const
{
    if (times_.size() < 2)
        return 0.0;
    double total = 0.0;
    for (std::size_t i = 1; i < times_.size(); ++i) {
        double t0 = times_[i - 1], t1 = times_[i];
        double v0 = values_[i - 1], v1 = values_[i];
        bool a0 = v0 >= level, a1 = v1 >= level;
        double dt = t1 - t0;
        if (a0 && a1) {
            total += dt;
        } else if (a0 != a1) {
            double u = (level - v0) / (v1 - v0);
            total += a0 ? u * dt : (1.0 - u) * dt;
        }
    }
    return total;
}

TimeSeries
TimeSeries::scaled(double factor) const
{
    TimeSeries out(name_);
    for (std::size_t i = 0; i < times_.size(); ++i)
        out.append(times_[i], values_[i] * factor);
    return out;
}

TimeSeries
TimeSeries::resampled(double dt) const
{
    require(dt > 0.0, "TimeSeries::resampled: dt must be positive");
    require(times_.size() >= 2,
            "TimeSeries::resampled: need >= 2 samples");
    TimeSeries out(name_);
    double t = times_.front();
    while (t < times_.back()) {
        out.append(t, at(t));
        t += dt;
    }
    out.append(times_.back(), values_.back());
    return out;
}

TimeSeries
TimeSeries::combine(const TimeSeries &a, const TimeSeries &b,
                    double (*op)(double, double), std::string name)
{
    std::vector<double> grid;
    grid.reserve(a.times_.size() + b.times_.size());
    grid.insert(grid.end(), a.times_.begin(), a.times_.end());
    grid.insert(grid.end(), b.times_.begin(), b.times_.end());
    std::sort(grid.begin(), grid.end());
    grid.erase(std::unique(grid.begin(), grid.end()), grid.end());
    TimeSeries out(std::move(name));
    for (double t : grid)
        out.append(t, op(a.at(t), b.at(t)));
    return out;
}

} // namespace tts
