#include "util/error.hh"

namespace tts {

void
fatal(const std::string &msg)
{
    throw FatalError("fatal: " + msg);
}

void
panic(const std::string &msg)
{
    throw PanicError("panic: " + msg);
}

} // namespace tts
