#include "util/cli.hh"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "util/error.hh"

namespace tts {
namespace cli {

namespace {

/** Classic Levenshtein distance (small strings; O(n*m) rows). */
std::size_t
editDistance(const std::string &a, const std::string &b)
{
    std::vector<std::size_t> prev(b.size() + 1), cur(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        prev[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        cur[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            std::size_t sub =
                prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
            cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
        }
        std::swap(prev, cur);
    }
    return prev[b.size()];
}

bool
parseDoubleValue(const std::string &s, double *out)
{
    if (s.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(s.c_str(), &end);
    if (errno != 0 || end != s.c_str() + s.size())
        return false;
    *out = v;
    return true;
}

bool
parseLongValue(const std::string &s, long long *out)
{
    if (s.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    long long v = std::strtoll(s.c_str(), &end, 10);
    if (errno != 0 || end != s.c_str() + s.size())
        return false;
    *out = v;
    return true;
}

std::string
formatDefault(double v)
{
    std::ostringstream os;
    os << v;
    return os.str();
}

} // namespace

Parser::Parser(std::string program, std::string summary)
    : program_(std::move(program)), summary_(std::move(summary))
{
}

void
Parser::add(const std::string &name, Kind kind, void *out,
            const std::string &help, std::string default_repr,
            std::vector<std::string> choices)
{
    require(!name.empty() && name.rfind("--", 0) != 0,
            "cli: register flag names without the leading '--'");
    require(out != nullptr, "cli: null destination for --" + name);
    for (const auto &s : specs_)
        require(s.name != name, "cli: duplicate flag --" + name);
    specs_.push_back(Spec{name, kind, out, help,
                          std::move(default_repr),
                          std::move(choices)});
}

void
Parser::addFlag(const std::string &name, bool *out,
                const std::string &help)
{
    add(name, Kind::Flag, out, help, *out ? "true" : "false");
}

void
Parser::addDouble(const std::string &name, double *out,
                  const std::string &help)
{
    add(name, Kind::Double, out, help, formatDefault(*out));
}

void
Parser::addInt(const std::string &name, int *out,
               const std::string &help)
{
    add(name, Kind::Int, out, help, std::to_string(*out));
}

void
Parser::addSize(const std::string &name, std::size_t *out,
                const std::string &help)
{
    add(name, Kind::Size, out, help, std::to_string(*out));
}

void
Parser::addString(const std::string &name, std::string *out,
                  const std::string &help)
{
    add(name, Kind::String, out, help,
        out->empty() ? std::string() : "\"" + *out + "\"");
}

void
Parser::addChoice(const std::string &name, std::string *out,
                  const std::vector<std::string> &choices,
                  const std::string &help)
{
    require(!choices.empty(), "cli: empty choice set for --" + name);
    add(name, Kind::Choice, out, help, *out, choices);
}

void
Parser::addPositional(const std::string &name, std::string *out,
                      const std::string &help)
{
    require(out != nullptr,
            "cli: null destination for positional " + name);
    positionals_.push_back(Positional{name, out, help});
}

bool
Parser::fail(const std::string &message)
{
    error_ = program_ + ": " + message;
    return false;
}

std::string
Parser::suggestionFor(const std::string &name) const
{
    std::string best;
    std::size_t best_d = std::numeric_limits<std::size_t>::max();
    for (const auto &s : specs_) {
        std::size_t d = editDistance(name, s.name);
        if (d < best_d) {
            best_d = d;
            best = s.name;
        }
    }
    // Only suggest near-misses: a distance beyond 2 (or most of the
    // name's length) reads as noise, not help.
    if (best.empty() ||
        best_d > std::max<std::size_t>(2, name.size() / 2))
        return std::string();
    return best;
}

bool
Parser::applyValue(const Spec &spec, const std::string &value)
{
    switch (spec.kind) {
      case Kind::Flag: {
        if (value == "true" || value == "1") {
            *static_cast<bool *>(spec.out) = true;
            return true;
        }
        if (value == "false" || value == "0") {
            *static_cast<bool *>(spec.out) = false;
            return true;
        }
        return fail("bad value '" + value + "' for --" + spec.name +
                    " (want true|false|1|0)");
      }
      case Kind::Double: {
        double v;
        if (!parseDoubleValue(value, &v))
            return fail("bad number '" + value + "' for --" +
                        spec.name);
        *static_cast<double *>(spec.out) = v;
        return true;
      }
      case Kind::Int: {
        long long v;
        if (!parseLongValue(value, &v) ||
            v < std::numeric_limits<int>::min() ||
            v > std::numeric_limits<int>::max())
            return fail("bad integer '" + value + "' for --" +
                        spec.name);
        *static_cast<int *>(spec.out) = static_cast<int>(v);
        return true;
      }
      case Kind::Size: {
        long long v;
        if (!parseLongValue(value, &v) || v < 0)
            return fail("bad size '" + value + "' for --" +
                        spec.name);
        *static_cast<std::size_t *>(spec.out) =
            static_cast<std::size_t>(v);
        return true;
      }
      case Kind::String:
        *static_cast<std::string *>(spec.out) = value;
        return true;
      case Kind::Choice: {
        for (const auto &c : spec.choices) {
            if (value == c) {
                *static_cast<std::string *>(spec.out) = value;
                return true;
            }
        }
        std::string want;
        for (const auto &c : spec.choices)
            want += (want.empty() ? "" : "|") + c;
        return fail("bad value '" + value + "' for --" + spec.name +
                    " (want " + want + ")");
      }
    }
    return fail("unreachable");
}

Status
Parser::parse(int argc, const char *const *argv)
{
    std::vector<std::string> args(argv, argv + argc);
    return parse(args);
}

Status
Parser::parse(const std::vector<std::string> &args)
{
    error_.clear();
    std::size_t next_positional = 0;
    for (const std::string &a : args) {
        if (a == "--help" || a == "-h")
            return Status::Help;
        if (a.rfind("--", 0) != 0) {
            if (next_positional < positionals_.size()) {
                *positionals_[next_positional++].out = a;
                continue;
            }
            fail("unexpected argument '" + a + "'");
            return Status::Error;
        }
        std::string body = a.substr(2);
        std::string name = body;
        std::string value;
        bool has_value = false;
        auto eq = body.find('=');
        if (eq != std::string::npos) {
            name = body.substr(0, eq);
            value = body.substr(eq + 1);
            has_value = true;
        }
        const Spec *spec = nullptr;
        for (const auto &s : specs_) {
            if (s.name == name) {
                spec = &s;
                break;
            }
        }
        if (!spec) {
            std::string hint = suggestionFor(name);
            fail("unknown flag '--" + name + "'" +
                 (hint.empty() ? std::string()
                               : " (did you mean '--" + hint + "'?)") +
                 "; see --help");
            return Status::Error;
        }
        if (!has_value) {
            if (spec->kind != Kind::Flag) {
                fail("flag --" + name + " needs a value (--" + name +
                     "=...)");
                return Status::Error;
            }
            *static_cast<bool *>(spec->out) = true;
            continue;
        }
        if (!applyValue(*spec, value))
            return Status::Error;
    }
    return Status::Ok;
}

std::string
Parser::helpText() const
{
    std::ostringstream os;
    os << "usage: " << program_ << " [options]";
    for (const auto &p : positionals_)
        os << " [" << p.name << "]";
    os << "\n";
    if (!summary_.empty())
        os << summary_ << "\n";
    if (!positionals_.empty()) {
        os << "\npositional arguments:\n";
        for (const auto &p : positionals_)
            os << "  " << p.name << "  " << p.help << "\n";
    }
    os << "\noptions:\n";
    std::size_t width = 4; // for --help
    for (const auto &s : specs_)
        width = std::max(width, s.name.size() +
                                    (s.kind == Kind::Flag ? 0 : 4));
    for (const auto &s : specs_) {
        std::string left = "--" + s.name;
        if (s.kind != Kind::Flag)
            left += "=<v>";
        os << "  " << left
           << std::string(width + 2 - (left.size() - 2), ' ')
           << s.help;
        if (s.kind == Kind::Choice) {
            os << " [";
            for (std::size_t i = 0; i < s.choices.size(); ++i)
                os << (i ? "|" : "") << s.choices[i];
            os << "]";
        }
        if (!s.defaultRepr.empty())
            os << " (default " << s.defaultRepr << ")";
        os << "\n";
    }
    os << "  --help" << std::string(width + 2 - 4, ' ')
       << "show this help\n";
    return os.str();
}

} // namespace cli
} // namespace tts
