/**
 * @file
 * Time series container used across the workload, thermal, and
 * datacenter modules.
 *
 * A TimeSeries is a sequence of (time, value) samples with strictly
 * increasing times.  Lookup between samples interpolates linearly;
 * lookup outside the range clamps.
 */

#ifndef TTS_UTIL_TIME_SERIES_HH
#define TTS_UTIL_TIME_SERIES_HH

#include <cstddef>
#include <string>
#include <vector>

namespace tts {

/** A named, linearly-interpolated time series. */
class TimeSeries
{
  public:
    /** Construct an empty, unnamed series. */
    TimeSeries() = default;

    /**
     * Construct an empty series with a name (used as a CSV column
     * header and in reports).
     */
    explicit TimeSeries(std::string name) : name_(std::move(name)) {}

    /**
     * Append a sample.  Time must exceed the last sample's time.
     *
     * @param t Time (s).
     * @param v Value.
     */
    void append(double t, double v);

    /**
     * Value at time t with linear interpolation and clamped ends.
     *
     * @param t Query time (s).
     */
    double at(double t) const;

    /** @return Number of samples. */
    std::size_t size() const { return times_.size(); }

    /** @return True if there are no samples. */
    bool empty() const { return times_.empty(); }

    /** @return Time of the first sample (s). */
    double startTime() const;
    /** @return Time of the last sample (s). */
    double endTime() const;

    /** @return Largest sample value. */
    double max() const;
    /** @return Smallest sample value. */
    double min() const;
    /** @return Time of the first sample achieving max(). */
    double argMax() const;

    /**
     * Time-weighted mean over the sampled span (trapezoidal).
     * Requires at least two samples.
     */
    double mean() const;

    /**
     * Trapezoidal integral of the series between a and b, clamping
     * the series outside its span.
     */
    double integral(double a, double b) const;

    /**
     * Earliest time in [startTime, endTime] where the series crosses
     * the given level going upward, or a negative value if it never
     * does.
     */
    double firstCrossingAbove(double level) const;

    /**
     * Total time for which the series value is >= level (piecewise-
     * linear crossing-aware measure).
     */
    double timeAbove(double level) const;

    /**
     * Return a new series with every value multiplied by factor.
     */
    TimeSeries scaled(double factor) const;

    /**
     * Resample onto a uniform grid with the given step.
     *
     * @param dt Grid step (s), must be > 0.
     */
    TimeSeries resampled(double dt) const;

    /** @return The series name. */
    const std::string &name() const { return name_; }
    /** Set the series name. */
    void setName(std::string name) { name_ = std::move(name); }

    /** @return Raw sample times. */
    const std::vector<double> &times() const { return times_; }
    /** @return Raw sample values. */
    const std::vector<double> &values() const { return values_; }

    /**
     * Pointwise binary combination of two series on the union of their
     * sample times.
     */
    static TimeSeries combine(const TimeSeries &a, const TimeSeries &b,
                              double (*op)(double, double),
                              std::string name = "");

  private:
    std::string name_;
    std::vector<double> times_;
    std::vector<double> values_;
};

} // namespace tts

#endif // TTS_UTIL_TIME_SERIES_HH
