#include "util/stats.hh"

#include <algorithm>
#include <cmath>

#include "util/error.hh"

namespace tts {

void
RunningStats::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
RunningStats::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStats::reset()
{
    *this = RunningStats();
}

double
percentile(std::vector<double> data, double p)
{
    require(!data.empty(), "percentile: empty data");
    require(p >= 0.0 && p <= 100.0, "percentile: p out of [0, 100]");
    std::sort(data.begin(), data.end());
    if (data.size() == 1)
        return data.front();
    double rank = p / 100.0 * static_cast<double>(data.size() - 1);
    std::size_t lo = static_cast<std::size_t>(rank);
    std::size_t hi = std::min(lo + 1, data.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return data[lo] + frac * (data[hi] - data[lo]);
}

double
meanAbsoluteDifference(const std::vector<double> &a,
                       const std::vector<double> &b)
{
    require(a.size() == b.size() && !a.empty(),
            "meanAbsoluteDifference: size mismatch or empty");
    double total = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        total += std::abs(a[i] - b[i]);
    return total / static_cast<double>(a.size());
}

double
pearsonCorrelation(const std::vector<double> &a,
                   const std::vector<double> &b)
{
    require(a.size() == b.size() && a.size() >= 2,
            "pearsonCorrelation: need equal sizes >= 2");
    RunningStats sa, sb;
    for (double x : a)
        sa.add(x);
    for (double x : b)
        sb.add(x);
    double cov = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        cov += (a[i] - sa.mean()) * (b[i] - sb.mean());
    cov /= static_cast<double>(a.size() - 1);
    double denom = sa.stddev() * sb.stddev();
    require(denom > 0.0, "pearsonCorrelation: zero variance input");
    return cov / denom;
}

} // namespace tts
