#include "util/stats.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hh"

namespace tts {

void
RunningStats::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
RunningStats::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStats::reset()
{
    *this = RunningStats();
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      counts_(bounds_.size() + 1, 0)
{
    require(!bounds_.empty(), "Histogram: no bucket bounds");
    for (std::size_t i = 0; i < bounds_.size(); ++i) {
        require(std::isfinite(bounds_[i]),
                "Histogram: non-finite bucket bound");
        require(i == 0 || bounds_[i - 1] < bounds_[i],
                "Histogram: bounds not strictly increasing");
    }
}

void
Histogram::add(double x)
{
    require(std::isfinite(x), "Histogram::add: non-finite value");
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    std::size_t bucket = static_cast<std::size_t>(
        std::lower_bound(bounds_.begin(), bounds_.end(), x) -
        bounds_.begin());
    ++counts_[bucket];
}

void
Histogram::merge(const Histogram &o)
{
    require(bounds_ == o.bounds_,
            "Histogram::merge: bucket bounds differ");
    if (o.n_ == 0)
        return;
    if (n_ == 0) {
        min_ = o.min_;
        max_ = o.max_;
    } else {
        min_ = std::min(min_, o.min_);
        max_ = std::max(max_, o.max_);
    }
    n_ += o.n_;
    sum_ += o.sum_;
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += o.counts_[i];
}

double
Histogram::upperBound(std::size_t i) const
{
    require(i < counts_.size(), "Histogram::upperBound: bad bucket");
    if (i == bounds_.size())
        return std::numeric_limits<double>::infinity();
    return bounds_[i];
}

std::size_t
Histogram::countInBucket(std::size_t i) const
{
    require(i < counts_.size(),
            "Histogram::countInBucket: bad bucket");
    return counts_[i];
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    n_ = 0;
    sum_ = min_ = max_ = 0.0;
}

double
percentile(std::vector<double> data, double p)
{
    require(!data.empty(), "percentile: empty data");
    require(p >= 0.0 && p <= 100.0, "percentile: p out of [0, 100]");
    std::sort(data.begin(), data.end());
    if (data.size() == 1)
        return data.front();
    double rank = p / 100.0 * static_cast<double>(data.size() - 1);
    std::size_t lo = static_cast<std::size_t>(rank);
    std::size_t hi = std::min(lo + 1, data.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return data[lo] + frac * (data[hi] - data[lo]);
}

double
meanAbsoluteDifference(const std::vector<double> &a,
                       const std::vector<double> &b)
{
    require(a.size() == b.size() && !a.empty(),
            "meanAbsoluteDifference: size mismatch or empty");
    double total = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        total += std::abs(a[i] - b[i]);
    return total / static_cast<double>(a.size());
}

double
pearsonCorrelation(const std::vector<double> &a,
                   const std::vector<double> &b)
{
    require(a.size() == b.size() && a.size() >= 2,
            "pearsonCorrelation: need equal sizes >= 2");
    RunningStats sa, sb;
    for (double x : a)
        sa.add(x);
    for (double x : b)
        sb.add(x);
    double cov = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        cov += (a[i] - sa.mean()) * (b[i] - sb.mean());
    cov /= static_cast<double>(a.size() - 1);
    double denom = sa.stddev() * sb.stddev();
    require(denom > 0.0, "pearsonCorrelation: zero variance input");
    return cov / denom;
}

} // namespace tts
