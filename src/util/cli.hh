/**
 * @file
 * Minimal typed command-line flag parser.
 *
 * Replaces the hand-rolled `rfind("--x=", 0)` chains of the tools and
 * bench binaries.  Flags register against typed destinations; parse()
 * fills them in and reports problems as values instead of calling
 * exit(), so the parser itself is unit-testable:
 *
 * @code
 *   double melt = 0.0;
 *   bool csv = false;
 *   cli::Parser p("tts_sim cooling", "Cooling-load study");
 *   p.addDouble("melt", &melt, "melting temperature (C)");
 *   p.addFlag("csv", &csv, "emit CSV instead of a table");
 *   switch (p.parse(argc - 2, argv + 2)) {
 *     case cli::Status::Help: std::cout << p.helpText(); return 0;
 *     case cli::Status::Error:
 *         std::cerr << p.error() << "\n"; return 2;
 *     case cli::Status::Ok: break;
 *   }
 * @endcode
 *
 * Syntax: `--name=value` for valued flags, `--name` (or
 * `--name=true|false|1|0`) for booleans.  `--help`/`-h` is always
 * recognized.  Unknown flags produce an error that names the closest
 * registered flag (edit distance) as a suggestion; malformed numbers
 * are errors, not silent zeros.
 */

#ifndef TTS_UTIL_CLI_HH
#define TTS_UTIL_CLI_HH

#include <cstddef>
#include <string>
#include <vector>

namespace tts {
namespace cli {

/** Outcome of Parser::parse(). */
enum class Status
{
    Ok,    //!< All arguments consumed; destinations filled in.
    Help,  //!< --help/-h seen; print helpText() and exit 0.
    Error, //!< Bad input; print error() and exit non-zero.
};

/** Typed flag registry + parser.  See the file comment. */
class Parser
{
  public:
    /**
     * @param program Program (or subcommand) name for helpText().
     * @param summary One-line description for helpText(); optional.
     */
    explicit Parser(std::string program, std::string summary = "");

    /** Boolean switch: `--name` or `--name=true|false|1|0`. */
    void addFlag(const std::string &name, bool *out,
                 const std::string &help);
    /** Floating-point flag: `--name=3.5`. */
    void addDouble(const std::string &name, double *out,
                   const std::string &help);
    /** Integer flag: `--name=-2`. */
    void addInt(const std::string &name, int *out,
                const std::string &help);
    /** Unsigned size flag: `--name=1008`. */
    void addSize(const std::string &name, std::size_t *out,
                 const std::string &help);
    /** String flag: `--name=path`. */
    void addString(const std::string &name, std::string *out,
                   const std::string &help);
    /**
     * String flag restricted to a fixed choice set; anything else is
     * an error listing the choices.
     */
    void addChoice(const std::string &name, std::string *out,
                   const std::vector<std::string> &choices,
                   const std::string &help);
    /**
     * Optional positional argument (consumed in registration order).
     * Extra positionals beyond those registered are errors.
     */
    void addPositional(const std::string &name, std::string *out,
                       const std::string &help);

    /**
     * Parse exactly the given arguments (no argv[0] skipping; pass
     * `argc - 1, argv + 1` from main).  Destinations keep their
     * defaults for flags that never appear.
     */
    Status parse(int argc, const char *const *argv);
    /** Same, from a vector (tests). */
    Status parse(const std::vector<std::string> &args);

    /** @return The error message after Status::Error. */
    const std::string &error() const { return error_; }

    /** @return The generated --help text. */
    std::string helpText() const;

  private:
    enum class Kind
    {
        Flag,
        Double,
        Int,
        Size,
        String,
        Choice,
    };

    struct Spec
    {
        std::string name;
        Kind kind;
        void *out;
        std::string help;
        std::string defaultRepr;
        std::vector<std::string> choices;
    };

    struct Positional
    {
        std::string name;
        std::string *out;
        std::string help;
    };

    void add(const std::string &name, Kind kind, void *out,
             const std::string &help, std::string default_repr,
             std::vector<std::string> choices = {});
    bool applyValue(const Spec &spec, const std::string &value);
    bool fail(const std::string &message);
    /** Closest registered flag by edit distance, or empty. */
    std::string suggestionFor(const std::string &name) const;

    std::string program_;
    std::string summary_;
    std::vector<Spec> specs_;
    std::vector<Positional> positionals_;
    std::string error_;
};

} // namespace cli
} // namespace tts

#endif // TTS_UTIL_CLI_HH
