#include "util/kv_json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/error.hh"

namespace tts {

namespace {

void
skipWs(const std::string &s, std::size_t &i)
{
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i])))
        ++i;
}

std::string
parseString(const std::string &s, std::size_t &i)
{
    require(i < s.size() && s[i] == '"',
            "kv_json: expected '\"' at byte offset " + std::to_string(i));
    const std::size_t start = i;
    ++i;
    std::string out;
    while (i < s.size() && s[i] != '"') {
        require(s[i] != '\\',
                "kv_json: escape sequence at byte offset " +
                    std::to_string(i) + " (escapes are not supported)");
        out += s[i++];
    }
    require(i < s.size(),
            "kv_json: unterminated string starting at byte offset " +
                std::to_string(start));
    ++i; // closing quote
    return out;
}

double
parseNumber(const std::string &s, std::size_t &i)
{
    std::size_t start = i;
    while (i < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[i])) ||
            s[i] == '-' || s[i] == '+' || s[i] == '.' ||
            s[i] == 'e' || s[i] == 'E'))
        ++i;
    require(i > start, "kv_json: expected a number at byte offset " +
                           std::to_string(start));
    const std::string tok = s.substr(start, i - start);
    char *end = nullptr;
    double v = std::strtod(tok.c_str(), &end);
    require(end && *end == '\0', "kv_json: bad number '" + tok +
                                     "' at byte offset " +
                                     std::to_string(start));
    return v;
}

/**
 * The shared object walk: both public parsers funnel through this
 * with a value callback, so the hostile-input hardening (byte
 * budget, offset diagnostics, duplicate/nesting rejection) lives in
 * exactly one place.
 */
template <typename OnValue>
void
parseObject(const std::string &text, std::size_t max_bytes,
            bool allow_strings, const OnValue &on_value)
{
    // Bound first: a frame that lies about its payload length must
    // not reach the character loop at all.
    require(text.size() <= max_bytes,
            "kv_json: input of " + std::to_string(text.size()) +
                " bytes exceeds the " + std::to_string(max_bytes) +
                "-byte limit");
    std::size_t i = 0;
    skipWs(text, i);
    require(i < text.size() && text[i] == '{',
            "kv_json: expected '{' at byte offset " + std::to_string(i));
    ++i;
    skipWs(text, i);
    if (i < text.size() && text[i] == '}') {
        ++i;
        skipWs(text, i);
        require(i == text.size(),
                "kv_json: trailing content after object at byte "
                "offset " +
                    std::to_string(i));
        return; // empty object
    }
    for (;;) {
        skipWs(text, i);
        std::string key = parseString(text, i);
        skipWs(text, i);
        require(i < text.size() && text[i] == ':',
                "kv_json: expected ':' after key \"" + key +
                    "\" at byte offset " + std::to_string(i));
        ++i;
        skipWs(text, i);
        const std::size_t value_at = i;
        KvValue value;
        if (i < text.size() && text[i] == '"') {
            require(allow_strings,
                    "kv_json: string value for key \"" + key +
                        "\" at byte offset " + std::to_string(i) +
                        " (this document holds numbers only)");
            value = KvValue::string(parseString(text, i));
        } else {
            value = KvValue::number(parseNumber(text, i));
        }
        on_value(key, value, value_at);
        skipWs(text, i);
        require(i < text.size(),
                "kv_json: unterminated object at byte offset " +
                    std::to_string(i));
        if (text[i] == ',') {
            ++i;
            continue;
        }
        require(text[i] == '}',
                "kv_json: expected ',' or '}' at byte offset " +
                    std::to_string(i));
        ++i;
        break;
    }
    skipWs(text, i);
    require(i == text.size(),
            "kv_json: trailing content after object at byte offset " +
                std::to_string(i));
}

void
requireWritableString(const std::string &key, const std::string &s)
{
    for (char c : s) {
        const auto u = static_cast<unsigned char>(c);
        require(c != '"' && c != '\\' && u >= 0x20,
                "kv_json: string value for key \"" + key +
                    "\" needs escaping (unsupported)");
    }
}

} // namespace

std::string
writeKvJson(const std::map<std::string, double> &kv)
{
    std::ostringstream out;
    out << "{\n";
    std::size_t n = 0;
    for (const auto &[key, value] : kv) {
        // JSON has no NaN/Inf literal; emitting one would silently
        // produce an unparseable document, so refuse up front and
        // name the key so the caller can find the bad metric.
        require(std::isfinite(value),
                "kv_json: non-finite value for key \"" + key + "\"");
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.17g", value);
        out << "  \"" << key << "\": " << buf;
        if (++n < kv.size())
            out << ",";
        out << "\n";
    }
    out << "}\n";
    return out.str();
}

std::map<std::string, double>
parseKvJson(const std::string &text, std::size_t max_bytes)
{
    std::map<std::string, double> kv;
    parseObject(text, max_bytes, false,
                [&](const std::string &key, const KvValue &value,
                    std::size_t offset) {
                    require(kv.emplace(key, value.num).second,
                            "kv_json: duplicate key \"" + key +
                                "\" at byte offset " +
                                std::to_string(offset));
                });
    return kv;
}

std::string
writeKvAnyJson(const KvAnyMap &kv)
{
    std::ostringstream out;
    out << "{\n";
    std::size_t n = 0;
    for (const auto &[key, value] : kv) {
        out << "  \"" << key << "\": ";
        if (value.isString()) {
            requireWritableString(key, value.str);
            out << '"' << value.str << '"';
        } else {
            require(std::isfinite(value.num),
                    "kv_json: non-finite value for key \"" + key +
                        "\"");
            char buf[64];
            std::snprintf(buf, sizeof(buf), "%.17g", value.num);
            out << buf;
        }
        if (++n < kv.size())
            out << ",";
        out << "\n";
    }
    out << "}\n";
    return out.str();
}

KvAnyMap
parseKvAnyJson(const std::string &text, std::size_t max_bytes)
{
    KvAnyMap kv;
    parseObject(text, max_bytes, true,
                [&](const std::string &key, const KvValue &value,
                    std::size_t offset) {
                    require(kv.emplace(key, value).second,
                            "kv_json: duplicate key \"" + key +
                                "\" at byte offset " +
                                std::to_string(offset));
                });
    return kv;
}

void
writeKvJsonFile(const std::string &path,
                const std::map<std::string, double> &kv)
{
    std::ofstream f(path);
    require(f.good(), "kv_json: cannot open '" + path +
                          "' for writing");
    f << writeKvJson(kv);
    f.close();
    require(f.good(), "kv_json: write to '" + path + "' failed");
}

std::map<std::string, double>
readKvJsonFile(const std::string &path)
{
    std::ifstream f(path);
    require(f.good(), "kv_json: cannot open '" + path + "'");
    std::ostringstream buf;
    buf << f.rdbuf();
    return parseKvJson(buf.str());
}

} // namespace tts
