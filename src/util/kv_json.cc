#include "util/kv_json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/error.hh"

namespace tts {

namespace {

void
skipWs(const std::string &s, std::size_t &i)
{
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i])))
        ++i;
}

std::string
parseString(const std::string &s, std::size_t &i)
{
    require(i < s.size() && s[i] == '"',
            "kv_json: expected '\"' at offset " + std::to_string(i));
    ++i;
    std::string out;
    while (i < s.size() && s[i] != '"') {
        require(s[i] != '\\',
                "kv_json: escape sequences are not supported");
        out += s[i++];
    }
    require(i < s.size(), "kv_json: unterminated string");
    ++i; // closing quote
    return out;
}

double
parseNumber(const std::string &s, std::size_t &i)
{
    std::size_t start = i;
    while (i < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[i])) ||
            s[i] == '-' || s[i] == '+' || s[i] == '.' ||
            s[i] == 'e' || s[i] == 'E'))
        ++i;
    require(i > start, "kv_json: expected a number at offset " +
                           std::to_string(start));
    const std::string tok = s.substr(start, i - start);
    char *end = nullptr;
    double v = std::strtod(tok.c_str(), &end);
    require(end && *end == '\0', "kv_json: bad number '" + tok + "'");
    return v;
}

} // namespace

std::string
writeKvJson(const std::map<std::string, double> &kv)
{
    std::ostringstream out;
    out << "{\n";
    std::size_t n = 0;
    for (const auto &[key, value] : kv) {
        // JSON has no NaN/Inf literal; emitting one would silently
        // produce an unparseable document, so refuse up front and
        // name the key so the caller can find the bad metric.
        require(std::isfinite(value),
                "kv_json: non-finite value for key \"" + key + "\"");
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.17g", value);
        out << "  \"" << key << "\": " << buf;
        if (++n < kv.size())
            out << ",";
        out << "\n";
    }
    out << "}\n";
    return out.str();
}

std::map<std::string, double>
parseKvJson(const std::string &text)
{
    std::map<std::string, double> kv;
    std::size_t i = 0;
    skipWs(text, i);
    require(i < text.size() && text[i] == '{',
            "kv_json: expected '{'");
    ++i;
    skipWs(text, i);
    if (i < text.size() && text[i] == '}')
        return kv; // empty object
    for (;;) {
        skipWs(text, i);
        std::string key = parseString(text, i);
        skipWs(text, i);
        require(i < text.size() && text[i] == ':',
                "kv_json: expected ':' after key \"" + key + "\"");
        ++i;
        skipWs(text, i);
        double value = parseNumber(text, i);
        require(kv.emplace(key, value).second,
                "kv_json: duplicate key \"" + key + "\"");
        skipWs(text, i);
        require(i < text.size(),
                "kv_json: unterminated object");
        if (text[i] == ',') {
            ++i;
            continue;
        }
        require(text[i] == '}',
                "kv_json: expected ',' or '}' at offset " +
                    std::to_string(i));
        ++i;
        break;
    }
    skipWs(text, i);
    require(i == text.size(),
            "kv_json: trailing content after object");
    return kv;
}

void
writeKvJsonFile(const std::string &path,
                const std::map<std::string, double> &kv)
{
    std::ofstream f(path);
    require(f.good(), "kv_json: cannot open '" + path +
                          "' for writing");
    f << writeKvJson(kv);
    f.close();
    require(f.good(), "kv_json: write to '" + path + "' failed");
}

std::map<std::string, double>
readKvJsonFile(const std::string &path)
{
    std::ifstream f(path);
    require(f.good(), "kv_json: cannot open '" + path + "'");
    std::ostringstream buf;
    buf << f.rdbuf();
    return parseKvJson(buf.str());
}

} // namespace tts
