#include "pcm/container.hh"

#include <cmath>

#include "util/error.hh"

namespace tts {
namespace pcm {

namespace {
/** Density of aluminum (kg/m^3). */
constexpr double aluminumDensity = 2700.0;
} // namespace

double
BoxSpec::exteriorVolume() const
{
    return lengthM * widthM * heightM;
}

double
BoxSpec::interiorVolume() const
{
    double l = lengthM - 2.0 * wallThicknessM;
    double w = widthM - 2.0 * wallThicknessM;
    double h = heightM - 2.0 * wallThicknessM;
    if (l <= 0.0 || w <= 0.0 || h <= 0.0)
        return 0.0;
    return l * w * h;
}

double
BoxSpec::waxVolume() const
{
    return interiorVolume() * fillFraction;
}

double
BoxSpec::surfaceArea() const
{
    return 2.0 * (lengthM * widthM + lengthM * heightM +
                  widthM * heightM);
}

double
BoxSpec::frontalArea() const
{
    return widthM * heightM;
}

double
BoxSpec::shellMass() const
{
    return (exteriorVolume() - interiorVolume()) * aluminumDensity;
}

ContainerBank::ContainerBank(const BoxSpec &box, std::size_t count,
                             double duct_area)
    : box_(box), count_(count), duct_area_(duct_area)
{
    require(count >= 1, "ContainerBank: need at least one box");
    require(duct_area > 0.0, "ContainerBank: duct area must be > 0");
    require(box.lengthM > 0.0 && box.widthM > 0.0 && box.heightM > 0.0,
            "ContainerBank: box dimensions must be > 0");
    require(box.fillFraction > 0.0 && box.fillFraction <= 1.0,
            "ContainerBank: fill fraction must be in (0, 1]");
    require(blockageFraction() < 1.0,
            "ContainerBank: bank blocks the entire duct");
}

double
ContainerBank::waxVolume() const
{
    return static_cast<double>(count_) * box_.waxVolume();
}

double
ContainerBank::waxMass(double density) const
{
    require(density > 0.0, "ContainerBank: density must be > 0");
    return waxVolume() * density;
}

double
ContainerBank::shellMass() const
{
    return static_cast<double>(count_) * box_.shellMass();
}

double
ContainerBank::surfaceArea() const
{
    return static_cast<double>(count_) * box_.surfaceArea();
}

double
ContainerBank::blockageFraction() const
{
    double blocked = static_cast<double>(count_) * box_.frontalArea();
    return std::min(blocked / duct_area_, 1.0);
}

double
ContainerBank::conductanceAt(double velocity) const
{
    require(velocity >= 0.0,
            "ContainerBank: velocity must be >= 0");
    // Keep a small natural-convection floor so a fanless state still
    // exchanges some heat.
    double v = std::max(velocity, 0.05);
    double h = refHeatTransferCoeff *
        std::pow(v / refVelocity, 0.8);
    return h * surfaceArea();
}

ContainerBank
sizeBank(double target_volume, double duct_area, double duct_height,
         double max_blockage, std::size_t box_count)
{
    require(target_volume > 0.0, "sizeBank: target volume must be > 0");
    require(box_count >= 1, "sizeBank: need at least one box");
    require(max_blockage > 0.0 && max_blockage < 1.0,
            "sizeBank: blockage cap must be in (0, 1)");

    // Boxes span 90% of the duct height, leaving clearance above and
    // below as the paper does to keep air moving over every face.
    BoxSpec box;
    box.heightM = duct_height * 0.9;
    // Width chosen so the bank exactly hits the blockage cap...
    double frontal_budget = duct_area * max_blockage;
    box.widthM = frontal_budget /
        (static_cast<double>(box_count) * box.heightM);
    require(box.widthM > 4.0 * box.wallThicknessM,
            "sizeBank: blockage cap too small for this box count");
    // ...then depth (length along the flow) supplies the volume.
    double per_box = target_volume / static_cast<double>(box_count);
    // Solve interior l from per_box = fill * l_i * w_i * h_i.
    double w_i = box.widthM - 2.0 * box.wallThicknessM;
    double h_i = box.heightM - 2.0 * box.wallThicknessM;
    double l_i = per_box / (box.fillFraction * w_i * h_i);
    box.lengthM = l_i + 2.0 * box.wallThicknessM;
    require(box.lengthM < 0.5,
            "sizeBank: required box depth exceeds server interior");
    return ContainerBank(box, box_count, duct_area);
}

} // namespace pcm
} // namespace tts
