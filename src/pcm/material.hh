/**
 * @file
 * Phase change material property database.
 *
 * Encodes Table 1 of the paper (properties of common solid-liquid
 * PCMs) plus the two concrete waxes the paper prices out: molecular
 * pure eicosane n-paraffin and commercial grade paraffin.  A
 * suitability filter reproduces the Section 2.1 selection argument.
 */

#ifndef TTS_PCM_MATERIAL_HH
#define TTS_PCM_MATERIAL_HH

#include <string>
#include <vector>

namespace tts {
namespace pcm {

/** Broad PCM family, matching the rows of Table 1. */
enum class Family
{
    SaltHydrate,
    MetalAlloy,
    FattyAcid,
    NParaffin,
    CommercialParaffin,
};

/** Qualitative cycling-stability rating used in Table 1. */
enum class Stability
{
    Poor,
    Unknown,
    Good,
    VeryGood,
    Excellent,
};

/** Qualitative electrical conductivity rating used in Table 1. */
enum class Conductivity
{
    VeryLow,
    Low,
    Unknown,
    High,
};

/** @return Human-readable name of a Family value. */
std::string toString(Family f);
/** @return Human-readable name of a Stability value. */
std::string toString(Stability s);
/** @return Human-readable name of a Conductivity value. */
std::string toString(Conductivity c);

/**
 * One PCM with the properties the paper uses to compare candidates.
 *
 * Melting temperature and density are given as [min, max] ranges
 * because families (and commercial paraffin blends) span a range; a
 * concrete deployment picks a value inside the range.
 */
struct Material
{
    /** Display name ("Commercial Paraffin", "Eicosane", ...). */
    std::string name;
    /** Material family. */
    Family family;
    /** Lowest available melting temperature (C). */
    double meltingTempMinC;
    /** Highest available melting temperature (C). */
    double meltingTempMaxC;
    /** Heat of fusion (J/g). */
    double heatOfFusionJPerG;
    /** Solid density (g/ml). */
    double densitySolidGPerMl;
    /** Liquid density (g/ml). */
    double densityLiquidGPerMl;
    /** Cycling stability rating. */
    Stability stability;
    /** Electrical conductivity rating. */
    Conductivity conductivity;
    /** True if corrosive to common server materials. */
    bool corrosive;
    /** Bulk price (USD per metric ton), midpoint of quotes. */
    double pricePerTonUsd;

    /**
     * Volumetric energy density of the latent heat in the solid
     * phase (J/ml).
     */
    double energyDensityJPerMl() const;

    /**
     * True if a melting temperature can be picked inside the
     * datacenter-appropriate window [lo, hi] (paper: 30-60 C).
     */
    bool meltsInRange(double lo_c, double hi_c) const;
};

/**
 * The five-family comparison of Table 1.  Values transcribed from the
 * paper; families with "High" density in the table are given
 * representative numeric values (documented per entry).
 */
std::vector<Material> table1Families();

/** Eicosane n-paraffin as priced in Section 2.1 ($75,000/ton). */
Material eicosane();

/**
 * Commercial grade paraffin as deployed in the paper: 200 J/g heat of
 * fusion, melting temperature selectable in 40-60 C (the validation
 * batch measured 39 C), $1,000-2,000 per ton ($1,500 midpoint).
 */
Material commercialParaffin();

/**
 * Datacenter suitability screen from Section 2.1.
 *
 * A material passes if its melting range intersects [lo, hi], it is
 * not corrosive, its electrical conductivity is Low or VeryLow, and
 * its stability is Good or better.
 */
bool suitableForDatacenter(const Material &m, double lo_c = 30.0,
                           double hi_c = 60.0);

/**
 * Rank candidate materials for datacenter deployment: suitable
 * materials first, then by latent energy per dollar.
 *
 * @param candidates Materials to rank.
 * @return Candidates sorted best-first.
 */
std::vector<Material> rankForDatacenter(std::vector<Material> candidates);

} // namespace pcm
} // namespace tts

#endif // TTS_PCM_MATERIAL_HH
