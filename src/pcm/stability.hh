/**
 * @file
 * Cycling-stability degradation model.
 *
 * Section 2.1 rejects salt hydrates and solid-solid PCMs partly
 * because they degrade "in as few as 100 cycles", while paraffin shows
 * "negligible deviation from the initial heat of fusion after more
 * than 1,000 melting cycles".  This module turns those qualitative
 * ratings into an effective heat-of-fusion retention curve so long
 * simulated deployments can account for aging.
 */

#ifndef TTS_PCM_STABILITY_HH
#define TTS_PCM_STABILITY_HH

#include <cstdint>

#include "pcm/material.hh"

namespace tts {
namespace pcm {

/**
 * Retention of latent capacity as a function of completed melt/freeze
 * cycles for a given stability rating.
 *
 * The model is exponential decay to a residual floor:
 *   retention(n) = floor + (1 - floor) * exp(-n / tau)
 * with (tau, floor) chosen per rating so that:
 *   - Poor:      ~50 % loss by 100 cycles (tau = 120, floor = 0.3)
 *   - Unknown:   conservative, same as Poor
 *   - Good:      <10 % loss at 1,000 cycles (tau = 10,000, floor = 0.7)
 *   - VeryGood:  <3 % loss at 1,000 cycles (tau = 40,000, floor = 0.8)
 *   - Excellent: negligible at 1,000+ cycles (tau = 200,000,
 *                floor = 0.9)
 */
class StabilityModel
{
  public:
    /** Build the curve for one rating. */
    explicit StabilityModel(Stability rating);

    /**
     * @return Fraction of the initial latent heat retained after
     * the given number of full melt/freeze cycles, in (0, 1].
     */
    double retention(std::uint64_t cycles) const;

    /**
     * @return Effective heat of fusion (same unit as initial) after
     * the given cycle count.
     */
    double effectiveHeatOfFusion(double initial,
                                 std::uint64_t cycles) const;

    /**
     * @return Number of daily cycles in the given number of years
     * (one melt/freeze per day under a diurnal load).
     */
    static std::uint64_t cyclesForYears(double years);

    /** @return Decay constant tau (cycles). */
    double tau() const { return tau_; }
    /** @return Residual retention floor. */
    double floor() const { return floor_; }

  private:
    double tau_;
    double floor_;
};

} // namespace pcm
} // namespace tts

#endif // TTS_PCM_STABILITY_HH
