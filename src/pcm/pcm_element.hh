/**
 * @file
 * A stateful PCM charge: enthalpy curve + container bank + thermal
 * state.
 *
 * PcmElement is the object the thermal network owns for each server's
 * wax.  It tracks stored enthalpy, exposes temperature and melt
 * fraction, exchanges heat with a driving air temperature, and counts
 * melt/freeze cycles for the stability model.
 */

#ifndef TTS_PCM_PCM_ELEMENT_HH
#define TTS_PCM_PCM_ELEMENT_HH

#include <cstdint>
#include <optional>

#include "pcm/container.hh"
#include "pcm/enthalpy_model.hh"
#include "pcm/material.hh"

namespace tts {
namespace pcm {

/**
 * A mass of PCM in containers, with mutable thermal state.
 */
class PcmElement
{
  public:
    /**
     * Build from a material, container bank and chosen melting point.
     *
     * @param material    PCM material (densities, heat of fusion).
     * @param bank        Container geometry (mass, area, blockage).
     * @param melt_temp_c Deployed melting temperature (C); must lie
     *                    within the material's available range.
     * @param initial_temp_c Initial uniform temperature (C).
     * @param melt_window_c  Melt window width (C).
     * @param supercooling_c Supercooling depth (C): once fully
     *                    melted, the charge does not begin to
     *                    solidify until it has cooled this far below
     *                    the melting point (dual-curve hysteresis);
     *                    0 disables it.
     */
    PcmElement(const Material &material, const ContainerBank &bank,
               double melt_temp_c, double initial_temp_c,
               double melt_window_c = 2.0,
               double supercooling_c = 0.0);

    /** @return Current wax temperature (C). */
    double temperature() const;

    /** @return Melted fraction in [0, 1]. */
    double meltFraction() const;

    /** @return Stored enthalpy relative to solid at 0 C (J). */
    double storedEnthalpy() const { return enthalpy_; }

    /**
     * @return Stored energy above the initial state (J); the "charge"
     * of the thermal battery.
     */
    double storedEnergy() const { return enthalpy_ - initial_enthalpy_; }

    /** @return Total latent capacity (J). */
    double latentCapacity() const { return curve_.latentCapacity(); }

    /**
     * Heat flow from air into the wax at the given conditions (W);
     * positive when the air is hotter than the wax.  While the wax
     * releases heat (wax hotter than air) the effective conductance
     * is reduced by freezeConductanceFactor(): solidifying wax grows
     * an insulating solid layer on the container walls, so freezing
     * is conduction-limited and slower than (convection-dominated)
     * melting - this is what stretches the release over the paper's
     * 6-9 hour off-peak window.
     *
     * @param air_temp_c  Local air temperature (C).
     * @param velocity    Local air velocity (m/s).
     */
    double heatFlowFromAir(double air_temp_c, double velocity) const;

    /**
     * Effective conductance at a velocity given the current flow
     * direction implied by the air temperature.
     */
    double effectiveConductance(double air_temp_c,
                                double velocity) const;

    /** @return Release-side conductance derating in (0, 1]. */
    double freezeConductanceFactor() const { return freeze_factor_; }

    /** Set the release-side conductance derating. */
    void setFreezeConductanceFactor(double f);

    /** Default release-side conductance derating. */
    static constexpr double defaultFreezeFactor = 0.25;

    /**
     * Advance the element by dt seconds against a fixed air state.
     * Updates enthalpy and the cycle counter.
     *
     * @param dt         Step (s).
     * @param air_temp_c Air temperature (C).
     * @param velocity   Air velocity (m/s).
     * @return Heat absorbed this step (J); negative when releasing.
     */
    double step(double dt, double air_temp_c, double velocity);

    /**
     * Set stored enthalpy directly (used by the network solver, which
     * owns the integration).
     */
    void setEnthalpy(double h);

    /**
     * Notify the element of its externally-integrated state so cycle
     * counting stays correct when the network solver advances it.
     */
    void observeState() { updateCycleCounter(); }

    /** @return Completed melt/freeze cycles. */
    std::uint64_t cycleCount() const { return cycles_; }

    /**
     * @return Latent capacity after aging `cycles` full cycles, using
     * the material's stability rating (J).
     */
    double agedLatentCapacity(std::uint64_t cycles) const;

    /** @return The melting-branch enthalpy curve. */
    const EnthalpyCurve &curve() const { return curve_; }

    /**
     * @return The curve currently governing the charge: the melting
     * curve, or (after a full melt, until full solidification) the
     * supercooled freezing curve shifted down by the supercooling
     * depth.  Identical to curve() when supercooling is disabled.
     */
    const EnthalpyCurve &activeCurve() const;

    /**
     * @return Temperature for a stored enthalpy on the current
     * branch (C); the lookup the thermal network must use.
     */
    double temperatureAtEnthalpy(double h) const;

    /** @return Supercooling depth (C). */
    double supercoolingC() const { return supercooling_c_; }

    /**
     * Mutable thermal state for checkpointing: everything that
     * evolves after construction.  Geometry and curves are rebuilt
     * from configuration; this struct restores the trajectory.
     */
    struct ThermalState
    {
        double enthalpyJ;      //!< Stored enthalpy (J).
        bool freezingBranch;   //!< On the supercooled freezing curve.
        bool wasMelted;        //!< Cycle-counter melt latch.
        std::uint64_t cycles;  //!< Completed melt/freeze cycles.
    };

    /** @return A snapshot of the mutable thermal state. */
    ThermalState thermalState() const
    {
        return ThermalState{enthalpy_, freezing_branch_, was_melted_,
                            cycles_};
    }

    /**
     * Restore a snapshot taken with thermalState().  Bypasses the
     * cycle-counter update setEnthalpy() performs: the snapshot
     * already holds the post-update latch and count.
     */
    void restoreThermalState(const ThermalState &st)
    {
        enthalpy_ = st.enthalpyJ;
        freezing_branch_ = st.freezingBranch;
        was_melted_ = st.wasMelted;
        cycles_ = st.cycles;
    }

    /** @return True while the charge sits on the freezing branch. */
    bool onFreezingBranch() const { return freezing_branch_; }
    /** @return The container bank. */
    const ContainerBank &bank() const { return bank_; }
    /** @return The material. */
    const Material &material() const { return material_; }
    /** @return Deployed melting temperature (C). */
    double meltTempC() const { return curve_.params().meltTempC; }

  private:
    /** Track solid -> melted -> solid transitions. */
    void updateCycleCounter();

    Material material_;
    ContainerBank bank_;
    EnthalpyCurve curve_;          //!< Melting branch.
    std::optional<EnthalpyCurve> freeze_curve_;  //!< Supercooled.
    double supercooling_c_ = 0.0;
    bool freezing_branch_ = false;
    double enthalpy_;
    double initial_enthalpy_;
    double freeze_factor_ = defaultFreezeFactor;
    std::uint64_t cycles_ = 0;
    bool was_melted_ = false;
};

/**
 * Convenience: build the EnthalpyParams for a material + bank pair.
 *
 * @param material      PCM material.
 * @param bank          Container bank (mass via solid density).
 * @param melt_temp_c   Deployed melting temperature (C).
 * @param melt_window_c Melt window width (C).
 */
EnthalpyParams makeEnthalpyParams(const Material &material,
                                  const ContainerBank &bank,
                                  double melt_temp_c,
                                  double melt_window_c);

} // namespace pcm
} // namespace tts

#endif // TTS_PCM_PCM_ELEMENT_HH
