#include "pcm/pcm_element.hh"

#include <cmath>

#include "pcm/stability.hh"
#include "util/error.hh"
#include "util/units.hh"

namespace tts {
namespace pcm {

EnthalpyParams
makeEnthalpyParams(const Material &material, const ContainerBank &bank,
                   double melt_temp_c, double melt_window_c)
{
    EnthalpyParams p;
    // Table densities are g/ml == 1000 kg/m^3.
    p.massKg = bank.waxMass(material.densitySolidGPerMl * 1000.0);
    p.cpSolid = units::paraffinSpecificHeatSolid;
    p.cpLiquid = units::paraffinSpecificHeatLiquid;
    p.latentHeat = material.heatOfFusionJPerG * 1000.0;  // J/g -> J/kg
    p.meltTempC = melt_temp_c;
    p.meltWindowC = melt_window_c;
    p.extraCapacity = bank.shellMass() * units::aluminumSpecificHeat;
    return p;
}

PcmElement::PcmElement(const Material &material,
                       const ContainerBank &bank, double melt_temp_c,
                       double initial_temp_c, double melt_window_c,
                       double supercooling_c)
    : material_(material), bank_(bank),
      curve_(makeEnthalpyParams(material, bank, melt_temp_c,
                                melt_window_c)),
      supercooling_c_(supercooling_c),
      enthalpy_(curve_.enthalpyAt(initial_temp_c)),
      initial_enthalpy_(enthalpy_)
{
    require(melt_temp_c >= material.meltingTempMinC - 1e-9 &&
            melt_temp_c <= material.meltingTempMaxC + 1e-9,
            "PcmElement: melting temperature outside the material's "
            "available range");
    require(supercooling_c >= 0.0,
            "PcmElement: supercooling must be >= 0");
    if (supercooling_c > 0.0) {
        freeze_curve_.emplace(makeEnthalpyParams(
            material, bank, melt_temp_c - supercooling_c,
            melt_window_c));
    }
    was_melted_ = meltFraction() >= 0.999;
    freezing_branch_ = was_melted_;
}

const EnthalpyCurve &
PcmElement::activeCurve() const
{
    if (freezing_branch_ && freeze_curve_)
        return *freeze_curve_;
    return curve_;
}

double
PcmElement::temperatureAtEnthalpy(double h) const
{
    return activeCurve().temperatureAt(h);
}

double
PcmElement::temperature() const
{
    return activeCurve().temperatureAt(enthalpy_);
}

double
PcmElement::meltFraction() const
{
    return activeCurve().meltFraction(enthalpy_);
}

double
PcmElement::effectiveConductance(double air_temp_c,
                                 double velocity) const
{
    double ua = bank_.conductanceAt(velocity);
    if (air_temp_c < temperature())
        ua *= freeze_factor_;
    return ua;
}

double
PcmElement::heatFlowFromAir(double air_temp_c, double velocity) const
{
    return effectiveConductance(air_temp_c, velocity) *
        (air_temp_c - temperature());
}

void
PcmElement::setFreezeConductanceFactor(double f)
{
    require(f > 0.0 && f <= 1.0,
            "PcmElement: freeze factor must be in (0, 1]");
    freeze_factor_ = f;
}

double
PcmElement::step(double dt, double air_temp_c, double velocity)
{
    require(dt > 0.0, "PcmElement::step: dt must be > 0");
    // Sub-step so a coarse caller cannot overshoot the driving air
    // temperature: limit each sub-step so the wax moves at most a
    // fraction of the way to equilibrium.
    double remaining = dt;
    double absorbed = 0.0;
    while (remaining > 0.0) {
        double q = heatFlowFromAir(air_temp_c, velocity);
        double c_eff =
            activeCurve().effectiveHeatCapacity(temperature());
        double ua = effectiveConductance(air_temp_c, velocity);
        // Time constant of approach to the air temperature.
        double tau = c_eff / std::max(ua, 1e-9);
        double h_step = std::min(remaining, 0.2 * tau);
        h_step = std::max(h_step, 1e-3);
        h_step = std::min(h_step, remaining);
        enthalpy_ += q * h_step;
        absorbed += q * h_step;
        remaining -= h_step;
    }
    updateCycleCounter();
    return absorbed;
}

void
PcmElement::setEnthalpy(double h)
{
    invariant(h >= 0.0, "PcmElement::setEnthalpy: negative enthalpy");
    enthalpy_ = h;
    updateCycleCounter();
}

void
PcmElement::updateCycleCounter()
{
    double f = meltFraction();
    if (!was_melted_ && f >= 0.999) {
        was_melted_ = true;
        // A fully melted charge must supercool before nucleating:
        // switch to the (lower) freezing curve.
        freezing_branch_ = true;
    } else if (was_melted_ && f <= 0.001) {
        was_melted_ = false;
        freezing_branch_ = false;
        ++cycles_;
    }
}

double
PcmElement::agedLatentCapacity(std::uint64_t cycles) const
{
    StabilityModel model(material_.stability);
    return model.effectiveHeatOfFusion(latentCapacity(), cycles);
}

} // namespace pcm
} // namespace tts
