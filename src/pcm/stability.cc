#include "pcm/stability.hh"

#include <cmath>

namespace tts {
namespace pcm {

StabilityModel::StabilityModel(Stability rating)
{
    switch (rating) {
      case Stability::Poor:
      case Stability::Unknown:
        tau_ = 120.0;
        floor_ = 0.3;
        break;
      case Stability::Good:
        tau_ = 10000.0;
        floor_ = 0.7;
        break;
      case Stability::VeryGood:
        tau_ = 40000.0;
        floor_ = 0.8;
        break;
      case Stability::Excellent:
        tau_ = 200000.0;
        floor_ = 0.9;
        break;
    }
}

double
StabilityModel::retention(std::uint64_t cycles) const
{
    double n = static_cast<double>(cycles);
    return floor_ + (1.0 - floor_) * std::exp(-n / tau_);
}

double
StabilityModel::effectiveHeatOfFusion(double initial,
                                      std::uint64_t cycles) const
{
    return initial * retention(cycles);
}

std::uint64_t
StabilityModel::cyclesForYears(double years)
{
    if (years <= 0.0)
        return 0;
    return static_cast<std::uint64_t>(years * 365.25 + 0.5);
}

} // namespace pcm
} // namespace tts
