/**
 * @file
 * Sealed aluminum wax containers placed inside a server.
 *
 * The paper sizes containers to (a) leave ~10 % headspace for thermal
 * expansion, (b) maximize air-contact surface area by splitting the
 * charge across several boxes, and (c) keep airflow blockage below
 * the server-specific safe threshold (Fig 7).  This module computes
 * wax mass, blockage fraction, and the air-to-wax conductance from
 * container geometry.
 */

#ifndef TTS_PCM_CONTAINER_HH
#define TTS_PCM_CONTAINER_HH

#include <cstddef>

namespace tts {
namespace pcm {

/** Geometry of one sealed rectangular wax box. */
struct BoxSpec
{
    /** Box length along the airflow direction (m). */
    double lengthM;
    /** Box width across the duct (m). */
    double widthM;
    /** Box height (m). */
    double heightM;
    /** Wall thickness of the aluminum shell (m). */
    double wallThicknessM = 1.5e-3;
    /** Fraction of the interior volume filled with wax. */
    double fillFraction = 0.9;

    /** @return Exterior volume (m^3). */
    double exteriorVolume() const;
    /** @return Interior (wax + headspace) volume (m^3). */
    double interiorVolume() const;
    /** @return Wax volume (m^3). */
    double waxVolume() const;
    /** @return Total exterior surface area (m^2). */
    double surfaceArea() const;
    /** @return Frontal area presented to the airflow (m^2). */
    double frontalArea() const;
    /** @return Mass of the aluminum shell (kg). */
    double shellMass() const;
};

/**
 * A bank of identical wax boxes inside one server.
 *
 * @note All boxes share one thermal state in the network model; the
 * paper's observation that multiple containers melt faster is
 * captured through the larger total surface area.
 */
class ContainerBank
{
  public:
    /**
     * @param box       Geometry of each box.
     * @param count     Number of boxes (>= 1).
     * @param duct_area Cross-sectional duct area at the bank (m^2);
     *                  used for the blockage fraction.
     */
    ContainerBank(const BoxSpec &box, std::size_t count,
                  double duct_area);

    /** @return Total wax volume across the bank (m^3). */
    double waxVolume() const;

    /**
     * @return Total wax mass (kg) for the given solid density
     * (kg/m^3).
     */
    double waxMass(double density) const;

    /** @return Total aluminum shell mass (kg). */
    double shellMass() const;

    /** @return Total air-contact surface area (m^2). */
    double surfaceArea() const;

    /**
     * @return Fraction of the duct cross-section blocked by the bank
     * in [0, 1).
     */
    double blockageFraction() const;

    /**
     * Convective conductance between the air stream and the wax
     * (W/K) at the given air velocity, using a flat-plate correlation
     * h = h0 * (v / v0)^0.8.
     *
     * @param velocity Air velocity over the boxes (m/s).
     */
    double conductanceAt(double velocity) const;

    /** @return Number of boxes. */
    std::size_t count() const { return count_; }
    /** @return Geometry of each box. */
    const BoxSpec &box() const { return box_; }

    /** Reference convection coefficient h0 (W/(m^2 K)) at v0.
     *  The boxes form closely spaced plate channels in the
     *  constricted bay (small hydraulic diameter), where forced-
     *  convection coefficients of 60-100 W/(m^2 K) are typical;
     *  calibrated against the paper's Icepak melt rates. */
    static constexpr double refHeatTransferCoeff = 70.0;
    /** Reference velocity v0 (m/s) for refHeatTransferCoeff. */
    static constexpr double refVelocity = 2.0;

  private:
    BoxSpec box_;
    std::size_t count_;
    double duct_area_;
};

/**
 * Size a bank of boxes to hold a target wax volume under a blockage
 * cap, splitting the charge across boxes to maximize surface area.
 *
 * @param target_volume   Desired wax volume (m^3).
 * @param duct_area       Duct cross-section (m^2).
 * @param duct_height     Duct height (m); boxes span most of it.
 * @param max_blockage    Maximum allowed blockage fraction.
 * @param box_count       Number of boxes to split the charge across.
 * @return A bank meeting the volume target.
 * @throws FatalError if the volume cannot fit under the blockage cap.
 */
ContainerBank sizeBank(double target_volume, double duct_area,
                       double duct_height, double max_blockage,
                       std::size_t box_count);

} // namespace pcm
} // namespace tts

#endif // TTS_PCM_CONTAINER_HH
