/**
 * @file
 * Wax procurement cost model (Section 2.1).
 *
 * Reproduces the paper's pricing argument: eicosane at $75,000/ton
 * makes a datacenter deployment cost over a million dollars in wax
 * alone, while commercial paraffin at $1,000-2,000/ton is ~50x
 * cheaper for 20 % lower heat of fusion.
 */

#ifndef TTS_PCM_COST_HH
#define TTS_PCM_COST_HH

#include <cstddef>

#include "pcm/material.hh"

namespace tts {
namespace pcm {

/** Cost breakdown for equipping a fleet of servers with PCM. */
struct FleetWaxCost
{
    /** Wax mass per server (kg). */
    double massPerServerKg;
    /** Wax cost per server (USD). */
    double waxCostPerServer;
    /** Container cost per server (USD). */
    double containerCostPerServer;
    /** Total fleet cost (USD). */
    double totalCost;
    /** Latent energy bought per dollar (J/USD). */
    double joulesPerDollar;
};

/**
 * Cost of equipping a server fleet with wax.
 *
 * @param material           PCM material (price, density, fusion).
 * @param liters_per_server  Wax volume per server (liters).
 * @param server_count       Number of servers.
 * @param container_cost     Cost of containers per server (USD);
 *                           defaults to a stamped-aluminum estimate
 *                           consistent with Table 2's WaxCapEx of
 *                           0.06-0.10 $/server/month over 48 months.
 */
FleetWaxCost fleetWaxCost(const Material &material,
                          double liters_per_server,
                          std::size_t server_count,
                          double container_cost = 2.5);

/**
 * Price ratio between two materials (a / b) per ton.
 */
double priceRatio(const Material &a, const Material &b);

/**
 * Heat-of-fusion deficit of b relative to a, as a fraction of a's
 * heat of fusion (the paper's "20 % lower energy per gram").
 */
double fusionDeficit(const Material &a, const Material &b);

} // namespace pcm
} // namespace tts

#endif // TTS_PCM_COST_HH
