#include "pcm/material.hh"

#include <algorithm>

#include "util/error.hh"

namespace tts {
namespace pcm {

std::string
toString(Family f)
{
    switch (f) {
      case Family::SaltHydrate: return "Salt Hydrates";
      case Family::MetalAlloy: return "Metal Alloys";
      case Family::FattyAcid: return "Fatty Acids";
      case Family::NParaffin: return "n-Paraffins";
      case Family::CommercialParaffin: return "Commercial Paraffins";
    }
    panic("toString(Family): bad enum value");
}

std::string
toString(Stability s)
{
    switch (s) {
      case Stability::Poor: return "Poor";
      case Stability::Unknown: return "Unknown";
      case Stability::Good: return "Good";
      case Stability::VeryGood: return "Very Good";
      case Stability::Excellent: return "Excellent";
    }
    panic("toString(Stability): bad enum value");
}

std::string
toString(Conductivity c)
{
    switch (c) {
      case Conductivity::VeryLow: return "Very Low";
      case Conductivity::Low: return "Low";
      case Conductivity::Unknown: return "Unknown";
      case Conductivity::High: return "High";
    }
    panic("toString(Conductivity): bad enum value");
}

double
Material::energyDensityJPerMl() const
{
    return heatOfFusionJPerG * densitySolidGPerMl;
}

bool
Material::meltsInRange(double lo_c, double hi_c) const
{
    return meltingTempMinC <= hi_c && meltingTempMaxC >= lo_c;
}

std::vector<Material>
table1Families()
{
    // Transcribed from Table 1.  Where the paper lists a qualitative
    // "High" we substitute a representative number and note it here:
    // metal alloy heat of fusion ~ 430 J/g (e.g. Al-Si eutectics) and
    // density ~ 7 g/ml.  Prices are order-of-magnitude bulk quotes.
    return {
        {"Salt Hydrates", Family::SaltHydrate, 25.0, 70.0, 245.0,
         1.75, 1.6, Stability::Poor, Conductivity::High, true, 500.0},
        {"Metal Alloys", Family::MetalAlloy, 300.0, 900.0, 430.0,
         7.0, 6.8, Stability::Poor, Conductivity::High, false,
         20000.0},
        {"Fatty Acids", Family::FattyAcid, 16.0, 75.0, 185.0,
         0.9, 0.85, Stability::Unknown, Conductivity::Unknown, true,
         1500.0},
        {"n-Paraffins", Family::NParaffin, 6.0, 65.0, 240.0,
         0.75, 0.72, Stability::Excellent, Conductivity::VeryLow,
         false, 75000.0},
        {"Commercial Paraffins", Family::CommercialParaffin, 40.0,
         60.0, 200.0, 0.78, 0.74, Stability::VeryGood,
         Conductivity::VeryLow, false, 1500.0},
    };
}

Material
eicosane()
{
    return {"Eicosane", Family::NParaffin, 36.6, 36.6, 247.0, 0.789,
            0.769, Stability::Excellent, Conductivity::VeryLow, false,
            75000.0};
}

Material
commercialParaffin()
{
    // The validation batch measured a 39 C melting point; bulk blends
    // are available between 40 and 60 C, so we expose the full range.
    return {"Commercial Paraffin", Family::CommercialParaffin, 39.0,
            60.0, 200.0, 0.80, 0.75, Stability::VeryGood,
            Conductivity::VeryLow, false, 1500.0};
}

bool
suitableForDatacenter(const Material &m, double lo_c, double hi_c)
{
    if (!m.meltsInRange(lo_c, hi_c))
        return false;
    if (m.corrosive)
        return false;
    if (m.conductivity != Conductivity::VeryLow &&
        m.conductivity != Conductivity::Low) {
        return false;
    }
    return m.stability == Stability::Good ||
           m.stability == Stability::VeryGood ||
           m.stability == Stability::Excellent;
}

std::vector<Material>
rankForDatacenter(std::vector<Material> candidates)
{
    auto value = [](const Material &m) {
        // Latent joules purchasable per dollar: J/g -> J/ton over
        // $/ton.  1 ton = 1e6 g.
        return m.heatOfFusionJPerG * 1e6 / m.pricePerTonUsd;
    };
    std::stable_sort(candidates.begin(), candidates.end(),
        [&](const Material &a, const Material &b) {
            bool sa = suitableForDatacenter(a);
            bool sb = suitableForDatacenter(b);
            if (sa != sb)
                return sa;
            return value(a) > value(b);
        });
    return candidates;
}

} // namespace pcm
} // namespace tts
