/**
 * @file
 * Enthalpy-temperature model of a phase change material charge.
 *
 * The thermal solver integrates stored enthalpy, not temperature, so
 * the latent-heat plateau is handled without special-casing: the
 * enthalpy curve H(T) has a steep (but finite) segment across the melt
 * window and the solver inverts it to recover temperature.  This is
 * the standard "effective heat capacity" method for PCM simulation.
 */

#ifndef TTS_PCM_ENTHALPY_MODEL_HH
#define TTS_PCM_ENTHALPY_MODEL_HH

#include "util/interpolation.hh"

namespace tts {
namespace pcm {

/** Parameters defining an enthalpy curve for a mass of PCM. */
struct EnthalpyParams
{
    /** PCM mass (kg). */
    double massKg;
    /** Specific heat of the solid phase (J/(kg K)). */
    double cpSolid;
    /** Specific heat of the liquid phase (J/(kg K)). */
    double cpLiquid;
    /** Latent heat of fusion (J/kg). */
    double latentHeat;
    /** Nominal melting temperature, center of the window (C). */
    double meltTempC;
    /**
     * Width of the melt window (C).  Commercial paraffin blends melt
     * over a few degrees; pure n-paraffins over a fraction of a
     * degree.  Must be > 0 (the curve must stay invertible).
     */
    double meltWindowC = 2.0;
    /** Extra lumped sensible capacity, e.g. the container (J/K). */
    double extraCapacity = 0.0;
};

/**
 * Piecewise-linear enthalpy-temperature relation for a PCM charge.
 *
 * Enthalpy is measured relative to the solid phase at 0 C.  The curve
 * is strictly increasing, so temperature(h) is well defined.
 */
class EnthalpyCurve
{
  public:
    /**
     * Build the curve.
     *
     * @param params Material and charge parameters; mass, cps, latent
     *               heat and window must be positive.
     */
    explicit EnthalpyCurve(const EnthalpyParams &params);

    /** @return Stored enthalpy at temperature t_c (J). */
    double enthalpyAt(double t_c) const;

    /** @return Temperature for stored enthalpy h (C). */
    double temperatureAt(double h) const;

    /**
     * @return Melted mass fraction in [0, 1] for stored enthalpy h.
     */
    double meltFraction(double h) const;

    /** @return Total latent capacity of the charge (J). */
    double latentCapacity() const;

    /** @return Enthalpy at the solidus (melt onset) point (J). */
    double solidusEnthalpy() const { return h_solidus_; }
    /** @return Enthalpy at the liquidus (fully melted) point (J). */
    double liquidusEnthalpy() const { return h_liquidus_; }

    /** @return Solidus temperature (C). */
    double solidusTempC() const;
    /** @return Liquidus temperature (C). */
    double liquidusTempC() const;

    /**
     * @return Effective heat capacity dH/dT at temperature t_c
     * (J/K); large across the melt window.
     */
    double effectiveHeatCapacity(double t_c) const;

    /** @return The parameters the curve was built from. */
    const EnthalpyParams &params() const { return params_; }

  private:
    EnthalpyParams params_;
    PiecewiseLinear curve_;  //!< H as a function of T.
    double h_solidus_;
    double h_liquidus_;
};

} // namespace pcm
} // namespace tts

#endif // TTS_PCM_ENTHALPY_MODEL_HH
