#include "pcm/enthalpy_model.hh"

#include <cmath>

#include "util/error.hh"

namespace tts {
namespace pcm {

namespace {
/** Upper end of the modeled temperature range (C). */
constexpr double maxTempC = 200.0;
/** Lower end of the modeled temperature range (C). */
constexpr double minTempC = -40.0;
} // namespace

EnthalpyCurve::EnthalpyCurve(const EnthalpyParams &params)
    : params_(params)
{
    require(params.massKg > 0.0, "EnthalpyCurve: mass must be > 0");
    require(params.cpSolid > 0.0 && params.cpLiquid > 0.0,
            "EnthalpyCurve: specific heats must be > 0");
    require(params.latentHeat > 0.0,
            "EnthalpyCurve: latent heat must be > 0");
    require(params.meltWindowC > 0.0,
            "EnthalpyCurve: melt window must be > 0");
    require(params.extraCapacity >= 0.0,
            "EnthalpyCurve: extra capacity must be >= 0");

    const double m = params.massKg;
    const double t_sol = solidusTempC();
    const double t_liq = liquidusTempC();
    require(t_sol > minTempC && t_liq < maxTempC,
            "EnthalpyCurve: melt window outside modeled range");

    // Slopes (J/K) per region; the container capacity follows the wax
    // temperature, so it adds to every region.
    const double c_sol = m * params.cpSolid + params.extraCapacity;
    const double c_liq = m * params.cpLiquid + params.extraCapacity;
    const double c_melt = 0.5 * (c_sol + c_liq) +
        m * params.latentHeat / params.meltWindowC;

    double h = c_sol * (t_sol - minTempC);
    curve_.addPoint(minTempC, 0.0);
    curve_.addPoint(t_sol, h);
    h_solidus_ = h;
    h += c_melt * (t_liq - t_sol);
    curve_.addPoint(t_liq, h);
    h_liquidus_ = h;
    h += c_liq * (maxTempC - t_liq);
    curve_.addPoint(maxTempC, h);
}

double
EnthalpyCurve::enthalpyAt(double t_c) const
{
    return curve_(t_c);
}

double
EnthalpyCurve::temperatureAt(double h) const
{
    return curve_.inverse(h);
}

double
EnthalpyCurve::meltFraction(double h) const
{
    if (h <= h_solidus_)
        return 0.0;
    if (h >= h_liquidus_)
        return 1.0;
    return (h - h_solidus_) / (h_liquidus_ - h_solidus_);
}

double
EnthalpyCurve::latentCapacity() const
{
    return params_.massKg * params_.latentHeat;
}

double
EnthalpyCurve::solidusTempC() const
{
    return params_.meltTempC - 0.5 * params_.meltWindowC;
}

double
EnthalpyCurve::liquidusTempC() const
{
    return params_.meltTempC + 0.5 * params_.meltWindowC;
}

double
EnthalpyCurve::effectiveHeatCapacity(double t_c) const
{
    const double m = params_.massKg;
    const double c_sol = m * params_.cpSolid + params_.extraCapacity;
    const double c_liq = m * params_.cpLiquid + params_.extraCapacity;
    if (t_c < solidusTempC())
        return c_sol;
    if (t_c > liquidusTempC())
        return c_liq;
    return 0.5 * (c_sol + c_liq) +
        m * params_.latentHeat / params_.meltWindowC;
}

} // namespace pcm
} // namespace tts
