#include "pcm/cost.hh"

#include "util/error.hh"

namespace tts {
namespace pcm {

FleetWaxCost
fleetWaxCost(const Material &material, double liters_per_server,
             std::size_t server_count, double container_cost)
{
    require(liters_per_server > 0.0,
            "fleetWaxCost: liters per server must be > 0");
    require(server_count > 0, "fleetWaxCost: need at least one server");

    FleetWaxCost out;
    // g/ml * liters * 1000 ml/l = grams; /1000 = kg.
    out.massPerServerKg =
        material.densitySolidGPerMl * liters_per_server;
    double tons_per_server = out.massPerServerKg / 1000.0;
    out.waxCostPerServer = tons_per_server * material.pricePerTonUsd;
    out.containerCostPerServer = container_cost;
    out.totalCost = static_cast<double>(server_count) *
        (out.waxCostPerServer + out.containerCostPerServer);
    double joules_per_server = out.massPerServerKg * 1000.0 *
        material.heatOfFusionJPerG;
    out.joulesPerDollar = joules_per_server /
        (out.waxCostPerServer + out.containerCostPerServer);
    return out;
}

double
priceRatio(const Material &a, const Material &b)
{
    require(b.pricePerTonUsd > 0.0, "priceRatio: b has no price");
    return a.pricePerTonUsd / b.pricePerTonUsd;
}

double
fusionDeficit(const Material &a, const Material &b)
{
    require(a.heatOfFusionJPerG > 0.0,
            "fusionDeficit: a has no heat of fusion");
    return (a.heatOfFusionJPerG - b.heatOfFusionJPerG) /
        a.heatOfFusionJPerG;
}

} // namespace pcm
} // namespace tts
