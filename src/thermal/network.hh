/**
 * @file
 * Zone-based server thermal network.
 *
 * The model that replaces the Icepak CFD simulation.  A server is a
 * sequence of air zones traversed front-to-rear by the fan-driven air
 * stream.  Solid nodes (CPU+heatsink, DIMMs, PSU, drives, wax boxes)
 * have heat capacity, sit in one zone, and exchange heat with the air
 * entering that zone through a velocity-dependent convective
 * conductance.  Air itself is quasi-steady (its capacity is
 * negligible next to the solids), so zone air temperatures follow
 * algebraically from an upstream walk:
 *
 *     T_air[z+1] = T_air[z] + Q_zone / (m_dot * cp)
 *
 * Solid node enthalpies are the ODE state; PCM nodes carry an
 * enthalpy-temperature curve so melting needs no special cases.
 * Energy is conserved by construction: d/dt(sum H) = sum P_in -
 * (heat advected out by the air).
 *
 * Hot-path layout: node attributes live in structure-of-arrays
 * storage (parallel vectors indexed by node id) rather than an
 * array-of-structs, the zone->node topology is precompiled into a
 * CSR-style (offsets, ids) pair instead of being re-scanned every
 * air walk, and the velocity-dependent conductances are cached per
 * airflow revision (they only change when blockage or fan speed
 * does).  All caches replay bit-identical arithmetic - see
 * thermal/kernel_config.hh for the reference-mode switch that
 * disables them.
 */

#ifndef TTS_THERMAL_NETWORK_HH
#define TTS_THERMAL_NETWORK_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "guard/numerics.hh"
#include "pcm/pcm_element.hh"
#include "thermal/airflow.hh"
#include "util/integrator.hh"

namespace tts {
namespace thermal {

/**
 * Velocity-dependent convective conductance UA(v) = ua0 *
 * (v / v_ref)^exponent, with a small floor so natural convection
 * keeps nodes coupled when fans idle.
 */
struct ConvectiveCoupling
{
    /** Conductance at the reference velocity (W/K). */
    double ua0;
    /** Reference velocity (m/s). */
    double refVelocity = 2.0;
    /** Velocity exponent (0.8 for turbulent forced convection). */
    double exponent = 0.8;

    /** @return Conductance at the given velocity (W/K). */
    double ua(double velocity) const;
};

/** Which velocity a node's coupling sees. */
enum class VelocityRef
{
    /** Mean duct velocity (most components). */
    Duct,
    /** Accelerated velocity through the blocked section (wax boxes). */
    Constriction,
};

/** A conduction link between two solid nodes (W/K). */
struct ConductionLink
{
    int a;
    int b;
    double conductance;
};

/**
 * The server thermal network.  Typical driver loop:
 *
 * @code
 *   net.setNodePower(cpu, watts);
 *   net.airflow().setFanSpeed(speed);
 *   net.advance(60.0, 1.0);
 *   double out = net.outletTemp();
 * @endcode
 */
class ServerThermalNetwork
{
  public:
    /**
     * @param airflow      Calibrated airflow model (copied).
     * @param zone_count   Number of air zones front-to-rear (>= 1).
     * @param inlet_temp_c Cold-aisle inlet temperature (C).
     */
    ServerThermalNetwork(const AirflowModel &airflow,
                         std::size_t zone_count, double inlet_temp_c);

    /**
     * Add a constant-capacity solid node.
     *
     * @param name           Debug/report name.
     * @param capacity       Heat capacity (J/K), > 0.
     * @param coupling       Convective coupling to the zone air.
     * @param zone           Zone index.
     * @param initial_temp_c Initial temperature (C).
     * @param vref           Velocity reference for the coupling.
     * @return Node id.
     */
    int addCapacityNode(const std::string &name, double capacity,
                        const ConvectiveCoupling &coupling,
                        std::size_t zone, double initial_temp_c,
                        VelocityRef vref = VelocityRef::Duct);

    /**
     * Add a PCM node backed by a PcmElement.  The node's enthalpy
     * curve and air conductance come from the element; the element's
     * state is kept in sync after every advance().
     *
     * @param name        Debug/report name.
     * @param element     PCM element; must outlive the network.
     * @param zone        Zone index.
     * @param air_coupled When false the node exchanges no heat with
     *                    the air stream (an interior shell of a
     *                    discretized charge; couple it with
     *                    addConduction instead).
     * @return Node id.
     */
    int addPcmNode(const std::string &name, pcm::PcmElement *element,
                   std::size_t zone, bool air_coupled = true);

    /** Add a conduction link (W/K) between two solid nodes. */
    void addConduction(int a, int b, double conductance);

    /** Set external power injected into a node (W). */
    void setNodePower(int node, double watts);
    /** @return External power currently injected into a node (W). */
    double nodePower(int node) const;

    /**
     * Set power dumped directly into the air in a zone (fan motors,
     * lumped minor components) (W).
     */
    void setDirectAirPower(std::size_t zone, double watts);

    /** @return Power dumped directly into the air in a zone (W). */
    double directAirPower(std::size_t zone) const;

    /**
     * Set the plume mixing fraction of a zone.
     *
     * Air arriving at zone z from a concentrated upstream heat source
     * (a CPU heatsink channel) is only partially mixed: with mixing
     * fraction p in (0, 1], nodes in zone z see
     *
     *     T_local[z] = T_mixed[z] + (1/p - 1) * dT_upstream
     *
     * where dT_upstream is the mixed-air temperature rise produced by
     * the immediately-upstream zone.  p == 1 (default) recovers the
     * fully-mixed model.  Energy accounting always uses the mixed
     * stream, so conservation is unaffected.
     */
    void setZonePlumeFraction(std::size_t zone, double p);

    /** Set the inlet (cold aisle) temperature (C). */
    void setInletTemp(double t_c);
    /** @return Inlet temperature (C). */
    double inletTemp() const { return inlet_temp_; }

    /** @return Mutable airflow model (speed, blockage). */
    AirflowModel &airflow() { return airflow_; }
    /** @return The airflow model. */
    const AirflowModel &airflow() const { return airflow_; }

    /**
     * Integrate the network forward by dt_total using RK4 with fixed
     * internal step dt_step, holding powers and airflow constant.
     *
     * When the guard is enabled (default) every interval is audited:
     * the state vector is augmented with an energy accumulator
     * integrating d(sum H)/dt with the same quadrature as the nodes,
     * so the residual sum(H_end) - E_end is zero up to rounding in a
     * healthy solve and any NaN/Inf or externally-corrupted state
     * trips at the interval where it happened.  On a trip the
     * interval's enthalpy state is rolled back and re-integrated at a
     * halved step (geometric backoff, bounded attempts), then
     * optionally with an adaptive RK23 fallback; retries and
     * degradations are recorded in guardCounters().  A run that never
     * trips is bit-identical to the unguarded solve.
     *
     * @throws guard::NumericsError naming the worst node when every
     *         retry and fallback is exhausted.
     */
    void advance(double dt_total, double dt_step = 1.0);

    /** @return The guard policy for this network. */
    const guard::GuardConfig &guardConfig() const
    {
        return guard_config_;
    }
    /** Replace the guard policy. */
    void setGuardConfig(const guard::GuardConfig &cfg)
    {
        guard_config_ = cfg;
    }

    /** @return Retry/degradation counters accumulated by advance(). */
    const guard::GuardCounters &guardCounters() const
    {
        return guard_counters_;
    }
    /** Restore counters (checkpoint resume). */
    void setGuardCounters(const guard::GuardCounters &c)
    {
        guard_counters_ = c;
    }

    /**
     * Test hook: corrupt the augmented state vector (node entries
     * [0, nodeCount()), energy accumulator last) after integration
     * but before the sentinel/audit checks of each guarded attempt.
     *
     * @param fn   Mutator; null clears the hook.
     * @param once Fire on the first attempt only, then clear; false
     *             keeps firing (exhaustion tests).
     */
    void setGuardTestCorruptor(
        std::function<void(std::vector<double> &)> fn, bool once = true)
    {
        guard_corruptor_ = std::move(fn);
        guard_corruptor_once_ = once;
    }

    /** @return Node enthalpy state (J), for checkpointing. */
    const std::vector<double> &enthalpies() const { return state_; }

    /**
     * Restore the node enthalpy state (checkpoint resume).  PCM
     * elements are re-synced via setEnthalpy(); their hysteresis
     * flags must be restored separately afterwards
     * (pcm::PcmElement::restoreThermalState), which overwrites the
     * latch updates this sync performs.
     */
    void setEnthalpies(const std::vector<double> &h);

    /**
     * Set every node to its steady-state temperature for the current
     * powers and airflow (Gauss-Seidel on the local balances).
     */
    void solveSteadyState();

    /** @return Node temperature (C). */
    double nodeTemperature(int node) const;

    /** @return Node stored enthalpy (J). */
    double nodeEnthalpy(int node) const;

    /**
     * @return Local air temperature seen by nodes in the given zone
     * (C), including the plume correction; zone 0 returns the inlet
     * temperature.
     */
    double zoneAirTemp(std::size_t zone) const;

    /**
     * @return Fully-mixed air temperature entering the given zone
     * (C); index zone_count() gives the outlet.
     */
    double zoneMixedTemp(std::size_t zone) const;

    /** @return Air temperature leaving the server (C). */
    double outletTemp() const;

    /**
     * @return Heat currently carried away by the air stream (W) ==
     * m_dot * cp * (outlet - inlet).  This is the server's
     * instantaneous contribution to the room cooling load.
     */
    double airHeatRate() const;

    /** @return Sum of external node power + direct air power (W). */
    double totalInputPower() const;

    /** @return Number of solid nodes. */
    std::size_t nodeCount() const { return names_.size(); }

    /** @return Name of a node. */
    const std::string &nodeName(int node) const;

    /** @return Node id by name, or -1. */
    int findNode(const std::string &name) const;

    /**
     * Enable/disable the conductance + topology caches (defaults to
     * KernelConfig.networkCache at construction).  Disabling gives
     * the reference recompute-per-call kernel; results are
     * bit-identical either way.
     */
    void setKernelCacheEnabled(bool enabled);
    /** @return True when the kernel caches are on. */
    bool kernelCacheEnabled() const { return kernel_cache_; }

    /**
     * Observability: label prefixed to node names in emitted trace
     * events (e.g. "with_wax/srv"); empty by default.
     */
    void setObsLabel(const std::string &label)
    {
        obs_label_ = label;
    }
    /** @return The observability label. */
    const std::string &obsLabel() const { return obs_label_; }

    /**
     * Observability: absolute simulation time of the current state
     * (seconds).  advance() moves it forward by dt_total; drivers
     * that own the clock (resilience arms) set it before advancing
     * so trace events carry study time rather than network-local
     * time.  Never read by the simulation itself.
     */
    void setObsClock(double t_s) { obs_clock_ = t_s; }
    /** @return The observability clock (seconds). */
    double obsClock() const { return obs_clock_; }

  private:
    /** Temperature of node i at enthalpy h. */
    double tempOf(std::size_t i, double h) const;

    /**
     * Direction-aware conductance of node i at the current airflow:
     * PCM nodes release heat through a derated (conduction-limited)
     * path.  Reads the cached base conductance when the kernel cache
     * is on (refreshKernelCaches() must have run this revision).
     */
    double uaAt(std::size_t i, double t_node, double t_air) const;

    /** The uncached base conductance of node i (no freeze derating). */
    double computeUaBase(std::size_t i) const;

    /**
     * Rebuild the CSR zone topology and the per-node conductance
     * table iff stale (topology or airflow revision moved).  No-op
     * when the kernel cache is off.
     */
    void refreshKernelCaches() const;

    /**
     * Walk the air path for the given node enthalpies.
     *
     * @param h       Node enthalpies.
     * @param t_mixed Output: fully-mixed stream temperature entering
     *                each zone (size zone_count + 1; last entry is
     *                the outlet).
     * @param t_local Output: local (plume-corrected) temperature seen
     *                by nodes in each zone (size zone_count).
     */
    void airWalk(const std::vector<double> &h,
                 std::vector<double> &t_mixed,
                 std::vector<double> &t_local) const;

    /** ODE right-hand side dH/dt. */
    void rhs(const std::vector<double> &h,
             std::vector<double> &dh) const;

    /**
     * One guarded integration attempt over the augmented state;
     * throws guard::NumericsError on a sentinel or audit trip,
     * leaving state_ untouched (the attempt works on a scratch
     * vector).  On success commits the node entries to state_.
     */
    void guardedAttempt(const OdeRhs &f, double dt_total, double dt);

    /** Same, with the adaptive RK23 fallback stepper. */
    void fallbackAttempt(const OdeRhs &f, double dt_total);

    /** Sentinel + audit checks on a completed augmented state. */
    void checkAttempt(std::vector<double> &aug, double dt_total);

    /** Wrap a NumericsError with node/zone naming and rethrow. */
    [[noreturn]] void enrich(const guard::NumericsError &e) const;

    /** Event subject: "<label>/<node>" ("net" when node is empty). */
    std::string obsName(const std::string &node) const;

    /** Snapshot PCM melt fractions into obs_melt_prev_. */
    void seedMeltFractions();

    /**
     * Emit melt onset/complete/refrozen transitions against
     * obs_melt_prev_ and bump the step counter.  Only called with
     * collection enabled, after advance() committed the state.
     */
    void emitThermalEvents(std::uint64_t steps_taken);

    AirflowModel airflow_;
    std::size_t zone_count_;
    double inlet_temp_;

    // Node attributes, structure-of-arrays (all sized nodeCount()).
    std::vector<std::string> names_;
    std::vector<double> capacity_;       //!< J/K; 0 for PCM nodes.
    std::vector<ConvectiveCoupling> coupling_; //!< Unused for PCM.
    std::vector<std::size_t> zone_;
    std::vector<VelocityRef> vref_;
    std::vector<pcm::PcmElement *> element_; //!< Null for capacity.
    std::vector<double> power_;          //!< External input (W).
    std::vector<char> air_coupled_;      //!< Exchanges with the air.

    std::vector<ConductionLink> links_;
    std::vector<double> direct_air_power_;
    std::vector<double> plume_fraction_;
    std::vector<double> state_;          //!< Node enthalpies (J).
    RungeKutta4 stepper_;
    mutable std::vector<double> t_mixed_scratch_;
    mutable std::vector<double> t_local_scratch_;

    // Kernel caches (see refreshKernelCaches).
    bool kernel_cache_;
    std::uint64_t topo_rev_ = 0;         //!< Bumped per added node.
    mutable std::uint64_t csr_topo_rev_ = ~std::uint64_t{0};
    mutable std::vector<std::size_t> zone_offsets_; //!< CSR offsets.
    mutable std::vector<std::size_t> zone_node_ids_; //!< CSR ids.
    mutable std::uint64_t ua_topo_rev_ = ~std::uint64_t{0};
    mutable std::uint64_t ua_airflow_rev_ = ~std::uint64_t{0};
    mutable std::vector<double> ua_base_; //!< Cached conductances.

    guard::GuardConfig guard_config_;
    guard::GuardCounters guard_counters_;
    std::function<void(std::vector<double> &)> guard_corruptor_;
    bool guard_corruptor_once_ = true;
    std::vector<double> aug_scratch_;    //!< Guarded-attempt state.

    std::string obs_label_;              //!< Trace event prefix.
    double obs_clock_ = 0.0;             //!< Sim time of state_ (s).
    bool obs_melt_seeded_ = false;       //!< obs_melt_prev_ valid.
    std::vector<double> obs_melt_prev_;  //!< Melt fraction per node.
};

/**
 * Advance a batch of independent networks by the same interval.
 *
 * Small batches (fewer than four networks - e.g. the two
 * representative servers of a resilience arm) run serially on the
 * caller: per-region thread recruitment would cost more than the
 * integration.  Larger batches fan out through the global
 * exec::ThreadPool with its deterministic (region, task, seq) obs
 * stream keys; since the networks share no state, results are
 * bit-identical at any thread count.
 */
void advanceNetworks(const std::vector<ServerThermalNetwork *> &nets,
                     double dt_total, double dt_step = 1.0);

} // namespace thermal
} // namespace tts

#endif // TTS_THERMAL_NETWORK_HH
