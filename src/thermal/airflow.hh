/**
 * @file
 * Server airflow model: fan curve vs. system impedance.
 *
 * Replaces the CFD airflow solution with the standard lumped
 * treatment: the fans supply a linear pressure-flow curve, the chassis
 * presents a quadratic impedance dP = k * Q^2, and the operating
 * point is their intersection.  Blocking a fraction b of the duct
 * cross-section scales the impedance by 1/(1-b)^2 (orifice law),
 * which reproduces the paper's Figure 7 blockage sweeps once the fan
 * stiffness is calibrated per server.
 *
 * The operating-point solve is memoized behind a dirty flag: the
 * state (blockage, fan speed) changes a handful of times per control
 * interval while flow() is queried on every RK4 stage of every
 * thermal step, so the solve runs only when a setter actually changes
 * a value.  The memo returns the bit-identical result of the same
 * deterministic solve, never an approximation.  Every value-changing
 * setter also bumps a revision counter so downstream caches (the
 * thermal network's conductance table) can invalidate without
 * subscribing to callbacks - including when the change comes from a
 * fault event (a fan-bank failure pinning the speed).
 */

#ifndef TTS_THERMAL_AIRFLOW_HH
#define TTS_THERMAL_AIRFLOW_HH

#include <cstdint>

namespace tts {
namespace thermal {

/**
 * Linear fan pressure-flow curve with fan-law speed scaling.
 *
 * At full speed the curve runs from (0, maxPressure) to (maxFlow, 0).
 * At speed fraction s, flow scales by s and pressure by s^2.
 */
struct FanCurve
{
    /** Static pressure at zero flow, full speed (Pa). */
    double maxPressurePa;
    /** Free-delivery flow at zero pressure, full speed (m^3/s). */
    double maxFlowM3s;

    /**
     * Pressure available at the given flow and speed (Pa); negative
     * when the demanded flow exceeds free delivery.
     *
     * @param q     Volumetric flow (m^3/s).
     * @param speed Speed fraction in (0, 1].
     */
    double pressureAt(double q, double speed = 1.0) const;
};

/**
 * Solve the fan/impedance operating point.
 *
 * Finds Q >= 0 with fan.pressureAt(Q, speed) == k * Q^2.
 *
 * @param fan   Fan curve.
 * @param k     Impedance coefficient (Pa s^2/m^6), must be > 0.
 * @param speed Fan speed fraction in (0, 1].
 * @return Operating flow (m^3/s).
 */
double solveOperatingPoint(const FanCurve &fan, double k,
                           double speed = 1.0);

/**
 * Complete airflow state of one server chassis.
 *
 * Owns the fan curve, the baseline impedance (calibrated from the
 * nominal flow at zero blockage), and the current blockage fraction
 * and fan speed.
 */
class AirflowModel
{
  public:
    /**
     * Calibrate from a nominal operating point.
     *
     * @param fan          Fan curve (full-speed).
     * @param nominal_flow Flow at zero blockage, full speed (m^3/s).
     * @param duct_area    Duct cross-section at the wax bay (m^2).
     */
    AirflowModel(const FanCurve &fan, double nominal_flow,
                 double duct_area);

    /** Set the blocked fraction of the duct in [0, 1). */
    void setBlockage(double fraction);
    /** @return Current blockage fraction. */
    double blockage() const { return blockage_; }

    /** Set the fan speed fraction in (0, 1]. */
    void setFanSpeed(double speed);
    /** @return Current fan speed fraction. */
    double fanSpeed() const { return speed_; }

    /** @return Volumetric flow at the current state (m^3/s). */
    double flow() const;

    /** @return Mass flow at the current state (kg/s). */
    double massFlow() const;

    /**
     * @return Air velocity through the unblocked part of the duct
     * (m/s); rises through a constriction even as total flow falls.
     */
    double velocityAtBlockage() const;

    /** @return Mean duct velocity with no constriction (m/s). */
    double ductVelocity() const;

    /** @return Baseline impedance coefficient k0 (Pa s^2/m^6). */
    double baseImpedance() const { return k0_; }

    /** @return The fan curve. */
    const FanCurve &fan() const { return fan_; }

    /** @return Duct cross-sectional area (m^2). */
    double ductArea() const { return duct_area_; }

    /**
     * @return Monotone counter bumped by every value-changing
     * setBlockage()/setFanSpeed().  Downstream caches compare it to
     * decide whether their derived quantities are stale.
     */
    std::uint64_t revision() const { return revision_; }

    /**
     * Enable/disable the operating-point memo (defaults to
     * KernelConfig.airflowMemo at construction).  Disabling gives the
     * reference re-solve-per-call behavior; results are bit-identical
     * either way.
     */
    void setMemoEnabled(bool enabled);
    /** @return True when the operating-point memo is on. */
    bool memoEnabled() const { return memo_enabled_; }

  private:
    /** The un-memoized operating-point solve at the current state. */
    double solveCurrent() const;

    FanCurve fan_;
    double duct_area_;
    double k0_;
    double blockage_ = 0.0;
    double speed_ = 1.0;
    std::uint64_t revision_ = 0;
    bool memo_enabled_;
    mutable bool memo_valid_ = false;
    mutable double memo_flow_ = 0.0;
};

} // namespace thermal
} // namespace tts

#endif // TTS_THERMAL_AIRFLOW_HH
