#include "thermal/kernel_config.hh"

#include <atomic>

namespace tts {
namespace thermal {

namespace {

std::atomic<bool> g_airflow_memo{true};
std::atomic<bool> g_network_cache{true};

} // namespace

KernelConfig
defaultKernelConfig()
{
    KernelConfig cfg;
    cfg.airflowMemo = g_airflow_memo.load(std::memory_order_relaxed);
    cfg.networkCache =
        g_network_cache.load(std::memory_order_relaxed);
    return cfg;
}

void
setDefaultKernelConfig(const KernelConfig &cfg)
{
    g_airflow_memo.store(cfg.airflowMemo, std::memory_order_relaxed);
    g_network_cache.store(cfg.networkCache,
                          std::memory_order_relaxed);
}

} // namespace thermal
} // namespace tts
