/**
 * @file
 * Process-wide thermal kernel configuration.
 *
 * The optimized kernel memoizes the airflow operating point and
 * caches the velocity-dependent conductances between airflow
 * revisions; both caches reproduce the reference arithmetic
 * bit-for-bit (they reuse results of identical deterministic
 * computations, never reassociate or re-order them).  The reference
 * kernel recomputes everything per call, exactly as the pre-SoA
 * implementation did - it exists so bench/perf_thermal_kernel can
 * measure the speedup and so tests can pin cached-vs-uncached
 * bit-identity across the fault grid.
 *
 * The defaults are captured by AirflowModel / ServerThermalNetwork at
 * construction; changing them never affects live objects (which have
 * their own setters).
 */

#ifndef TTS_THERMAL_KERNEL_CONFIG_HH
#define TTS_THERMAL_KERNEL_CONFIG_HH

namespace tts {
namespace thermal {

/** Kernel cache switches applied to newly-built objects. */
struct KernelConfig
{
    /** Memoize the fan-vs-impedance operating-point solve. */
    bool airflowMemo = true;
    /** Cache per-node conductances + CSR zone topology. */
    bool networkCache = true;
};

/** @return The current process-wide defaults. */
KernelConfig defaultKernelConfig();

/** Replace the process-wide defaults (bench/test hook). */
void setDefaultKernelConfig(const KernelConfig &cfg);

/** @return All caches off: the pre-refactor reference arithmetic. */
inline KernelConfig
referenceKernelConfig()
{
    return KernelConfig{false, false};
}

} // namespace thermal
} // namespace tts

#endif // TTS_THERMAL_KERNEL_CONFIG_HH
