#include "thermal/airflow.hh"

#include <cmath>

#include "thermal/kernel_config.hh"
#include "util/error.hh"
#include "util/units.hh"

namespace tts {
namespace thermal {

double
FanCurve::pressureAt(double q, double speed) const
{
    // Fan laws: Q scales with speed, P with speed^2.
    double qf = maxFlowM3s * speed;
    double pf = maxPressurePa * speed * speed;
    if (qf <= 0.0)
        return 0.0;
    return pf * (1.0 - q / qf);
}

double
solveOperatingPoint(const FanCurve &fan, double k, double speed)
{
    require(k > 0.0, "solveOperatingPoint: impedance must be > 0");
    require(speed > 0.0 && speed <= 1.0,
            "solveOperatingPoint: speed must be in (0, 1]");
    double qf = fan.maxFlowM3s * speed;
    double pf = fan.maxPressurePa * speed * speed;
    require(qf > 0.0 && pf > 0.0,
            "solveOperatingPoint: degenerate fan curve");
    // Solve k q^2 + (pf/qf) q - pf = 0 for q > 0.
    double b = pf / qf;
    double disc = b * b + 4.0 * k * pf;
    double q = (-b + std::sqrt(disc)) / (2.0 * k);
    invariant(q >= 0.0 && q <= qf + 1e-12,
              "solveOperatingPoint: operating point out of range");
    return q;
}

AirflowModel::AirflowModel(const FanCurve &fan, double nominal_flow,
                           double duct_area)
    : fan_(fan), duct_area_(duct_area),
      memo_enabled_(defaultKernelConfig().airflowMemo)
{
    require(nominal_flow > 0.0,
            "AirflowModel: nominal flow must be > 0");
    require(nominal_flow < fan.maxFlowM3s,
            "AirflowModel: nominal flow must be below free delivery");
    require(duct_area > 0.0, "AirflowModel: duct area must be > 0");
    // Calibrate k0 so the operating point at zero blockage equals the
    // nominal flow: k0 = P(Q_nom) / Q_nom^2.
    double p = fan.pressureAt(nominal_flow);
    require(p > 0.0,
            "AirflowModel: nominal flow not on the fan curve");
    k0_ = p / (nominal_flow * nominal_flow);
}

void
AirflowModel::setBlockage(double fraction)
{
    require(fraction >= 0.0 && fraction < 1.0,
            "AirflowModel: blockage must be in [0, 1)");
    if (fraction == blockage_)
        return;
    blockage_ = fraction;
    ++revision_;
    memo_valid_ = false;
}

void
AirflowModel::setFanSpeed(double speed)
{
    require(speed > 0.0 && speed <= 1.0,
            "AirflowModel: fan speed must be in (0, 1]");
    if (speed == speed_)
        return;
    speed_ = speed;
    ++revision_;
    memo_valid_ = false;
}

void
AirflowModel::setMemoEnabled(bool enabled)
{
    memo_enabled_ = enabled;
    memo_valid_ = false;
}

double
AirflowModel::solveCurrent() const
{
    double open = 1.0 - blockage_;
    double k = k0_ / (open * open);
    return solveOperatingPoint(fan_, k, speed_);
}

double
AirflowModel::flow() const
{
    if (!memo_enabled_)
        return solveCurrent();
    if (!memo_valid_) {
        memo_flow_ = solveCurrent();
        memo_valid_ = true;
    }
    return memo_flow_;
}

double
AirflowModel::massFlow() const
{
    return flow() * units::airDensity;
}

double
AirflowModel::velocityAtBlockage() const
{
    double open_area = duct_area_ * (1.0 - blockage_);
    return flow() / open_area;
}

double
AirflowModel::ductVelocity() const
{
    return flow() / duct_area_;
}

} // namespace thermal
} // namespace tts
