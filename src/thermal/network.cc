#include "thermal/network.hh"

#include <cmath>

#include "exec/parallel.hh"
#include "obs/obs.hh"
#include "thermal/kernel_config.hh"
#include "util/error.hh"
#include "util/units.hh"

namespace tts {
namespace thermal {

double
ConvectiveCoupling::ua(double velocity) const
{
    double v = std::max(velocity, 0.05);
    return ua0 * std::pow(v / refVelocity, exponent);
}

ServerThermalNetwork::ServerThermalNetwork(const AirflowModel &airflow,
                                           std::size_t zone_count,
                                           double inlet_temp_c)
    : airflow_(airflow), zone_count_(zone_count),
      inlet_temp_(inlet_temp_c),
      direct_air_power_(zone_count, 0.0),
      plume_fraction_(zone_count, 1.0),
      kernel_cache_(defaultKernelConfig().networkCache),
      guard_config_(guard::defaultGuardConfig())
{
    require(zone_count >= 1,
            "ServerThermalNetwork: need at least one zone");
}

int
ServerThermalNetwork::addCapacityNode(const std::string &name,
                                      double capacity,
                                      const ConvectiveCoupling &coupling,
                                      std::size_t zone,
                                      double initial_temp_c,
                                      VelocityRef vref)
{
    require(capacity > 0.0,
            "addCapacityNode: capacity must be > 0");
    require(coupling.ua0 > 0.0, "addCapacityNode: ua0 must be > 0");
    require(zone < zone_count_, "addCapacityNode: zone out of range");
    names_.push_back(name);
    capacity_.push_back(capacity);
    coupling_.push_back(coupling);
    zone_.push_back(zone);
    vref_.push_back(vref);
    element_.push_back(nullptr);
    power_.push_back(0.0);
    air_coupled_.push_back(1);
    state_.push_back(capacity * initial_temp_c);
    ++topo_rev_;
    return static_cast<int>(names_.size()) - 1;
}

int
ServerThermalNetwork::addPcmNode(const std::string &name,
                                 pcm::PcmElement *element,
                                 std::size_t zone, bool air_coupled)
{
    require(element != nullptr, "addPcmNode: null element");
    require(zone < zone_count_, "addPcmNode: zone out of range");
    names_.push_back(name);
    capacity_.push_back(0.0);
    coupling_.push_back(ConvectiveCoupling{1.0, 2.0, 0.8});
    zone_.push_back(zone);
    vref_.push_back(VelocityRef::Constriction);
    element_.push_back(element);
    power_.push_back(0.0);
    air_coupled_.push_back(air_coupled ? 1 : 0);
    state_.push_back(element->storedEnthalpy());
    ++topo_rev_;
    return static_cast<int>(names_.size()) - 1;
}

void
ServerThermalNetwork::addConduction(int a, int b, double conductance)
{
    require(a >= 0 && a < static_cast<int>(names_.size()) &&
            b >= 0 && b < static_cast<int>(names_.size()) && a != b,
            "addConduction: bad node ids");
    require(conductance > 0.0,
            "addConduction: conductance must be > 0");
    links_.push_back({a, b, conductance});
}

void
ServerThermalNetwork::setNodePower(int node, double watts)
{
    require(node >= 0 && node < static_cast<int>(names_.size()),
            "setNodePower: bad node id");
    require(watts >= 0.0, "setNodePower: power must be >= 0");
    power_[node] = watts;
}

double
ServerThermalNetwork::nodePower(int node) const
{
    require(node >= 0 && node < static_cast<int>(names_.size()),
            "nodePower: bad node id");
    return power_[node];
}

void
ServerThermalNetwork::setDirectAirPower(std::size_t zone, double watts)
{
    require(zone < zone_count_, "setDirectAirPower: zone out of range");
    require(watts >= 0.0, "setDirectAirPower: power must be >= 0");
    direct_air_power_[zone] = watts;
}

double
ServerThermalNetwork::directAirPower(std::size_t zone) const
{
    require(zone < zone_count_, "directAirPower: zone out of range");
    return direct_air_power_[zone];
}

void
ServerThermalNetwork::setZonePlumeFraction(std::size_t zone, double p)
{
    require(zone < zone_count_,
            "setZonePlumeFraction: zone out of range");
    require(p > 0.0 && p <= 1.0,
            "setZonePlumeFraction: fraction must be in (0, 1]");
    plume_fraction_[zone] = p;
}

void
ServerThermalNetwork::setInletTemp(double t_c)
{
    inlet_temp_ = t_c;
}

void
ServerThermalNetwork::setKernelCacheEnabled(bool enabled)
{
    kernel_cache_ = enabled;
    // Force a rebuild on next use so a re-enable never reads stale
    // tables.
    csr_topo_rev_ = ~std::uint64_t{0};
    ua_topo_rev_ = ~std::uint64_t{0};
    ua_airflow_rev_ = ~std::uint64_t{0};
}

double
ServerThermalNetwork::tempOf(std::size_t i, double h) const
{
    if (element_[i])
        return element_[i]->temperatureAtEnthalpy(h);
    return h / capacity_[i];
}

double
ServerThermalNetwork::computeUaBase(std::size_t i) const
{
    if (!air_coupled_[i])
        return 0.0;
    double v = vref_[i] == VelocityRef::Constriction
        ? airflow_.velocityAtBlockage()
        : airflow_.ductVelocity();
    if (element_[i])
        return element_[i]->bank().conductanceAt(v);
    return coupling_[i].ua(v);
}

double
ServerThermalNetwork::uaAt(std::size_t i, double t_node,
                           double t_air) const
{
    // The cached base conductance is the bit-identical result of
    // computeUaBase() at the current airflow revision; only the
    // direction-dependent PCM freeze derating (a mutable element
    // property) is applied live.
    double ua = kernel_cache_ ? ua_base_[i] : computeUaBase(i);
    if (element_[i] && air_coupled_[i] && t_node > t_air)
        ua *= element_[i]->freezeConductanceFactor();
    return ua;
}

void
ServerThermalNetwork::refreshKernelCaches() const
{
    if (!kernel_cache_)
        return;
    const std::size_t n = names_.size();
    if (csr_topo_rev_ != topo_rev_) {
        zone_offsets_.assign(zone_count_ + 1, 0);
        for (std::size_t i = 0; i < n; ++i)
            ++zone_offsets_[zone_[i] + 1];
        for (std::size_t z = 0; z < zone_count_; ++z)
            zone_offsets_[z + 1] += zone_offsets_[z];
        zone_node_ids_.resize(n);
        std::vector<std::size_t> cursor(
            zone_offsets_.begin(), zone_offsets_.end() - 1);
        // Ascending node ids within each zone: the air walk must
        // accumulate q in the same order as the reference full scan.
        for (std::size_t i = 0; i < n; ++i)
            zone_node_ids_[cursor[zone_[i]]++] = i;
        csr_topo_rev_ = topo_rev_;
    }
    std::uint64_t arev = airflow_.revision();
    if (ua_topo_rev_ != topo_rev_ || ua_airflow_rev_ != arev) {
        ua_base_.resize(n);
        for (std::size_t i = 0; i < n; ++i)
            ua_base_[i] = computeUaBase(i);
        ua_topo_rev_ = topo_rev_;
        ua_airflow_rev_ = arev;
    }
}

void
ServerThermalNetwork::airWalk(const std::vector<double> &h,
                              std::vector<double> &t_mixed,
                              std::vector<double> &t_local) const
{
    t_mixed.resize(zone_count_ + 1);
    t_local.resize(zone_count_);
    double mcp = airflow_.massFlow() * units::airSpecificHeat;
    invariant(mcp > 0.0, "airWalk: no airflow");
    refreshKernelCaches();
    t_mixed[0] = inlet_temp_;
    double upstream_rise = 0.0;

    auto node_heat = [&](std::size_t i, std::size_t z,
                         double t_air) {
        double tn = tempOf(i, h[i]);
        if (!std::isfinite(tn)) {
            throw guard::NumericsError(
                "airWalk: non-finite temperature at node '" +
                    names_[i] + "' (zone " + std::to_string(z) + ")",
                names_[i], static_cast<std::ptrdiff_t>(z), -1.0, 0.0,
                static_cast<std::ptrdiff_t>(i));
        }
        return uaAt(i, tn, t_air) * (tn - t_air);
    };

    for (std::size_t z = 0; z < zone_count_; ++z) {
        double p = plume_fraction_[z];
        t_local[z] = t_mixed[z] + (1.0 / p - 1.0) * upstream_rise;
        double q = direct_air_power_[z];
        if (kernel_cache_) {
            // Precompiled CSR slice: only this zone's nodes, in
            // ascending id order (same accumulation order as the
            // reference scan below).
            for (std::size_t k = zone_offsets_[z];
                 k < zone_offsets_[z + 1]; ++k)
                q += node_heat(zone_node_ids_[k], z, t_local[z]);
        } else {
            for (std::size_t i = 0; i < names_.size(); ++i) {
                if (zone_[i] != z)
                    continue;
                q += node_heat(i, z, t_local[z]);
            }
        }
        upstream_rise = q / mcp;
        t_mixed[z + 1] = t_mixed[z] + upstream_rise;
    }
}

void
ServerThermalNetwork::rhs(const std::vector<double> &h,
                          std::vector<double> &dh) const
{
    airWalk(h, t_mixed_scratch_, t_local_scratch_);
    const std::size_t n = names_.size();
    dh.assign(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        double t = tempOf(i, h[i]);
        double t_air = t_local_scratch_[zone_[i]];
        dh[i] = power_[i] - uaAt(i, t, t_air) * (t - t_air);
    }
    for (const auto &link : links_) {
        double ta = tempOf(link.a, h[link.a]);
        double tb = tempOf(link.b, h[link.b]);
        double q = link.conductance * (ta - tb);
        dh[link.a] -= q;
        dh[link.b] += q;
    }
}

void
ServerThermalNetwork::advance(double dt_total, double dt_step)
{
    require(dt_total >= 0.0, "advance: dt_total must be >= 0");
    require(dt_step > 0.0, "advance: dt_step must be > 0");
    if (dt_total == 0.0)
        return;

    obs::Scope profile("thermal.advance");

    // Capture pre-interval melt fractions the first time collection
    // is on, so a transition inside this very interval is seen.
    if (obs::enabled() && !obs_melt_seeded_)
        seedMeltFractions();

    if (!guard_config_.enabled) {
        OdeRhs plain = [this](double, const std::vector<double> &h,
                              std::vector<double> &dh) { rhs(h, dh); };
        integrate(stepper_, plain, 0.0, dt_total, dt_step, state_);
        for (std::size_t i = 0; i < names_.size(); ++i) {
            if (element_[i])
                element_[i]->setEnthalpy(state_[i]);
        }
        obs_clock_ += dt_total;
        if (obs::enabled())
            emitThermalEvents(static_cast<std::uint64_t>(
                std::ceil(dt_total / dt_step)));
        else
            obs_melt_seeded_ = false;
        return;
    }

    // Guarded path.  The rhs is augmented with an energy accumulator
    // whose derivative is sum(dH/dt); the stepper integrates it with
    // exactly the same quadrature as the node enthalpies, so in a
    // healthy solve it tracks sum(H) to rounding error and the audit
    // below is a corruption detector rather than a discretization
    // check.  The node entries see identical arithmetic to the
    // unguarded solve, so a run that never trips is bit-identical.
    OdeRhs f = [this](double, const std::vector<double> &h,
                      std::vector<double> &dh) {
        rhs(h, dh);
        double s = 0.0;
        for (double d : dh)
            s += d;
        dh.push_back(s);
    };

    ++guard_counters_.advances;
    const std::uint64_t steps_before = guard_counters_.steps;
    double dt = dt_step;
    int attempt = 0;
    for (;;) {
        try {
            guardedAttempt(f, dt_total, dt);
            break;
        } catch (const guard::NumericsError &e) {
            if (e.residualJ() != 0.0)
                ++guard_counters_.auditTrips;
            else
                ++guard_counters_.sentinelTrips;
            // state_ is untouched by a failed attempt (the attempt
            // works on aug_scratch_), so retrying is a plain re-run
            // at a smaller step.
            if (attempt < guard_config_.maxRetries) {
                ++attempt;
                ++guard_counters_.retries;
                dt *= guard_config_.backoffFactor;
                TTS_OBS_EVENT(obs::EventKind::GuardRetry, obs_clock_,
                              obsName(e.node()), e.residualJ(),
                              attempt);
                continue;
            }
            if (guard_config_.fallbackAdaptive) {
                ++guard_counters_.fallbacks;
                TTS_OBS_EVENT(obs::EventKind::GuardFallback,
                              obs_clock_, obsName(e.node()),
                              e.residualJ(), attempt);
                try {
                    fallbackAttempt(f, dt_total);
                    break;
                } catch (const guard::NumericsError &e2) {
                    if (e2.residualJ() != 0.0)
                        ++guard_counters_.auditTrips;
                    else
                        ++guard_counters_.sentinelTrips;
                    TTS_OBS_EVENT(obs::EventKind::GuardTrip,
                                  obs_clock_, obsName(e2.node()),
                                  e2.residualJ(), attempt);
                    enrich(e2);
                }
            }
            TTS_OBS_EVENT(obs::EventKind::GuardTrip, obs_clock_,
                          obsName(e.node()), e.residualJ(), attempt);
            enrich(e);
        }
    }

    for (std::size_t i = 0; i < names_.size(); ++i) {
        if (element_[i])
            element_[i]->setEnthalpy(state_[i]);
    }
    obs_clock_ += dt_total;
    if (obs::enabled())
        emitThermalEvents(guard_counters_.steps - steps_before);
    else
        obs_melt_seeded_ = false;
}

void
ServerThermalNetwork::guardedAttempt(const OdeRhs &f, double dt_total,
                                     double dt)
{
    const std::size_t n = names_.size();
    aug_scratch_.assign(state_.begin(), state_.end());
    double h0_sum = 0.0;
    for (double h : state_)
        h0_sum += h;
    aug_scratch_.push_back(h0_sum);

    std::uint64_t steps = 0;
    auto obs = [&steps](double t, const std::vector<double> &) {
        if (t > 0.0)
            ++steps;
    };
    integrate(stepper_, f, 0.0, dt_total, dt, aug_scratch_, obs);
    checkAttempt(aug_scratch_, dt_total);
    // Count steps only after the attempt passed its checks: a
    // tripped attempt is rolled back wholesale, and `steps` is
    // documented as *accepted* integrator steps.
    guard_counters_.steps += steps;
    state_.assign(aug_scratch_.begin(),
                  aug_scratch_.begin() + static_cast<std::ptrdiff_t>(n));
}

void
ServerThermalNetwork::fallbackAttempt(const OdeRhs &f, double dt_total)
{
    const std::size_t n = names_.size();
    aug_scratch_.assign(state_.begin(), state_.end());
    double h0_sum = 0.0;
    for (double h : state_)
        h0_sum += h;
    aug_scratch_.push_back(h0_sum);

    AdaptiveRk23 fallback(guard_config_.fallbackRtol,
                          guard_config_.fallbackAtol);
    std::uint64_t steps =
        fallback.integrate(f, 0.0, dt_total, aug_scratch_);
    checkAttempt(aug_scratch_, dt_total);
    // As in guardedAttempt: rolled-back attempts contribute no
    // accepted steps.
    guard_counters_.steps += steps;
    state_.assign(aug_scratch_.begin(),
                  aug_scratch_.begin() + static_cast<std::ptrdiff_t>(n));
}

void
ServerThermalNetwork::checkAttempt(std::vector<double> &aug,
                                   double dt_total)
{
    if (guard_corruptor_) {
        auto fn = guard_corruptor_;
        if (guard_corruptor_once_)
            guard_corruptor_ = nullptr;
        fn(aug);
    }

    const std::size_t n = names_.size();
    std::ptrdiff_t bad = guard::firstNonFinite(aug);
    if (bad >= 0) {
        throw guard::NumericsError(
            "advance: non-finite state after interval", std::string(),
            -1, dt_total, 0.0, bad);
    }

    ++guard_counters_.audits;
    double h_sum = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        h_sum += aug[i];
    const double e_acc = aug[n];
    const double residual = h_sum - e_acc;
    const double scale = guard_config_.auditAtolJ +
        guard_config_.auditRtol * (std::abs(h_sum) + std::abs(e_acc));
    const double mag = std::abs(residual);
    if (mag > guard_counters_.worstResidualJ) {
        guard_counters_.worstResidualJ = mag;
        guard_counters_.worstResidualTimeS = dt_total;
    }
    if (mag > scale) {
        // Attribute the trip to the node that moved furthest over
        // the interval - with an external corruption that is the
        // corrupted node; with genuine divergence it is the node
        // driving it.
        std::size_t worst = 0;
        double wmag = -1.0;
        for (std::size_t i = 0; i < n; ++i) {
            double d = std::abs(aug[i] - state_[i]);
            if (d > wmag) {
                wmag = d;
                worst = i;
            }
        }
        throw guard::NumericsError(
            "advance: energy audit residual " + std::to_string(mag) +
                " J exceeds tolerance " + std::to_string(scale) +
                " J (worst node '" + names_[worst] + "')",
            names_[worst],
            static_cast<std::ptrdiff_t>(zone_[worst]), dt_total,
            mag, static_cast<std::ptrdiff_t>(worst));
    }
}

void
ServerThermalNetwork::enrich(const guard::NumericsError &e) const
{
    std::ptrdiff_t idx = e.stateIndex();
    std::string node = e.node();
    std::ptrdiff_t zone = e.zone();
    if (node.empty() && idx >= 0) {
        if (idx < static_cast<std::ptrdiff_t>(names_.size())) {
            node = names_[idx];
            zone = static_cast<std::ptrdiff_t>(zone_[idx]);
        } else {
            node = "<energy-accumulator>";
        }
    }
    throw guard::NumericsError(
        "thermal guard: retries exhausted: " + std::string(e.what()) +
            (node.empty() ? std::string()
                          : " [node '" + node + "']"),
        node, zone, e.timeS(), e.residualJ(), idx);
}

std::string
ServerThermalNetwork::obsName(const std::string &node) const
{
    const std::string &leaf = node.empty() ? "net" : node;
    if (obs_label_.empty())
        return leaf;
    return obs_label_ + "/" + leaf;
}

void
ServerThermalNetwork::seedMeltFractions()
{
    obs_melt_prev_.assign(names_.size(), 0.0);
    for (std::size_t i = 0; i < names_.size(); ++i) {
        if (element_[i])
            obs_melt_prev_[i] = element_[i]->meltFraction();
    }
    obs_melt_seeded_ = true;
}

void
ServerThermalNetwork::emitThermalEvents(std::uint64_t steps_taken)
{
    static obs::Counter &step_count =
        obs::registry().counter("thermal.advance.steps");
    static obs::Counter &advance_count =
        obs::registry().counter("thermal.advance.count");
    step_count.add(steps_taken);
    advance_count.add(1);

    if (!obs_melt_seeded_) {
        seedMeltFractions();
        return;
    }
    for (std::size_t i = 0; i < names_.size(); ++i) {
        if (!element_[i])
            continue;
        double prev = obs_melt_prev_[i];
        double now = element_[i]->meltFraction();
        if (prev <= 0.0 && now > 0.0)
            obs::emitEvent(obs::EventKind::MeltOnset, obs_clock_,
                           obsName(names_[i]), now,
                           static_cast<std::int64_t>(i));
        if (prev < 1.0 && now >= 1.0)
            obs::emitEvent(obs::EventKind::MeltComplete, obs_clock_,
                           obsName(names_[i]), now,
                           static_cast<std::int64_t>(i));
        if (prev > 0.0 && now <= 0.0)
            obs::emitEvent(obs::EventKind::MeltRefrozen, obs_clock_,
                           obsName(names_[i]), now,
                           static_cast<std::int64_t>(i));
        obs_melt_prev_[i] = now;
    }
}

void
ServerThermalNetwork::setEnthalpies(const std::vector<double> &h)
{
    require(h.size() == state_.size(),
            "setEnthalpies: size mismatch (got " +
                std::to_string(h.size()) + ", have " +
                std::to_string(state_.size()) + " nodes)");
    state_ = h;
    for (std::size_t i = 0; i < names_.size(); ++i) {
        if (element_[i])
            element_[i]->setEnthalpy(state_[i]);
    }
    // External state replacement (checkpoint restore) is not a
    // simulated transition; re-snapshot before the next advance.
    obs_melt_seeded_ = false;
}

void
ServerThermalNetwork::solveSteadyState()
{
    // Gauss-Seidel on the per-node balances interleaved with air
    // walks.  Converges fast because air-to-node coupling dominates.
    const std::size_t n = names_.size();
    std::vector<double> t(n);
    for (std::size_t i = 0; i < n; ++i)
        t[i] = tempOf(i, state_[i]);

    std::vector<double> t_mixed, t_local;
    for (int iter = 0; iter < 500; ++iter) {
        // Convert temps back to enthalpies for the walk.
        for (std::size_t i = 0; i < n; ++i) {
            state_[i] = element_[i]
                ? element_[i]->activeCurve().enthalpyAt(t[i])
                : capacity_[i] * t[i];
        }
        airWalk(state_, t_mixed, t_local);
        double max_delta = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            double ua = uaAt(i, t[i], t_local[zone_[i]]);
            double num = power_[i] + ua * t_local[zone_[i]];
            double den = ua;
            for (const auto &link : links_) {
                if (link.a == static_cast<int>(i)) {
                    num += link.conductance * t[link.b];
                    den += link.conductance;
                } else if (link.b == static_cast<int>(i)) {
                    num += link.conductance * t[link.a];
                    den += link.conductance;
                }
            }
            invariant(den > 0.0, "solveSteadyState: node with no "
                      "air coupling and no conduction links");
            double t_new = num / den;
            max_delta = std::max(max_delta, std::abs(t_new - t[i]));
            t[i] = t_new;
        }
        if (max_delta < 1e-9)
            break;
    }
    for (std::size_t i = 0; i < n; ++i) {
        state_[i] = element_[i]
            ? element_[i]->activeCurve().enthalpyAt(t[i])
            : capacity_[i] * t[i];
        if (element_[i])
            element_[i]->setEnthalpy(state_[i]);
    }
    obs_melt_seeded_ = false;
}

double
ServerThermalNetwork::nodeTemperature(int node) const
{
    require(node >= 0 && node < static_cast<int>(names_.size()),
            "nodeTemperature: bad node id");
    return tempOf(node, state_[node]);
}

double
ServerThermalNetwork::nodeEnthalpy(int node) const
{
    require(node >= 0 && node < static_cast<int>(names_.size()),
            "nodeEnthalpy: bad node id");
    return state_[node];
}

double
ServerThermalNetwork::zoneAirTemp(std::size_t zone) const
{
    require(zone <= zone_count_, "zoneAirTemp: zone out of range");
    airWalk(state_, t_mixed_scratch_, t_local_scratch_);
    if (zone == zone_count_)
        return t_mixed_scratch_[zone_count_];
    return t_local_scratch_[zone];
}

double
ServerThermalNetwork::zoneMixedTemp(std::size_t zone) const
{
    require(zone <= zone_count_, "zoneMixedTemp: zone out of range");
    airWalk(state_, t_mixed_scratch_, t_local_scratch_);
    return t_mixed_scratch_[zone];
}

double
ServerThermalNetwork::outletTemp() const
{
    return zoneMixedTemp(zone_count_);
}

double
ServerThermalNetwork::airHeatRate() const
{
    double mcp = airflow_.massFlow() * units::airSpecificHeat;
    return mcp * (outletTemp() - inlet_temp_);
}

double
ServerThermalNetwork::totalInputPower() const
{
    double total = 0.0;
    for (double p : power_)
        total += p;
    for (double p : direct_air_power_)
        total += p;
    return total;
}

const std::string &
ServerThermalNetwork::nodeName(int node) const
{
    require(node >= 0 && node < static_cast<int>(names_.size()),
            "nodeName: bad node id");
    return names_[node];
}

int
ServerThermalNetwork::findNode(const std::string &name) const
{
    for (std::size_t i = 0; i < names_.size(); ++i) {
        if (names_[i] == name)
            return static_cast<int>(i);
    }
    return -1;
}

void
advanceNetworks(const std::vector<ServerThermalNetwork *> &nets,
                double dt_total, double dt_step)
{
    // Below this, per-region thread recruitment costs more than the
    // integration itself (a resilience arm has two networks).
    constexpr std::size_t kMinParallel = 4;
    for (const ServerThermalNetwork *net : nets)
        require(net != nullptr, "advanceNetworks: null network");
    if (nets.size() < kMinParallel) {
        for (ServerThermalNetwork *net : nets)
            net->advance(dt_total, dt_step);
        return;
    }
    exec::parallel_for_index(nets.size(), [&](std::size_t i) {
        nets[i]->advance(dt_total, dt_step);
    });
}

} // namespace thermal
} // namespace tts
