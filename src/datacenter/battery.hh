/**
 * @file
 * Distributed UPS battery bank for power peak shaving.
 *
 * The paper positions PCM as "complementary to UPS power
 * oversubscription" (Kontorinis et al., Govindan et al.): batteries
 * flatten the *electrical* demand peak while the wax flattens the
 * *thermal* one.  This module implements the battery side so the two
 * techniques can be studied together: a bank with finite energy and
 * power ratings shaves the facility's grid draw above a cap and
 * recharges below it.
 */

#ifndef TTS_DATACENTER_BATTERY_HH
#define TTS_DATACENTER_BATTERY_HH

#include "util/time_series.hh"

namespace tts {
namespace datacenter {

/** Battery bank configuration. */
struct BatteryConfig
{
    /** Usable energy capacity (J). */
    double energyCapacityJ;
    /** Maximum discharge power (W). */
    double maxDischargeW;
    /** Maximum charge power (W). */
    double maxChargeW;
    /** Round-trip efficiency in (0, 1]. */
    double roundTripEfficiency = 0.85;
    /** Initial state of charge in [0, 1]. */
    double initialSoc = 1.0;
};

/** Result of shaving a demand series against a grid cap. */
struct ShavingResult
{
    /** Grid draw after shaving (W). */
    TimeSeries gridPowerW;
    /** Battery state of charge over time. */
    TimeSeries stateOfCharge;
    /** Peak grid draw before shaving (W). */
    double peakDemandW = 0.0;
    /** Peak grid draw after shaving (W). */
    double peakGridW = 0.0;
    /** Total time the cap was exceeded anyway (battery empty) (s). */
    double capViolationS = 0.0;

    /** @return Fractional peak reduction. */
    double peakReduction() const
    {
        return peakDemandW > 0.0
            ? (peakDemandW - peakGridW) / peakDemandW
            : 0.0;
    }
};

/** A UPS battery bank with a cap-and-recharge policy. */
class BatteryBank
{
  public:
    explicit BatteryBank(const BatteryConfig &config);

    /** @return Stored energy (J). */
    double storedEnergy() const { return stored_j_; }

    /** @return State of charge in [0, 1]. */
    double stateOfCharge() const;

    /**
     * Advance one step against a demand and a grid cap: discharge to
     * keep the grid draw at or below the cap, recharge with any
     * headroom below it.
     *
     * @param dt       Step (s).
     * @param demand_w IT + cooling demand (W).
     * @param cap_w    Grid cap (W).
     * @return Grid power drawn this step (W).
     */
    double step(double dt, double demand_w, double cap_w);

    /**
     * Run the cap-and-recharge policy over a whole demand series.
     *
     * @param demand_w Demand over time (W).
     * @param cap_w    Grid cap (W).
     */
    ShavingResult shave(const TimeSeries &demand_w, double cap_w);

    /** @return The configuration. */
    const BatteryConfig &config() const { return config_; }

  private:
    BatteryConfig config_;
    double stored_j_;
};

} // namespace datacenter
} // namespace tts

#endif // TTS_DATACENTER_BATTERY_HH
