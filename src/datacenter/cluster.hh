/**
 * @file
 * Cluster-scale thermal simulation (the paper's DCSim extension).
 *
 * A cluster is 1008 servers of one platform behind a round-robin
 * balancer, so all servers see the same utilization (the event
 * simulator in workload/dcsim verifies this uniformity).  The
 * cluster's thermal behavior is therefore N times one representative
 * server, which is exactly how the paper extends DCSim "to model
 * thermal time shifting with PCM using wax melting characteristics
 * derived from extensive Icepak simulations of each server".
 */

#ifndef TTS_DATACENTER_CLUSTER_HH
#define TTS_DATACENTER_CLUSTER_HH

#include <functional>

#include "server/server_model.hh"
#include "util/time_series.hh"
#include "workload/trace.hh"

namespace tts {
namespace datacenter {

/** Options for a cluster transient run. */
struct ClusterRunOptions
{
    /** Control interval: load/power updates (s). */
    double controlIntervalS = 300.0;
    /** Inner thermal integration step (s). */
    double thermalStepS = 5.0;
    /**
     * Warm-up: repeat the first day until the wax state is periodic
     * before recording (0 disables).
     */
    int warmupDays = 1;
    /** Frequency the servers run at (GHz); <= 0 means nominal. */
    double freqGHz = 0.0;
    /**
     * Optional per-step frequency policy, overriding freqGHz:
     * called with (time s, utilization) and returns GHz.
     */
    std::function<double(double, double)> freqPolicy;
};

/** Time-series outputs of a cluster run. */
struct ClusterRunResult
{
    /** Heat rejected to the room, whole cluster (W). */
    TimeSeries coolingLoadW;
    /** Wall power, whole cluster (W). */
    TimeSeries itPowerW;
    /** Cluster throughput (normalized: 1.0 == all servers at 100 %
     *  utilization and nominal frequency). */
    TimeSeries throughput;
    /** Wax melt fraction of the representative server. */
    TimeSeries waxMeltFraction;
    /** Wax stored energy per server (J). */
    TimeSeries waxStoredJ;
    /** Representative server outlet temperature (C). */
    TimeSeries outletTempC;
    /** Representative wax-bay air temperature (C). */
    TimeSeries waxBayTempC;

    /** @return Peak of the cooling-load series (W). */
    double peakCoolingLoad() const { return coolingLoadW.max(); }
};

/** A homogeneous cluster of one server platform. */
class Cluster
{
  public:
    /** The paper's cluster size. */
    static constexpr std::size_t defaultServerCount = 1008;

    /**
     * @param spec         Server platform.
     * @param wax          Wax-bay contents for every server.
     * @param server_count Servers in the cluster.
     */
    Cluster(const server::ServerSpec &spec,
            const server::WaxConfig &wax,
            std::size_t server_count = defaultServerCount);

    /**
     * Run the cluster over a normalized load trace.
     *
     * Utilization at each control step is the trace total; the
     * representative server's thermal state advances through the
     * whole trace, and extensive quantities scale by the server
     * count.
     */
    ClusterRunResult run(const workload::WorkloadTrace &trace,
                         const ClusterRunOptions &options =
                             ClusterRunOptions{});

    /** @return Number of servers. */
    std::size_t serverCount() const { return server_count_; }

    /** @return Peak wall power of the whole cluster (W). */
    double peakWallPower() const;

    /** @return The representative server model. */
    server::ServerModel &representative() { return rep_; }

    /** @return The platform spec. */
    const server::ServerSpec &spec() const { return rep_.spec(); }

  private:
    std::size_t server_count_;
    server::ServerModel rep_;
};

} // namespace datacenter
} // namespace tts

#endif // TTS_DATACENTER_CLUSTER_HH
