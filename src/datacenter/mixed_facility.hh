/**
 * @file
 * Heterogeneous facility: several platform pools behind one cooling
 * plant.
 *
 * The paper evaluates three *homogeneous* datacenters; real fleets
 * mix generations.  A mixed facility changes the PCM story in one
 * interesting way: each pool can deploy wax with a different melting
 * temperature, so the pools' absorption windows can be staggered
 * across the peak - one pool clips the ramp, the next the crest -
 * widening the interval over which the shared plant sees a flattened
 * load.
 */

#ifndef TTS_DATACENTER_MIXED_FACILITY_HH
#define TTS_DATACENTER_MIXED_FACILITY_HH

#include <vector>

#include "datacenter/cluster.hh"
#include "server/server_model.hh"
#include "server/server_spec.hh"
#include "workload/trace.hh"

namespace tts {
namespace datacenter {

/** One homogeneous pool inside the facility. */
struct FacilityPool
{
    /** Platform. */
    server::ServerSpec spec;
    /** Wax deployment for every server in the pool. */
    server::WaxConfig wax;
    /** Number of 1008-server clusters. */
    std::size_t clusters = 1;
};

/** Facility-level run output. */
struct MixedFacilityResult
{
    /** Total heat rejected to the shared plant (W). */
    TimeSeries coolingLoadW;
    /** Total IT wall power (W). */
    TimeSeries itPowerW;
    /** Per-pool cooling loads, in pool order (W). */
    std::vector<TimeSeries> poolCoolingW;

    /** @return Facility peak cooling load (W). */
    double peakCoolingLoad() const { return coolingLoadW.max(); }
};

/** A facility of heterogeneous pools sharing one plant. */
class MixedFacility
{
  public:
    /** @param pools Pools; at least one, each with >= 1 cluster. */
    explicit MixedFacility(std::vector<FacilityPool> pools);

    /**
     * Run every pool over the trace and aggregate.
     *
     * @param trace   Normalized facility-wide load trace.
     * @param options Cluster run options shared by all pools.
     */
    MixedFacilityResult run(const workload::WorkloadTrace &trace,
                            const ClusterRunOptions &options =
                                ClusterRunOptions{});

    /** @return Total server count across pools. */
    std::size_t serverCount() const;

    /** @return The pools. */
    const std::vector<FacilityPool> &pools() const { return pools_; }

  private:
    std::vector<FacilityPool> pools_;
};

} // namespace datacenter
} // namespace tts

#endif // TTS_DATACENTER_MIXED_FACILITY_HH
