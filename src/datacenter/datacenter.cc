#include "datacenter/datacenter.hh"

#include <cmath>

#include "util/error.hh"

namespace tts {
namespace datacenter {

Datacenter::Datacenter(const server::ServerSpec &spec,
                       const DatacenterConfig &config)
    : spec_(spec), config_(config)
{
    require(config.criticalPowerW > 0.0,
            "Datacenter: critical power must be > 0");
    require(config.serversPerCluster >= 1,
            "Datacenter: servers per cluster must be >= 1");
    per_server_w_ = config.provisionedPerServerW > 0.0
        ? config.provisionedPerServerW
        : spec.peakWallPowerW;
    if (config.clusterCountOverride > 0) {
        cluster_count_ = config.clusterCountOverride;
    } else {
        double per_cluster = per_server_w_ *
            static_cast<double>(config.serversPerCluster);
        cluster_count_ = static_cast<std::size_t>(
            config.criticalPowerW / per_cluster);
        require(cluster_count_ >= 1,
                "Datacenter: critical power too small for one "
                "cluster");
    }
}

TimeSeries
Datacenter::scaleToDatacenter(const TimeSeries &cluster_series) const
{
    return cluster_series.scaled(
        static_cast<double>(cluster_count_));
}

std::size_t
Datacenter::extraServersForCoolingReduction(
    double peak_reduction_fraction) const
{
    require(peak_reduction_fraction >= 0.0 &&
            peak_reduction_fraction < 1.0,
            "Datacenter: reduction fraction must be in [0, 1)");
    // The plant was sized for N servers at full per-server demand;
    // with demand scaled by (1 - r) it supports N / (1 - r).
    double n = static_cast<double>(serverCount());
    double supported = n / (1.0 - peak_reduction_fraction);
    return static_cast<std::size_t>(supported - n);
}

} // namespace datacenter
} // namespace tts
