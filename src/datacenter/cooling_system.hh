/**
 * @file
 * Datacenter cooling plant model.
 *
 * The cooling load of a datacenter is the heat that must be removed
 * to hold temperature constant (Patel et al.); the plant is
 * provisioned for the peak load.  We model a plant by its rated
 * capacity, its efficiency as a coefficient of performance (COP),
 * and the electricity tariff it pays (the paper uses $0.13/kWh peak,
 * $0.08/kWh off-peak).
 */

#ifndef TTS_DATACENTER_COOLING_SYSTEM_HH
#define TTS_DATACENTER_COOLING_SYSTEM_HH

#include "util/time_series.hh"

namespace tts {
namespace datacenter {

/** Time-of-use electricity tariff. */
struct ElectricityTariff
{
    /** Price during peak hours (USD/kWh). */
    double peakPricePerKWh = 0.13;
    /** Price off-peak (USD/kWh). */
    double offPeakPricePerKWh = 0.08;
    /** Peak window start, local hour [0, 24). */
    double peakStartHour = 7.0;
    /** Peak window end, local hour [0, 24). */
    double peakEndHour = 19.0;

    /** @return True if local time t (s since midnight) is on-peak. */
    bool isPeak(double t_s) const;

    /** @return Price at time t (USD/kWh). */
    double priceAt(double t_s) const;

    /**
     * @return Cost of the given electric power series (W over s) in
     * USD, integrating price * power.
     */
    double costOf(const TimeSeries &power_w) const;
};

/** A cooling plant. */
class CoolingSystem
{
  public:
    /**
     * @param capacity_w Rated heat-removal capacity (W).
     * @param cop        Coefficient of performance: watts of heat
     *                   removed per watt of electricity.
     */
    CoolingSystem(double capacity_w, double cop = 3.5);

    /** @return Rated capacity (W). */
    double capacity() const { return capacity_w_; }

    /** @return Coefficient of performance. */
    double cop() const { return cop_; }

    /** @return Utilization (load / capacity) for a heat load (W). */
    double utilization(double load_w) const;

    /** @return True if the load exceeds the rated capacity. */
    bool overloaded(double load_w) const;

    /** @return Electric power drawn to remove a heat load (W). */
    double electricPower(double load_w) const;

    /**
     * @return Electricity cost of removing the given heat-load
     * series (USD).
     */
    double energyCost(const TimeSeries &load_w,
                      const ElectricityTariff &tariff) const;

    /**
     * @return The electric power series corresponding to a heat-load
     * series (W).
     */
    TimeSeries electricSeries(const TimeSeries &load_w) const;

  private:
    double capacity_w_;
    double cop_;
};

/**
 * Power usage effectiveness over time: (IT + cooling electric) / IT.
 * Uses the classic simplification that cooling dominates the
 * non-IT overhead.
 *
 * @param it_power_w       IT (wall) power series (W).
 * @param cooling_elec_w   Cooling electric power series (W).
 */
TimeSeries pueSeries(const TimeSeries &it_power_w,
                     const TimeSeries &cooling_elec_w);

} // namespace datacenter
} // namespace tts

#endif // TTS_DATACENTER_COOLING_SYSTEM_HH
