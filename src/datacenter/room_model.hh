/**
 * @file
 * Machine-room thermal model for cooling-failure studies.
 *
 * The paper's related work cites thermal storage as emergency
 * datacenter cooling (Garday & Housley); in-server PCM is a passive
 * variant of the same idea.  This model closes the loop the
 * cluster-scale studies leave open: the room's air and building mass
 * heat up when the plant removes less than the IT load, and the
 * servers' inlet temperature follows the room, which feeds back into
 * their component temperatures and into the wax.
 *
 * Two lumped states: room air (fast) and building mass - concrete,
 * racks, containment - (slow), coupled by a conductance.
 */

#ifndef TTS_DATACENTER_ROOM_MODEL_HH
#define TTS_DATACENTER_ROOM_MODEL_HH

#include "util/time_series.hh"

namespace tts {
namespace datacenter {

/** Room configuration. */
struct RoomConfig
{
    /** Room air volume (m^3); ~0.8 m^3 per server plus aisles. */
    double airVolumeM3 = 1500.0;
    /** Building/rack thermal mass (J/K). */
    double buildingMassJPerK = 120.0e6;
    /** Air-to-mass conductance (W/K). */
    double massCouplingWPerK = 8000.0;
    /** Cold-aisle setpoint the plant holds when healthy (C). */
    double setpointC = 25.0;
    /**
     * Inlet air limit (C): the emergency shutdown threshold
     * (ASHRAE A4 allowable upper bound).
     */
    double limitC = 45.0;
};

/** Two-node room thermal state. */
class RoomModel
{
  public:
    /** Build at the setpoint (air and mass in equilibrium). */
    explicit RoomModel(const RoomConfig &config);

    /**
     * Advance by dt with the given heat flows.
     *
     * @param dt        Step (s).
     * @param it_heat_w Heat injected by the IT equipment (W).
     * @param removed_w Heat removed by the plant (W).
     */
    void step(double dt, double it_heat_w, double removed_w);

    /** @return Room (cold aisle) air temperature (C). */
    double airTemp() const { return air_c_; }

    /** @return Building mass temperature (C). */
    double massTemp() const { return mass_c_; }

    /** @return True once the air exceeds the configured limit. */
    bool overLimit() const;

    /** @return The configuration. */
    const RoomConfig &config() const { return config_; }

    /** @return Heat capacity of the room air (J/K). */
    double airCapacity() const;

    /**
     * Restore the two-node state directly (checkpoint resume);
     * bypasses the setpoint-equilibrium initialization.
     */
    void setState(double air_c, double mass_c)
    {
        air_c_ = air_c;
        mass_c_ = mass_c;
    }

  private:
    RoomConfig config_;
    double air_c_;
    double mass_c_;
};

} // namespace datacenter
} // namespace tts

#endif // TTS_DATACENTER_ROOM_MODEL_HH
