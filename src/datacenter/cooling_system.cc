#include "datacenter/cooling_system.hh"

#include <algorithm>
#include <cmath>

#include "util/error.hh"
#include "util/units.hh"

namespace tts {
namespace datacenter {

bool
ElectricityTariff::isPeak(double t_s) const
{
    double hour = std::fmod(t_s / 3600.0, 24.0);
    if (hour < 0.0)
        hour += 24.0;
    if (peakStartHour <= peakEndHour)
        return hour >= peakStartHour && hour < peakEndHour;
    return hour >= peakStartHour || hour < peakEndHour;
}

double
ElectricityTariff::priceAt(double t_s) const
{
    return isPeak(t_s) ? peakPricePerKWh : offPeakPricePerKWh;
}

double
ElectricityTariff::costOf(const TimeSeries &power_w) const
{
    require(power_w.size() >= 2, "ElectricityTariff: series too short");
    // Integrate price(t) * power(t).  Sparse series are refined to a
    // 5-minute grid so tariff boundaries inside long segments are
    // priced correctly.
    const auto &times = power_w.times();
    const auto &values = power_w.values();
    double cost = 0.0;
    for (std::size_t i = 1; i < times.size(); ++i) {
        double t0 = times[i - 1];
        double t1 = times[i];
        double seg = t1 - t0;
        int pieces = std::max(1, static_cast<int>(seg / 300.0));
        double dt = seg / pieces;
        for (int p = 0; p < pieces; ++p) {
            double a = t0 + p * dt;
            double b = a + dt;
            double frac_a = (a - t0) / seg;
            double frac_b = (b - t0) / seg;
            double w_a = values[i - 1] +
                frac_a * (values[i] - values[i - 1]);
            double w_b = values[i - 1] +
                frac_b * (values[i] - values[i - 1]);
            double kwh = units::toKWh(0.5 * (w_a + w_b) * dt);
            cost += kwh * priceAt(0.5 * (a + b));
        }
    }
    return cost;
}

CoolingSystem::CoolingSystem(double capacity_w, double cop)
    : capacity_w_(capacity_w), cop_(cop)
{
    require(capacity_w > 0.0, "CoolingSystem: capacity must be > 0");
    require(cop > 0.0, "CoolingSystem: COP must be > 0");
}

double
CoolingSystem::utilization(double load_w) const
{
    require(load_w >= 0.0, "CoolingSystem: load must be >= 0");
    return load_w / capacity_w_;
}

bool
CoolingSystem::overloaded(double load_w) const
{
    return load_w > capacity_w_;
}

double
CoolingSystem::electricPower(double load_w) const
{
    require(load_w >= 0.0, "CoolingSystem: load must be >= 0");
    return load_w / cop_;
}

double
CoolingSystem::energyCost(const TimeSeries &load_w,
                          const ElectricityTariff &tariff) const
{
    return tariff.costOf(electricSeries(load_w));
}

TimeSeries
CoolingSystem::electricSeries(const TimeSeries &load_w) const
{
    TimeSeries out("cooling_electric_w");
    for (std::size_t i = 0; i < load_w.size(); ++i) {
        out.append(load_w.times()[i],
                   electricPower(std::max(load_w.values()[i], 0.0)));
    }
    return out;
}

TimeSeries
pueSeries(const TimeSeries &it_power_w,
          const TimeSeries &cooling_elec_w)
{
    require(it_power_w.size() >= 1 && cooling_elec_w.size() >= 1,
            "pueSeries: empty input");
    return TimeSeries::combine(
        it_power_w, cooling_elec_w,
        [](double it, double cool) {
            return it > 0.0 ? (it + cool) / it : 1.0;
        },
        "pue");
}

} // namespace datacenter
} // namespace tts
