#include "datacenter/multi_site.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "exec/parallel.hh"
#include "util/error.hh"

namespace tts {
namespace datacenter {

namespace {

double
wrapHour(double h)
{
    double w = std::fmod(h, 24.0);
    return w < 0.0 ? w + 24.0 : w;
}

/** Rescale every class at each instant to hit a new total. */
workload::WorkloadTrace
rescaled(const workload::WorkloadTrace &src,
         const std::vector<double> &times,
         const std::vector<double> &new_total)
{
    workload::WorkloadTrace out;
    for (std::size_t i = 0; i < times.size(); ++i) {
        double t = times[i];
        double old_total = src.totalAt(t);
        double factor =
            old_total > 0.0 ? new_total[i] / old_total : 0.0;
        std::array<double, workload::jobClassCount> sample{};
        for (std::size_t c = 0; c < workload::jobClassCount; ++c) {
            sample[c] = factor *
                src.classAt(workload::allJobClasses[c], t);
        }
        out.append(t, sample);
    }
    return out;
}

} // namespace

workload::GoogleTraceParams
shiftedSiteParams(const workload::GoogleTraceParams &base,
                  double offset_h)
{
    workload::GoogleTraceParams p = base;
    p.search.peakHour = wrapHour(p.search.peakHour + offset_h);
    p.orkut.peakHour = wrapHour(p.orkut.peakHour + offset_h);
    p.mapreduce.peakHour =
        wrapHour(p.mapreduce.peakHour + offset_h);
    return p;
}

std::pair<workload::WorkloadTrace, workload::WorkloadTrace>
geoBalance(const workload::WorkloadTrace &a,
           const workload::WorkloadTrace &b, double max_shift)
{
    require(max_shift >= 0.0 && max_shift <= 1.0,
            "geoBalance: shift fraction must be in [0, 1]");
    require(a.size() >= 2 && b.size() >= 2,
            "geoBalance: traces too short");

    // Union grid over the overlapping span.
    std::vector<double> grid;
    for (double t : a.total().times())
        grid.push_back(t);
    for (double t : b.total().times())
        grid.push_back(t);
    std::sort(grid.begin(), grid.end());
    grid.erase(std::unique(grid.begin(), grid.end()), grid.end());

    std::vector<double> ta(grid.size()), tb(grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
        double ua = a.totalAt(grid[i]);
        double ub = b.totalAt(grid[i]);
        double high = std::max(ua, ub);
        double target = 0.5 * (ua + ub);
        // Move load from the busier site toward the mean, bounded
        // by the relocatable fraction (and by full capacity at the
        // receiving site).
        double move = std::min((high - target),
                               max_shift * high);
        if (ua >= ub) {
            move = std::min(move, 1.0 - ub);
            ta[i] = ua - move;
            tb[i] = ub + move;
        } else {
            move = std::min(move, 1.0 - ua);
            ta[i] = ua + move;
            tb[i] = ub - move;
        }
    }
    return {rescaled(a, grid, ta), rescaled(b, grid, tb)};
}

std::vector<ClusterRunResult>
runSites(const server::ServerSpec &spec,
         const server::WaxConfig &wax,
         const std::vector<workload::WorkloadTrace> &site_traces,
         std::size_t server_count, const ClusterRunOptions &run)
{
    require(!site_traces.empty(), "runSites: no sites");
    return exec::parallel_map(
        site_traces, [&](const workload::WorkloadTrace &trace) {
            Cluster cluster(spec, wax, server_count);
            return cluster.run(trace, run);
        });
}

} // namespace datacenter
} // namespace tts
