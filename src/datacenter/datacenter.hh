/**
 * @file
 * Whole-datacenter topology: a 10 MW critical-power facility filled
 * with homogeneous clusters of one platform.
 *
 * The paper evaluates three such datacenters: 55 clusters of 1U
 * servers, 19 clusters of 2U servers, or 29 clusters of Open Compute
 * blades, each cluster being 1008 servers.  Cluster counts here are
 * derived from the critical power and the per-server provisioned
 * power, with an override to pin the paper's exact numbers.
 */

#ifndef TTS_DATACENTER_DATACENTER_HH
#define TTS_DATACENTER_DATACENTER_HH

#include <cstddef>

#include "datacenter/cluster.hh"
#include "datacenter/cooling_system.hh"
#include "server/server_spec.hh"

namespace tts {
namespace datacenter {

/** Datacenter-level configuration. */
struct DatacenterConfig
{
    /** Critical (IT) power (W); the paper's facilities are 10 MW. */
    double criticalPowerW = 10.0e6;
    /** Servers per cluster. */
    std::size_t serversPerCluster = Cluster::defaultServerCount;
    /**
     * Provisioned power per server (W) used for packing; <= 0 means
     * the platform's peak wall power.
     */
    double provisionedPerServerW = 0.0;
    /** Pin the cluster count (0 = derive from critical power). */
    std::size_t clusterCountOverride = 0;
    /** Cooling plant COP. */
    double coolingCop = 3.5;
    /** Electricity tariff. */
    ElectricityTariff tariff;
};

/** A homogeneous datacenter. */
class Datacenter
{
  public:
    /**
     * @param spec   Server platform filling the facility.
     * @param config Facility parameters.
     */
    Datacenter(const server::ServerSpec &spec,
               const DatacenterConfig &config = DatacenterConfig{});

    /** @return Number of clusters. */
    std::size_t clusterCount() const { return cluster_count_; }

    /** @return Total server count. */
    std::size_t serverCount() const
    {
        return cluster_count_ * config_.serversPerCluster;
    }

    /** @return Provisioned power per server (W). */
    double provisionedPerServer() const { return per_server_w_; }

    /** @return The facility configuration. */
    const DatacenterConfig &config() const { return config_; }

    /** @return The platform spec. */
    const server::ServerSpec &spec() const { return spec_; }

    /**
     * Scale a single-cluster series (e.g. cooling load) to the whole
     * datacenter.
     */
    TimeSeries scaleToDatacenter(const TimeSeries &cluster_series)
        const;

    /**
     * @return How many additional servers fit if the per-server peak
     * cooling demand drops by the given fraction while the plant
     * capacity stays fixed (the paper's "install more servers"
     * scenario).
     */
    std::size_t extraServersForCoolingReduction(
        double peak_reduction_fraction) const;

  private:
    server::ServerSpec spec_;
    DatacenterConfig config_;
    double per_server_w_;
    std::size_t cluster_count_;
};

} // namespace datacenter
} // namespace tts

#endif // TTS_DATACENTER_DATACENTER_HH
