/**
 * @file
 * Multi-site geographic load shifting.
 *
 * The paper's Section 5.2 names "relocating work to other
 * datacenters" [18-20] as the alternative to downclocking, and its
 * related work discusses geographic balancing with renewables.  This
 * module provides the trace-level mechanics: time-zone-offset sites
 * and a balancer that moves a bounded fraction of load from the
 * hotter (busier) site to the cooler one - so geographic shifting
 * can be compared with, and stacked on, thermal time shifting.
 */

#ifndef TTS_DATACENTER_MULTI_SITE_HH
#define TTS_DATACENTER_MULTI_SITE_HH

#include <utility>
#include <vector>

#include "datacenter/cluster.hh"
#include "workload/google_trace.hh"
#include "workload/trace.hh"

namespace tts {
namespace datacenter {

/**
 * Generator parameters for a site whose local diurnal pattern lags
 * the reference site by the given offset (e.g. +3 h for a west-coast
 * site seen from the east coast): every class peak hour is shifted.
 *
 * @param base     Reference-site generator parameters.
 * @param offset_h Time-zone offset (h), positive = later peaks.
 */
workload::GoogleTraceParams shiftedSiteParams(
    const workload::GoogleTraceParams &base, double offset_h);

/**
 * Geographic balancing between two equal-capacity sites.
 *
 * At every instant, load moves from the busier site toward the
 * quieter one, limited to `max_shift` of the busier site's load
 * (WAN, locality, and latency limit how much work is relocatable).
 * Class mix is preserved per site.
 *
 * @param a         Site A trace.
 * @param b         Site B trace.
 * @param max_shift Relocatable fraction in [0, 1].
 * @return Balanced (A, B) traces.
 */
std::pair<workload::WorkloadTrace, workload::WorkloadTrace>
geoBalance(const workload::WorkloadTrace &a,
           const workload::WorkloadTrace &b, double max_shift);

/**
 * Run one homogeneous cluster per site, all sites in parallel
 * (tts::exec), and return the transients in site order.
 *
 * Every site gets the same platform, wax charge, and cluster size;
 * only its local trace differs.  The per-site peak cooling load is
 * the multi-site plant-sizing metric (every site needs its own
 * plant), so callers typically reduce the results with
 * ClusterRunResult::peakCoolingLoad().
 *
 * @param spec         Platform deployed at every site.
 * @param wax          Wax-bay contents at every site.
 * @param site_traces  One normalized load trace per site.
 * @param server_count Servers per site.
 * @param run          Transient options shared by all sites.
 */
std::vector<ClusterRunResult> runSites(
    const server::ServerSpec &spec, const server::WaxConfig &wax,
    const std::vector<workload::WorkloadTrace> &site_traces,
    std::size_t server_count = Cluster::defaultServerCount,
    const ClusterRunOptions &run = ClusterRunOptions{});

} // namespace datacenter
} // namespace tts

#endif // TTS_DATACENTER_MULTI_SITE_HH
