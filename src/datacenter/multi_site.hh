/**
 * @file
 * Multi-site geographic load shifting.
 *
 * The paper's Section 5.2 names "relocating work to other
 * datacenters" [18-20] as the alternative to downclocking, and its
 * related work discusses geographic balancing with renewables.  This
 * module provides the trace-level mechanics: time-zone-offset sites
 * and a balancer that moves a bounded fraction of load from the
 * hotter (busier) site to the cooler one - so geographic shifting
 * can be compared with, and stacked on, thermal time shifting.
 */

#ifndef TTS_DATACENTER_MULTI_SITE_HH
#define TTS_DATACENTER_MULTI_SITE_HH

#include <utility>

#include "workload/google_trace.hh"
#include "workload/trace.hh"

namespace tts {
namespace datacenter {

/**
 * Generator parameters for a site whose local diurnal pattern lags
 * the reference site by the given offset (e.g. +3 h for a west-coast
 * site seen from the east coast): every class peak hour is shifted.
 *
 * @param base     Reference-site generator parameters.
 * @param offset_h Time-zone offset (h), positive = later peaks.
 */
workload::GoogleTraceParams shiftedSiteParams(
    const workload::GoogleTraceParams &base, double offset_h);

/**
 * Geographic balancing between two equal-capacity sites.
 *
 * At every instant, load moves from the busier site toward the
 * quieter one, limited to `max_shift` of the busier site's load
 * (WAN, locality, and latency limit how much work is relocatable).
 * Class mix is preserved per site.
 *
 * @param a         Site A trace.
 * @param b         Site B trace.
 * @param max_shift Relocatable fraction in [0, 1].
 * @return Balanced (A, B) traces.
 */
std::pair<workload::WorkloadTrace, workload::WorkloadTrace>
geoBalance(const workload::WorkloadTrace &a,
           const workload::WorkloadTrace &b, double max_shift);

} // namespace datacenter
} // namespace tts

#endif // TTS_DATACENTER_MULTI_SITE_HH
