#include "datacenter/mixed_facility.hh"

#include "util/error.hh"

namespace tts {
namespace datacenter {

MixedFacility::MixedFacility(std::vector<FacilityPool> pools)
    : pools_(std::move(pools))
{
    require(!pools_.empty(), "MixedFacility: need at least one pool");
    for (const auto &p : pools_) {
        require(p.clusters >= 1,
                "MixedFacility: every pool needs >= 1 cluster");
        p.spec.validate();
    }
}

std::size_t
MixedFacility::serverCount() const
{
    std::size_t total = 0;
    for (const auto &p : pools_)
        total += p.clusters * Cluster::defaultServerCount;
    return total;
}

MixedFacilityResult
MixedFacility::run(const workload::WorkloadTrace &trace,
                   const ClusterRunOptions &options)
{
    MixedFacilityResult out;
    bool first = true;
    for (const auto &pool : pools_) {
        Cluster cluster(pool.spec, pool.wax);
        auto r = cluster.run(trace, options);
        double scale = static_cast<double>(pool.clusters);
        auto cooling = r.coolingLoadW.scaled(scale);
        auto it = r.itPowerW.scaled(scale);
        out.poolCoolingW.push_back(cooling);
        if (first) {
            out.coolingLoadW = cooling;
            out.itPowerW = it;
            first = false;
        } else {
            out.coolingLoadW = TimeSeries::combine(
                out.coolingLoadW, cooling,
                [](double a, double b) { return a + b; },
                "cooling_load_w");
            out.itPowerW = TimeSeries::combine(
                out.itPowerW, it,
                [](double a, double b) { return a + b; },
                "it_power_w");
        }
    }
    return out;
}

} // namespace datacenter
} // namespace tts
