/**
 * @file
 * Outside-air (free) cooling and the diurnal ambient model.
 *
 * Figure 1 of the paper lists "nighttime: lower ambient temperature,
 * more natural cooling opportunities" as an additional advantage of
 * shifting the thermal load off-peak, and the introduction points at
 * free cooling in cool regions [3, 7, 8, 17, 37].  This module makes
 * that quantitative: a sinusoidal diurnal ambient temperature and an
 * economizer whose coefficient of performance improves as the
 * outside air gets colder than the return air, with a full-economizer
 * mode below a changeover temperature.
 */

#ifndef TTS_DATACENTER_FREE_COOLING_HH
#define TTS_DATACENTER_FREE_COOLING_HH

#include "util/time_series.hh"

namespace tts {
namespace datacenter {

/** Sinusoidal diurnal ambient temperature. */
struct AmbientModel
{
    /** Daily mean outdoor temperature (C). */
    double meanC = 18.0;
    /** Half of the daily swing (C). */
    double amplitudeC = 7.0;
    /** Local hour of the daily maximum [0, 24). */
    double peakHour = 15.0;

    /** @return Ambient temperature at time t (s since midnight). */
    double at(double t_s) const;

    /** @return Coolest hour of the day [0, 24). */
    double troughHour() const;
};

/**
 * A cooling plant with an airside economizer.
 *
 * Efficiency model:
 *  - Mechanical (chiller) mode: constant COP `mechanicalCop`.
 *  - Economizer assist: for every degree the ambient falls below the
 *    return-air setpoint, the effective COP rises by `copPerDegree`
 *    (cool outside air does part of the chiller's work).
 *  - Full free cooling: below `freeCoolingBelowC` the chillers are
 *    off and only fans run, giving `freeCop`.
 */
class EconomizerCoolingModel
{
  public:
    /** Mechanical COP with no economizer assist. */
    double mechanicalCop = 3.5;
    /** Return-air (hot aisle) reference temperature (C). */
    double returnAirC = 35.0;
    /** COP gained per degree of ambient below the return air. */
    double copPerDegree = 0.25;
    /** Ambient below which the plant runs on fans alone (C). */
    double freeCoolingBelowC = 10.0;
    /** Effective COP in full free-cooling mode. */
    double freeCop = 20.0;

    /**
     * @return Effective COP at the given ambient temperature,
     * always > 0: ambient at or above the return air clamps to
     * plain mechanical COP (no negative assist).
     *
     * @throws FatalError on a non-finite ambient or a degenerate
     * model (non-positive mechanicalCop/freeCop, negative
     * copPerDegree, non-finite temperatures).
     */
    double copAt(double ambient_c) const;

    /**
     * @return Electric power to remove load_w at ambient_c (W).
     * @throws FatalError on a negative or non-finite load (and the
     * copAt() diagnostics).
     */
    double electricPower(double load_w, double ambient_c) const;

    /**
     * Electric power series for a heat-load series under a diurnal
     * ambient.
     *
     * @param load_w  Heat load over time (W).
     * @param ambient Diurnal ambient model.
     */
    TimeSeries electricSeries(const TimeSeries &load_w,
                              const AmbientModel &ambient) const;

    /**
     * Total cooling electric energy (J) for a load series under a
     * diurnal ambient.
     */
    double electricEnergy(const TimeSeries &load_w,
                          const AmbientModel &ambient) const;
};

} // namespace datacenter
} // namespace tts

#endif // TTS_DATACENTER_FREE_COOLING_HH
