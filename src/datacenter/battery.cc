#include "datacenter/battery.hh"

#include <algorithm>
#include <cmath>

#include "util/error.hh"

namespace tts {
namespace datacenter {

BatteryBank::BatteryBank(const BatteryConfig &config)
    : config_(config),
      stored_j_(config.initialSoc * config.energyCapacityJ)
{
    require(config.energyCapacityJ > 0.0,
            "BatteryBank: capacity must be > 0");
    require(config.maxDischargeW > 0.0 && config.maxChargeW > 0.0,
            "BatteryBank: power ratings must be > 0");
    require(config.roundTripEfficiency > 0.0 &&
            config.roundTripEfficiency <= 1.0,
            "BatteryBank: efficiency must be in (0, 1]");
    require(config.initialSoc >= 0.0 && config.initialSoc <= 1.0,
            "BatteryBank: initial SoC must be in [0, 1]");
}

double
BatteryBank::stateOfCharge() const
{
    return stored_j_ / config_.energyCapacityJ;
}

double
BatteryBank::step(double dt, double demand_w, double cap_w)
{
    require(dt > 0.0, "BatteryBank::step: dt must be > 0");
    require(demand_w >= 0.0 && cap_w >= 0.0,
            "BatteryBank::step: power must be >= 0");
    if (demand_w > cap_w) {
        // Discharge to cover the excess.
        double want = demand_w - cap_w;
        double can = std::min(config_.maxDischargeW,
                              stored_j_ / dt);
        double discharge = std::min(want, can);
        stored_j_ -= discharge * dt;
        return demand_w - discharge;
    }
    // Recharge with the headroom; charging losses are charged
    // against the grid (round-trip efficiency applied on the way in).
    double headroom = cap_w - demand_w;
    double space = config_.energyCapacityJ - stored_j_;
    double charge = std::min({config_.maxChargeW, headroom,
                              space / dt /
                                  config_.roundTripEfficiency});
    stored_j_ += charge * config_.roundTripEfficiency * dt;
    return demand_w + charge;
}

ShavingResult
BatteryBank::shave(const TimeSeries &demand_w, double cap_w)
{
    require(demand_w.size() >= 2, "BatteryBank::shave: series too "
            "short");
    ShavingResult out;
    out.gridPowerW.setName("grid_w");
    out.stateOfCharge.setName("soc");
    out.peakDemandW = demand_w.max();

    const auto &times = demand_w.times();
    out.gridPowerW.append(times[0], demand_w.values()[0]);
    out.stateOfCharge.append(times[0], stateOfCharge());
    for (std::size_t i = 1; i < times.size(); ++i) {
        double dt = times[i] - times[i - 1];
        double grid = step(dt, demand_w.values()[i], cap_w);
        if (grid > cap_w + 1e-9)
            out.capViolationS += dt;
        out.gridPowerW.append(times[i], grid);
        out.stateOfCharge.append(times[i], stateOfCharge());
    }
    out.peakGridW = out.gridPowerW.max();
    return out;
}

} // namespace datacenter
} // namespace tts
