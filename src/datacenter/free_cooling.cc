#include "datacenter/free_cooling.hh"

#include <cmath>

#include "util/error.hh"

namespace tts {
namespace datacenter {

double
AmbientModel::at(double t_s) const
{
    double hour = std::fmod(t_s / 3600.0, 24.0);
    if (hour < 0.0)
        hour += 24.0;
    double phase = 2.0 * M_PI * (hour - peakHour) / 24.0;
    return meanC + amplitudeC * std::cos(phase);
}

double
AmbientModel::troughHour() const
{
    double trough = peakHour + 12.0;
    return trough >= 24.0 ? trough - 24.0 : trough;
}

double
EconomizerCoolingModel::copAt(double ambient_c) const
{
    require(std::isfinite(ambient_c),
            "EconomizerCoolingModel: ambient must be finite");
    require(std::isfinite(mechanicalCop) && mechanicalCop > 0.0,
            "EconomizerCoolingModel: mechanicalCop must be > 0");
    require(std::isfinite(freeCop) && freeCop > 0.0,
            "EconomizerCoolingModel: freeCop must be > 0");
    require(std::isfinite(copPerDegree) && copPerDegree >= 0.0,
            "EconomizerCoolingModel: copPerDegree must be >= 0");
    require(std::isfinite(returnAirC) &&
            std::isfinite(freeCoolingBelowC),
            "EconomizerCoolingModel: temperatures must be finite");
    if (ambient_c <= freeCoolingBelowC)
        return freeCop;
    // Ambient at or above the return air gives no economizer
    // assist: the plant clamps to plain mechanical COP rather than
    // letting the assist term go negative.
    double assist = returnAirC - ambient_c;
    double cop = mechanicalCop +
        (assist > 0.0 ? copPerDegree * assist : 0.0);
    cop = std::min(cop, freeCop);
    invariant(cop > 0.0,
              "EconomizerCoolingModel: non-positive COP");
    return cop;
}

double
EconomizerCoolingModel::electricPower(double load_w,
                                      double ambient_c) const
{
    require(std::isfinite(load_w) && load_w >= 0.0,
            "EconomizerCoolingModel: load must be finite and >= 0");
    return load_w / copAt(ambient_c);
}

TimeSeries
EconomizerCoolingModel::electricSeries(
    const TimeSeries &load_w, const AmbientModel &ambient) const
{
    TimeSeries out("cooling_electric_w");
    for (std::size_t i = 0; i < load_w.size(); ++i) {
        double t = load_w.times()[i];
        double load = std::max(load_w.values()[i], 0.0);
        out.append(t, electricPower(load, ambient.at(t)));
    }
    return out;
}

double
EconomizerCoolingModel::electricEnergy(
    const TimeSeries &load_w, const AmbientModel &ambient) const
{
    auto elec = electricSeries(load_w, ambient);
    require(elec.size() >= 2,
            "EconomizerCoolingModel: series too short");
    return elec.integral(elec.startTime(), elec.endTime());
}

} // namespace datacenter
} // namespace tts
