#include "datacenter/free_cooling.hh"

#include <cmath>

#include "util/error.hh"

namespace tts {
namespace datacenter {

double
AmbientModel::at(double t_s) const
{
    double hour = std::fmod(t_s / 3600.0, 24.0);
    if (hour < 0.0)
        hour += 24.0;
    double phase = 2.0 * M_PI * (hour - peakHour) / 24.0;
    return meanC + amplitudeC * std::cos(phase);
}

double
AmbientModel::troughHour() const
{
    double trough = peakHour + 12.0;
    return trough >= 24.0 ? trough - 24.0 : trough;
}

double
EconomizerCoolingModel::copAt(double ambient_c) const
{
    if (ambient_c <= freeCoolingBelowC)
        return freeCop;
    double assist = returnAirC - ambient_c;
    double cop = mechanicalCop +
        (assist > 0.0 ? copPerDegree * assist : 0.0);
    return std::min(cop, freeCop);
}

double
EconomizerCoolingModel::electricPower(double load_w,
                                      double ambient_c) const
{
    require(load_w >= 0.0,
            "EconomizerCoolingModel: load must be >= 0");
    return load_w / copAt(ambient_c);
}

TimeSeries
EconomizerCoolingModel::electricSeries(
    const TimeSeries &load_w, const AmbientModel &ambient) const
{
    TimeSeries out("cooling_electric_w");
    for (std::size_t i = 0; i < load_w.size(); ++i) {
        double t = load_w.times()[i];
        double load = std::max(load_w.values()[i], 0.0);
        out.append(t, electricPower(load, ambient.at(t)));
    }
    return out;
}

double
EconomizerCoolingModel::electricEnergy(
    const TimeSeries &load_w, const AmbientModel &ambient) const
{
    auto elec = electricSeries(load_w, ambient);
    require(elec.size() >= 2,
            "EconomizerCoolingModel: series too short");
    return elec.integral(elec.startTime(), elec.endTime());
}

} // namespace datacenter
} // namespace tts
