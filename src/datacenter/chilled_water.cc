#include "datacenter/chilled_water.hh"

#include <algorithm>
#include <cmath>

#include "util/error.hh"
#include "util/units.hh"

namespace tts {
namespace datacenter {

namespace {
/** Density of water (kg/m^3). */
constexpr double waterDensity = 998.0;
/** Specific heat of water (J/(kg K)). */
constexpr double waterSpecificHeat = 4186.0;
} // namespace

ChilledWaterTank::ChilledWaterTank(const ChilledWaterConfig &config)
    : config_(config),
      stored_j_(config.initialFill * 0.0)
{
    require(config.volumeM3 > 0.0,
            "ChilledWaterTank: volume must be > 0");
    require(config.deltaTK > 0.0,
            "ChilledWaterTank: delta T must be > 0");
    require(config.maxDischargeW > 0.0 && config.maxRechargeW > 0.0,
            "ChilledWaterTank: rates must be > 0");
    require(config.standbyLossPerDay >= 0.0 &&
            config.standbyLossPerDay < 1.0,
            "ChilledWaterTank: standby loss must be in [0, 1)");
    require(config.initialFill >= 0.0 && config.initialFill <= 1.0,
            "ChilledWaterTank: initial fill must be in [0, 1]");
    stored_j_ = config.initialFill * capacity();
}

double
ChilledWaterTank::capacity() const
{
    return config_.volumeM3 * waterDensity * waterSpecificHeat *
        config_.deltaTK;
}

TesShaveResult
ChilledWaterTank::shave(const TimeSeries &load_w, double cap_w)
{
    require(load_w.size() >= 2,
            "ChilledWaterTank::shave: series too short");
    TesShaveResult out;
    out.plantLoadW.setName("plant_load_w");
    out.storedJ.setName("stored_j");
    out.peakLoadW = load_w.max();

    const double cap_j = capacity();
    const auto &times = load_w.times();
    out.plantLoadW.append(times[0], load_w.values()[0]);
    out.storedJ.append(times[0], stored_j_);
    for (std::size_t i = 1; i < times.size(); ++i) {
        double dt = times[i] - times[i - 1];
        double load = std::max(load_w.values()[i], 0.0);

        // Standby loss: the environment warms the tank whether it
        // is used or not (the paper's point about outdoor tanks).
        double loss = stored_j_ *
            (config_.standbyLossPerDay * dt / units::days(1.0));
        stored_j_ -= loss;
        out.standbyLossJ += loss;

        double plant = load;
        bool pumping = false;
        if (load > cap_w && stored_j_ > 0.0) {
            double want = load - cap_w;
            double can = std::min(config_.maxDischargeW,
                                  stored_j_ / dt);
            double discharge = std::min(want, can);
            stored_j_ -= discharge * dt;
            plant = load - discharge;
            pumping = true;
        } else if (load < cap_w && stored_j_ < cap_j) {
            double headroom = cap_w - load;
            double recharge = std::min(
                {config_.maxRechargeW, headroom,
                 (cap_j - stored_j_) / dt});
            stored_j_ += recharge * dt;
            plant = load + recharge;
            pumping = recharge > 0.0;
        }
        if (pumping)
            out.pumpEnergyJ += config_.pumpPowerW * dt;
        out.plantLoadW.append(times[i], plant);
        out.storedJ.append(times[i], stored_j_);
    }
    out.peakPlantW = out.plantLoadW.max();
    return out;
}

} // namespace datacenter
} // namespace tts
