/**
 * @file
 * Chilled-water thermal energy storage (the paper's Section 6
 * comparator, Zheng et al.'s TE-Shave and the ASHRAE "cool TES"
 * literature).
 *
 * A tank of chilled water stores sensible cooling capacity: charged
 * off-peak by running the chillers harder, discharged during the
 * peak to shave the plant load.  Unlike in-server PCM it is an
 * *active* system: it needs pumps while in use, loses capacity
 * standing by (environmental gains), and takes floor space outside
 * the datacenter.  This model quantifies those overheads so the
 * PCM-vs-TES comparison in the paper's related work can be
 * reproduced as numbers.
 */

#ifndef TTS_DATACENTER_CHILLED_WATER_HH
#define TTS_DATACENTER_CHILLED_WATER_HH

#include "util/time_series.hh"

namespace tts {
namespace datacenter {

/** Chilled-water tank configuration. */
struct ChilledWaterConfig
{
    /** Tank volume (m^3). */
    double volumeM3;
    /** Usable temperature swing of the stored water (K). */
    double deltaTK = 10.0;
    /** Maximum discharge (cooling) rate (W). */
    double maxDischargeW;
    /** Maximum recharge rate (W). */
    double maxRechargeW;
    /** Fraction of stored capacity lost per day standing by. */
    double standbyLossPerDay = 0.03;
    /** Pump power while charging or discharging (W). */
    double pumpPowerW = 0.0;
    /** Initial fill fraction in [0, 1]. */
    double initialFill = 1.0;
};

/** Result of shaving a cooling-load series with the tank. */
struct TesShaveResult
{
    /** Plant load after shaving (W). */
    TimeSeries plantLoadW;
    /** Stored cooling capacity over time (J). */
    TimeSeries storedJ;
    /** Peak plant load before shaving (W). */
    double peakLoadW = 0.0;
    /** Peak plant load after shaving (W). */
    double peakPlantW = 0.0;
    /** Pump energy spent (J). */
    double pumpEnergyJ = 0.0;
    /** Capacity lost to standby/environmental gains (J). */
    double standbyLossJ = 0.0;

    /** @return Fractional peak reduction. */
    double peakReduction() const
    {
        return peakLoadW > 0.0
            ? (peakLoadW - peakPlantW) / peakLoadW
            : 0.0;
    }
};

/** A chilled-water storage tank with a cap-and-recharge policy. */
class ChilledWaterTank
{
  public:
    explicit ChilledWaterTank(const ChilledWaterConfig &config);

    /** @return Usable storage capacity (J). */
    double capacity() const;

    /** @return Stored cooling capacity (J). */
    double stored() const { return stored_j_; }

    /**
     * Run the cap policy over a cooling-load series: discharge to
     * hold the plant at or below the cap, recharge below it, decay
     * by the standby loss throughout.
     *
     * @param load_w Cooling load over time (W).
     * @param cap_w  Plant cap (W).
     */
    TesShaveResult shave(const TimeSeries &load_w, double cap_w);

    /** @return The configuration. */
    const ChilledWaterConfig &config() const { return config_; }

  private:
    ChilledWaterConfig config_;
    double stored_j_;
};

} // namespace datacenter
} // namespace tts

#endif // TTS_DATACENTER_CHILLED_WATER_HH
