#include "datacenter/cluster.hh"

#include <algorithm>
#include <cmath>

#include "util/error.hh"

namespace tts {
namespace datacenter {

Cluster::Cluster(const server::ServerSpec &spec,
                 const server::WaxConfig &wax,
                 std::size_t server_count)
    : server_count_(server_count), rep_(spec, wax)
{
    require(server_count >= 1, "Cluster: need at least one server");
}

double
Cluster::peakWallPower() const
{
    server::ServerModel probe(rep_.spec(), server::WaxConfig::none());
    probe.setLoad(1.0);
    return probe.wallPower() * static_cast<double>(server_count_);
}

ClusterRunResult
Cluster::run(const workload::WorkloadTrace &trace,
             const ClusterRunOptions &options)
{
    require(options.controlIntervalS > 0.0 &&
            options.thermalStepS > 0.0,
            "Cluster::run: bad step sizes");
    const double t0 = trace.startTime();
    const double t1 = trace.endTime();
    const double n = static_cast<double>(server_count_);

    auto freq_at = [&](double t, double util) {
        if (options.freqPolicy)
            return options.freqPolicy(t, util);
        return options.freqGHz;
    };

    // Warm-up: cycle the first 24 h so the wax starts each recorded
    // day from its periodic steady state, as a long-running
    // datacenter would.
    double warm_span = std::min(86400.0, t1 - t0);
    for (int d = 0; d < options.warmupDays; ++d) {
        for (double t = t0; t < t0 + warm_span;
             t += options.controlIntervalS) {
            double util = std::clamp(trace.totalAt(t), 0.0, 1.0);
            rep_.setLoad(util, freq_at(t, util));
            double dt = std::min(options.controlIntervalS,
                                 t0 + warm_span - t);
            rep_.advance(dt, options.thermalStepS);
        }
    }

    ClusterRunResult out;
    out.coolingLoadW.setName("cooling_load_w");
    out.itPowerW.setName("it_power_w");
    out.throughput.setName("throughput");
    out.waxMeltFraction.setName("melt_fraction");
    out.waxStoredJ.setName("wax_stored_j");
    out.outletTempC.setName("outlet_c");
    out.waxBayTempC.setName("wax_bay_c");

    auto record = [&](double t) {
        out.coolingLoadW.append(t, n * rep_.coolingLoad());
        out.itPowerW.append(t, n * rep_.wallPower());
        out.throughput.append(t, rep_.throughput());
        out.waxMeltFraction.append(
            t, rep_.hasWax() ? rep_.waxMeltFraction() : 0.0);
        out.waxStoredJ.append(t, rep_.waxStoredEnergy());
        out.outletTempC.append(t, rep_.outletTemp());
        out.waxBayTempC.append(t, rep_.waxBayAirTemp());
    };

    for (double t = t0; t < t1; t += options.controlIntervalS) {
        double util = std::clamp(trace.totalAt(t), 0.0, 1.0);
        rep_.setLoad(util, freq_at(t, util));
        record(t);
        double dt = std::min(options.controlIntervalS, t1 - t);
        rep_.advance(dt, options.thermalStepS);
    }
    // Final sample at the trace end.
    double util = std::clamp(trace.totalAt(t1), 0.0, 1.0);
    rep_.setLoad(util, freq_at(t1, util));
    record(t1);
    return out;
}

} // namespace datacenter
} // namespace tts
