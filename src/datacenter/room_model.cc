#include "datacenter/room_model.hh"

#include <algorithm>

#include "util/error.hh"
#include "util/units.hh"

namespace tts {
namespace datacenter {

RoomModel::RoomModel(const RoomConfig &config)
    : config_(config), air_c_(config.setpointC),
      mass_c_(config.setpointC)
{
    require(config.airVolumeM3 > 0.0,
            "RoomModel: air volume must be > 0");
    require(config.buildingMassJPerK > 0.0,
            "RoomModel: building mass must be > 0");
    require(config.massCouplingWPerK > 0.0,
            "RoomModel: mass coupling must be > 0");
    require(config.limitC > config.setpointC,
            "RoomModel: limit must exceed the setpoint");
}

double
RoomModel::airCapacity() const
{
    return config_.airVolumeM3 * units::airDensity *
        units::airSpecificHeat;
}

void
RoomModel::step(double dt, double it_heat_w, double removed_w)
{
    require(dt > 0.0, "RoomModel::step: dt must be > 0");
    require(it_heat_w >= 0.0 && removed_w >= 0.0,
            "RoomModel::step: heat flows must be >= 0");
    // Sub-step: the air node is fast (its time constant is
    // C_air / G_mass, tens of seconds).
    double c_air = airCapacity();
    double tau = c_air / config_.massCouplingWPerK;
    double remaining = dt;
    while (remaining > 0.0) {
        double h = std::min(remaining, 0.2 * tau);
        double q_to_mass =
            config_.massCouplingWPerK * (air_c_ - mass_c_);
        air_c_ += (it_heat_w - removed_w - q_to_mass) * h / c_air;
        mass_c_ += q_to_mass * h / config_.buildingMassJPerK;
        remaining -= h;
    }
}

bool
RoomModel::overLimit() const
{
    return air_c_ > config_.limitC;
}

} // namespace datacenter
} // namespace tts
