/**
 * @file
 * Thermally constrained datacenter example (the paper's Section 5.2
 * use case): the cooling plant is undersized - dense replacement
 * servers outgrew it - and the cluster must downclock through every
 * daily peak.  How much throughput does PCM recover, and for how
 * long does it stave off the thermal limit?
 *
 * Run: ./build/examples/thermal_emergency [capacity_fraction]
 *   capacity_fraction: plant size as a fraction of the cluster's
 *   full-tilt heat output (default: the calibrated 2U scenario).
 */

#include <cstdio>
#include <cstdlib>

#include "core/throughput_study.hh"
#include "util/units.hh"
#include "workload/google_trace.hh"

int
main(int argc, char **argv)
{
    using namespace tts;
    using namespace tts::core;

    server::ServerSpec spec = server::x4470Spec();
    ThroughputConfig opts;
    opts.coolingCapacityFraction = argc > 1
        ? std::atof(argv[1])
        : calibratedCapacityFraction(spec);

    std::printf("platform: %s\n", spec.name.c_str());
    std::printf("cooling plant: %.1f %% of the cluster's full-tilt "
                "heat output\n",
                100.0 * opts.coolingCapacityFraction);

    auto trace = workload::makeGoogleTrace();
    auto r = runThroughputStudy(spec, trace, opts);

    std::printf("wax melting point picked for the constrained "
                "regime: %.1f C\n\n",
                r.meltTempC);

    std::printf("%6s %8s %8s %8s %10s\n", "hour", "ideal",
                "no wax", "with wax", "wax melt");
    for (double h = 8.0; h <= 22.0; h += 1.0) {
        double t = units::hours(h);
        std::printf("%6.0f %8.2f %8.2f %8.2f %10.2f\n", h,
                    r.ideal.at(t), r.noWax.at(t), r.withWax.at(t),
                    r.waxMelt.at(t));
    }

    std::printf("\npeak throughput gain from PCM: %.1f %%\n",
                100.0 * r.throughputGain());
    std::printf("thermal-limit onset delayed by: %.1f h\n",
                r.delayHours);
    std::printf("\n(throughput normalized to the no-wax cluster's "
                "peak, as in the paper's Fig 12)\n");
    return 0;
}
