/**
 * @file
 * Capacity planning example (the paper's Section 5.1 use case): you
 * operate a 10 MW facility with a fully subscribed cooling plant.
 * How much does PCM buy you - a smaller plant at build time, more
 * servers under the existing plant, or an avoided plant replacement
 * in a retrofit?
 *
 * Run: ./build/examples/capacity_planning [platform]
 *   platform: 0 = 1U RD330 (default), 1 = 2U X4470, 2 = OCP blade.
 */

#include <cstdio>
#include <cstdlib>

#include "core/capacity_planner.hh"
#include "core/cooling_study.hh"
#include "core/melting_optimizer.hh"
#include "workload/google_trace.hh"

int
main(int argc, char **argv)
{
    using namespace tts;
    using namespace tts::core;

    int which = argc > 1 ? std::atoi(argv[1]) : 0;
    server::ServerSpec spec = which == 0 ? server::rd330Spec()
        : which == 1                     ? server::x4470Spec()
                                         : server::openComputeSpec();

    std::printf("platform: %s\n", spec.name.c_str());
    std::printf("wax: %.1f l of commercial paraffin in %zu boxes\n",
                spec.waxLiters, spec.waxBoxCount);

    auto trace = workload::makeGoogleTrace();

    // 1. Let the optimizer pick the melting temperature for this
    //    load shape (the paper does the same per cluster).
    std::printf("\noptimizing melting temperature...\n");
    MeltOptimizerOptions mo;
    mo.minC = 44.0;
    mo.maxC = 60.0;
    auto opt = optimizeMeltingTemp(spec, trace,
                                   pcm::commercialParaffin(), mo);
    std::printf("best melting temperature: %.1f C -> peak cooling "
                "reduction %.1f %%\n",
                opt.meltTempC, 100.0 * opt.peakReduction);

    // 2. Turn the reduction into deployment options.
    auto plan = planCapacity(spec, opt.peakReduction);
    std::printf("\n10 MW facility: %zu clusters, %zu servers\n",
                plan.clusters, plan.servers);
    std::printf("option 1 - build a %.1f %% smaller cooling "
                "plant:  $%.0fk per year\n",
                100.0 * plan.peakReduction,
                plan.smallerPlantSavingsPerYear / 1e3);
    std::printf("option 2 - keep the plant, add servers:        "
                "+%zu servers (%.1f %%)\n",
                plan.extraServers,
                100.0 * plan.extraServerFraction);
    std::printf("option 3 - retrofit, skip the plant "
                "replacement:  $%.2fM per year\n",
                plan.retrofitSavingsPerYear / 1e6);
    return 0;
}
