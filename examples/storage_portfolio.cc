/**
 * @file
 * Storage portfolio example: combine the paper's PCM with the two
 * storage techniques its related-work section positions it against -
 * UPS batteries (complementary) and chilled-water TES (competing).
 *
 * Run: ./build/examples/storage_portfolio
 */

#include <cstdio>

#include "core/cooling_study.hh"
#include "datacenter/battery.hh"
#include "datacenter/chilled_water.hh"
#include "util/units.hh"
#include "workload/google_trace.hh"

int
main()
{
    using namespace tts;
    using namespace tts::datacenter;

    auto spec = server::rd330Spec();
    auto trace = workload::makeGoogleTrace();

    std::printf("running the Section 5.1 cooling study for %s...\n",
                spec.name.c_str());
    auto study = core::runCoolingStudy(spec, trace);
    std::printf("PCM peak cooling reduction: %.1f %%\n\n",
                100.0 * study.peakReduction());

    // A chilled-water tank with the same stored energy.
    double pcm_j = 1008.0 * 0.8 * spec.waxLiters * 200.0e3;
    ChilledWaterConfig tank_cfg;
    tank_cfg.volumeM3 = pcm_j / (998.0 * 4186.0 * 10.0);
    tank_cfg.maxDischargeW = 0.2 * study.peakBaselineW;
    tank_cfg.maxRechargeW = 0.1 * study.peakBaselineW;
    tank_cfg.pumpPowerW = 0.002 * study.peakBaselineW;
    ChilledWaterTank tank(tank_cfg);
    auto tes = tank.shave(study.baseline.coolingLoadW,
                          (1.0 - study.peakReduction()) *
                              study.peakBaselineW);
    std::printf("equal-energy chilled-water tank (%.1f m3):\n",
                tank_cfg.volumeM3);
    std::printf("  peak reduction %.1f %%, pump %.1f kWh, standby "
                "loss %.1f kWh over two days\n\n",
                100.0 * tes.peakReduction(),
                units::toKWh(tes.pumpEnergyJ),
                units::toKWh(tes.standbyLossJ));

    // A battery flattening the facility draw on top of the PCM.
    auto facility = TimeSeries::combine(
        study.withWax.itPowerW, study.withWax.coolingLoadW,
        [](double it, double cool) { return it + cool / 3.5; },
        "facility_w");
    BatteryConfig bat;
    bat.maxDischargeW = 0.15 * facility.max();
    bat.maxChargeW = 0.05 * facility.max();
    bat.energyCapacityJ = bat.maxDischargeW * 1800.0;
    BatteryBank bank(bat);
    auto shaved = bank.shave(facility, 0.95 * facility.max());
    std::printf("battery on top of PCM: facility peak %.1f kW -> "
                "%.1f kW (%.1f %% more off the peak)\n",
                facility.max() / 1e3, shaved.peakGridW / 1e3,
                100.0 * shaved.peakReduction());
    std::printf("\nPCM shaves the thermal peak, the battery the "
                "electrical one; they stack.\n");
    return 0;
}
