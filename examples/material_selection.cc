/**
 * @file
 * Material selection example (the paper's Section 2.1): screen the
 * PCM families for datacenter deployment, compare the finalists on
 * cost and aging, and size the winning charge for a platform.
 *
 * Run: ./build/examples/material_selection
 */

#include <cstdio>

#include "pcm/cost.hh"
#include "pcm/material.hh"
#include "pcm/stability.hh"
#include "server/server_model.hh"

int
main()
{
    using namespace tts;
    using namespace tts::pcm;

    std::printf("screening PCM families for datacenter use "
                "(30-60 C, non-corrosive,\nnon-conductive, stable "
                "over daily cycling):\n\n");
    for (const auto &m : table1Families()) {
        std::printf("  %-22s -> %s\n", m.name.c_str(),
                    suitableForDatacenter(m) ? "PASS" : "fail");
    }

    std::printf("\nfinalists: pure n-paraffin (eicosane) vs. "
                "commercial grade paraffin\n\n");
    auto eico = eicosane();
    auto comm = commercialParaffin();
    std::printf("  %-22s $%7.0f/ton  %5.0f J/g\n",
                eico.name.c_str(), eico.pricePerTonUsd,
                eico.heatOfFusionJPerG);
    std::printf("  %-22s $%7.0f/ton  %5.0f J/g\n",
                comm.name.c_str(), comm.pricePerTonUsd,
                comm.heatOfFusionJPerG);
    std::printf("\n  -> commercial paraffin: %.0fx cheaper for "
                "%.0f %% lower energy per gram\n",
                priceRatio(eico, comm),
                100.0 * fusionDeficit(eico, comm));

    // Aging over the 4-year server life (one melt cycle per day).
    StabilityModel aging(comm.stability);
    auto cycles = StabilityModel::cyclesForYears(4.0);
    std::printf("\naging: after %llu daily cycles (4-year server "
                "life) the charge retains %.1f %%\nof its latent "
                "capacity.\n",
                static_cast<unsigned long long>(cycles),
                100.0 * aging.retention(cycles));

    // Size the deployment for the paper's 2U platform.
    auto spec = server::x4470Spec();
    server::ServerModel srv(spec, server::WaxConfig::paper());
    std::printf("\ndeployment in the %s:\n", spec.name.c_str());
    std::printf("  charge: %.1f l in %zu boxes, blocking %.0f %% "
                "of the duct (cap: %.0f %%)\n",
                spec.waxLiters, spec.waxBoxCount,
                100.0 * srv.blockage(),
                100.0 * spec.maxWaxBlockage);
    std::printf("  latent capacity: %.0f kJ per server\n",
                srv.waxLatentCapacity() / 1e3);

    auto fleet = fleetWaxCost(comm, spec.waxLiters, 1008);
    std::printf("  cluster wax bill (1008 servers): $%.0f "
                "(wax $%.2f + containers $%.2f per server)\n",
                fleet.totalCost, fleet.waxCostPerServer,
                fleet.containerCostPerServer);
    return 0;
}
