/**
 * @file
 * Quickstart: simulate one waxed server through a day and show the
 * thermal time shifting happen.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "server/server_model.hh"
#include "util/units.hh"
#include "workload/google_trace.hh"

int
main()
{
    using namespace tts;

    // 1. Pick a platform - the paper's validated 1U Lenovo RD330 -
    //    and install its wax charge (1.2 l of commercial paraffin).
    server::ServerSpec spec = server::rd330Spec();
    server::ServerModel srv(spec, server::WaxConfig::paper());

    // 2. Generate a Google-style diurnal day.
    workload::GoogleTraceParams tp;
    tp.durationS = units::days(1.0);
    auto trace = workload::makeGoogleTrace(tp);

    // 3. Walk through the day in 15-minute control steps.
    std::printf("%6s %6s %9s %9s %8s %7s %7s\n", "hour", "util",
                "wall (W)", "cool (W)", "wax (C)", "melt",
                "stored");
    for (double t = 0.0; t < units::days(1.0);
         t += units::minutes(15.0)) {
        srv.setLoad(trace.totalAt(t));
        srv.advance(units::minutes(15.0), 5.0);
        if (static_cast<long>(t) % 7200 == 0) {
            std::printf(
                "%6.1f %6.2f %9.1f %9.1f %8.1f %7.2f %6.0fkJ\n",
                units::toHours(t), srv.utilization(),
                srv.wallPower(), srv.coolingLoad(), srv.waxTemp(),
                srv.waxMeltFraction(),
                srv.waxStoredEnergy() / 1e3);
        }
    }

    std::printf(
        "\nWhile the wax melts (mid-day peak) the cooling load "
        "runs below the wall power;\nwhile it freezes (night) the "
        "stored heat is released - that is thermal time "
        "shifting.\n");
    return 0;
}
